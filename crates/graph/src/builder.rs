//! Transformation-graph construction (Appendix C, Algorithm 8).
//!
//! Given a replacement `s → t`, the transformation graph has `|t| + 1` nodes —
//! one per character position of the output string `t` — and an edge `(i, j)`
//! for every non-empty substring `t[i..j)`. Each edge carries the string
//! functions that produce that substring when applied to `s`:
//!
//! * a `ConstantStr(t[i..j))` label (subject to the [`ConstantPolicy`]);
//! * a `SubStr(l, r)` label for every occurrence `s[x..y) = t[i..j)` and every
//!   pair of position functions `l ∈ P[x]`, `r ∈ P[y]`, where `P` is the
//!   position-function table of Algorithm 8;
//! * `Prefix(τ, k)` / `Suffix(τ, k)` affix labels (Appendix D) when `t[i..j)`
//!   is the *longest* prefix/suffix of the `k`-th match of `τ` in `s` starting
//!   (resp. ending) at that output position — the "longest affix only" static
//!   order of Appendix E.
//!
//! The static order of position functions (Appendix E) is applied by
//! preferring class-based `MatchPos` functions over `ConstPos`: constant
//! positions are only generated when [`GraphConfig::enable_const_pos`] is set,
//! since they have the narrowest "character class" and never generalise across
//! values of different lengths.

use crate::label::{LabelId, LabelInterner, LabelList};
use crate::replacement::Replacement;
use ec_dsl::{Dir, PositionFn, StrCtx, StringFn, CLASS_TERMS};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which `ConstantStr` labels are added to the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstantPolicy {
    /// A constant label on every edge (the paper's default graph definition).
    All,
    /// Constant labels only for substrings of at most this many characters;
    /// the full-output constant (edge from the first to the last node) is
    /// always kept so that every graph has at least one transformation path.
    MaxLen(usize),
    /// Only the full-output constant label.
    FullOnly,
}

/// Configuration of the graph builder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphConfig {
    /// Add the `Prefix`/`Suffix` affix labels of Appendix D (default `true`;
    /// the `NoAffix` ablation of Figure 10 sets this to `false`).
    pub enable_affix: bool,
    /// Also generate `MatchPos`/affix functions with negative match ordinals
    /// (counting matches from the back), as the paper's Algorithm 8 does.
    pub enable_negative_ordinals: bool,
    /// Generate `ConstPos` position functions. Disabled by default: the static
    /// order of Appendix E prefers wider character classes and absolute
    /// positions are the narrowest, so they only add noise to grouping.
    pub enable_const_pos: bool,
    /// Which constant labels to add.
    pub constant_policy: ConstantPolicy,
    /// Hard cap on the number of labels attached to a single edge (a safety
    /// valve for pathological inputs; `usize::MAX` disables it).
    pub max_labels_per_edge: usize,
    /// Skip building graphs for replacements whose output string is longer
    /// than this many characters (graphs are `O(|t|²)` edges). `None` means no
    /// limit.
    pub max_output_len: Option<usize>,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            enable_affix: true,
            enable_negative_ordinals: true,
            enable_const_pos: false,
            constant_policy: ConstantPolicy::All,
            max_labels_per_edge: 256,
            max_output_len: Some(128),
        }
    }
}

impl GraphConfig {
    /// The configuration used by the `NoAffix` ablation (Figure 10).
    pub fn without_affix() -> Self {
        GraphConfig {
            enable_affix: false,
            ..Self::default()
        }
    }
}

/// An edge of the transformation graph: the substring `t[from..to)` of the
/// output string together with the labels (string functions) that produce it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node (character position in the output string).
    pub from: u32,
    /// Target node (character position in the output string, `> from`).
    pub to: u32,
    /// Interned string-function labels, deduplicated, in insertion order.
    pub labels: LabelList,
}

/// The transformation graph of one candidate replacement.
///
/// Nodes are the character positions `0..=t_len` of the output string; edges
/// are stored in CSR form grouped by source node. Only edges with at least one
/// label are stored.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformationGraph {
    replacement: Replacement,
    t_len: u32,
    edges: Vec<Edge>,
    /// `edges[out_start[i] .. out_start[i + 1]]` are the edges leaving node `i`.
    out_start: Vec<u32>,
}

impl TransformationGraph {
    /// The replacement this graph encodes.
    pub fn replacement(&self) -> &Replacement {
        &self.replacement
    }

    /// Number of characters of the output string `t`.
    pub fn t_len(&self) -> usize {
        self.t_len as usize
    }

    /// Number of nodes (`t_len + 1`).
    pub fn num_nodes(&self) -> usize {
        self.t_len as usize + 1
    }

    /// Index of the last node (`t_len`), the target of every transformation path.
    pub fn last_node(&self) -> u32 {
        self.t_len
    }

    /// All edges, grouped by source node and sorted by `(from, to)`.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edges leaving node `i`.
    pub fn out_edges(&self, i: u32) -> &[Edge] {
        let i = i as usize;
        if i + 1 >= self.out_start.len() {
            return &[];
        }
        &self.edges[self.out_start[i] as usize..self.out_start[i + 1] as usize]
    }

    /// The edge `(i, j)`, if it exists and has labels.
    pub fn edge(&self, i: u32, j: u32) -> Option<&Edge> {
        self.out_edges(i).iter().find(|e| e.to == j)
    }

    /// Total number of edges (with at least one label).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Total number of labels across all edges.
    pub fn num_labels(&self) -> usize {
        self.edges.iter().map(|e| e.labels.len()).sum()
    }

    /// Iterates over all `(from, to, label)` triples, the payload of the
    /// inverted index.
    pub fn label_triples(&self) -> impl Iterator<Item = (u32, u32, LabelId)> + '_ {
        self.edges
            .iter()
            .flat_map(|e| e.labels.iter().map(move |&l| (e.from, e.to, l)))
    }

    /// Does some edge of this graph carry `label`?
    pub fn contains_label(&self, label: LabelId) -> bool {
        self.edges.iter().any(|e| e.labels.contains(&label))
    }

    /// Reassembles a graph from its stored parts — the compiled-artifact load
    /// path. Edges must be sorted by `(from, to)` with `from < to <= t_len`
    /// and at least one label each (exactly what [`TransformationGraph::edges`]
    /// returned at write time); the CSR `out_start` table is rebuilt. Returns
    /// `None` when the edges violate the invariant, so a corrupt artifact is
    /// rejected instead of producing an inconsistent graph.
    pub fn from_parts(
        replacement: Replacement,
        t_len: u32,
        edges: Vec<Edge>,
    ) -> Option<TransformationGraph> {
        for (i, e) in edges.iter().enumerate() {
            if e.from >= e.to || e.to > t_len || e.labels.is_empty() {
                return None;
            }
            if i > 0 {
                let prev = &edges[i - 1];
                if (prev.from, prev.to) >= (e.from, e.to) {
                    return None;
                }
            }
        }
        let mut out_start = vec![0u32; t_len as usize + 2];
        for e in &edges {
            out_start[e.from as usize + 1] += 1;
        }
        for i in 1..out_start.len() {
            out_start[i] += out_start[i - 1];
        }
        Some(TransformationGraph {
            replacement,
            t_len,
            edges,
            out_start,
        })
    }

    /// Rewrites every label id through `f`, deduplicating per edge afterwards.
    ///
    /// Used when graphs built against per-thread interners are merged into a
    /// single shared interner.
    pub fn remap_labels(&mut self, mut f: impl FnMut(LabelId) -> LabelId) {
        for edge in &mut self.edges {
            for label in &mut edge.labels {
                *label = f(*label);
            }
            edge.labels.dedup();
        }
    }
}

/// Builds transformation graphs for candidate replacements, interning their
/// edge labels into a shared [`LabelInterner`].
#[derive(Debug)]
pub struct GraphBuilder {
    config: GraphConfig,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        GraphBuilder::new(GraphConfig::default())
    }
}

impl GraphBuilder {
    /// Creates a builder with the given configuration.
    pub fn new(config: GraphConfig) -> Self {
        GraphBuilder { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GraphConfig {
        &self.config
    }

    /// Builds the transformation graph of `replacement` (Algorithm 8 plus the
    /// Appendix D affix labels), interning labels in `interner`.
    ///
    /// Returns `None` when the output string exceeds
    /// [`GraphConfig::max_output_len`].
    pub fn build(
        &self,
        replacement: &Replacement,
        interner: &mut LabelInterner,
    ) -> Option<TransformationGraph> {
        let s = replacement.lhs();
        let t = replacement.rhs();
        let t_chars: Vec<char> = t.chars().collect();
        let t_len = t_chars.len();
        if let Some(max) = self.config.max_output_len {
            if t_len > max {
                return None;
            }
        }
        let ctx = StrCtx::new(s);
        let s_chars = ctx.chars().to_vec();
        let s_len = s_chars.len();

        // --- Position-function table P (Lines 2-11 of Algorithm 8). ---
        let positions = self.position_table(&ctx);

        // --- Longest-common-extension table between s and t. ---
        // lce[x][i] = length of the longest common prefix of s[x..] and t[i..].
        let lce = lce_table(&s_chars, &t_chars);

        // --- Collect labels per edge. ---
        let mut edge_labels: BTreeMap<(u32, u32), Vec<LabelId>> = BTreeMap::new();
        let mut push_label = |edge_labels: &mut BTreeMap<(u32, u32), Vec<LabelId>>,
                              i: usize,
                              j: usize,
                              f: StringFn| {
            let id = interner.intern(f);
            let labels = edge_labels.entry((i as u32, j as u32)).or_default();
            if labels.len() < self.config.max_labels_per_edge && !labels.contains(&id) {
                labels.push(id);
            }
        };

        for i in 0..t_len {
            for j in (i + 1)..=t_len {
                // Constant label (Line 15).
                let keep_constant = match self.config.constant_policy {
                    ConstantPolicy::All => true,
                    ConstantPolicy::MaxLen(n) => j - i <= n || (i == 0 && j == t_len),
                    ConstantPolicy::FullOnly => i == 0 && j == t_len,
                };
                if keep_constant {
                    let piece: String = t_chars[i..j].iter().collect();
                    push_label(&mut edge_labels, i, j, StringFn::constant(piece));
                }
                // SubStr labels for every occurrence s[x..y) = t[i..j) (Lines 16-18).
                let len = j - i;
                for x in 0..s_len {
                    if lce[x][i] >= len {
                        let y = x + len;
                        for l in &positions[x] {
                            for r in &positions[y] {
                                push_label(
                                    &mut edge_labels,
                                    i,
                                    j,
                                    StringFn::sub_str(l.clone(), r.clone()),
                                );
                            }
                        }
                    }
                }
            }
        }

        // --- Affix labels (Appendix D), longest-affix-only (Appendix E). ---
        if self.config.enable_affix {
            self.add_affix_labels(&ctx, &t_chars, &mut edge_labels, interner);
        }

        // --- Assemble CSR. ---
        let mut edges: Vec<Edge> = edge_labels
            .into_iter()
            .filter(|(_, labels)| !labels.is_empty())
            .map(|((from, to), labels)| Edge {
                from,
                to,
                labels: labels.into(),
            })
            .collect();
        edges.sort_by_key(|e| (e.from, e.to));
        let mut out_start = vec![0u32; t_len + 2];
        for e in &edges {
            out_start[e.from as usize + 1] += 1;
        }
        for i in 1..out_start.len() {
            out_start[i] += out_start[i - 1];
        }
        Some(TransformationGraph {
            replacement: replacement.clone(),
            t_len: t_len as u32,
            edges,
            out_start,
        })
    }

    /// Builds graphs for a batch of replacements, skipping those the
    /// configuration rejects. The i-th returned graph corresponds to the i-th
    /// retained replacement; the return value pairs them up explicitly.
    pub fn build_all(
        &self,
        replacements: &[Replacement],
        interner: &mut LabelInterner,
    ) -> Vec<(Replacement, TransformationGraph)> {
        replacements
            .iter()
            .filter_map(|r| self.build(r, interner).map(|g| (r.clone(), g)))
            .collect()
    }

    /// The position-function table `P`: `P[x]` holds the position functions
    /// that evaluate to position `x` in the input string.
    fn position_table(&self, ctx: &StrCtx<'_>) -> Vec<Vec<PositionFn>> {
        let s_len = ctx.len();
        let mut positions: Vec<Vec<PositionFn>> = vec![Vec::new(); s_len + 1];
        for term in CLASS_TERMS {
            let matches = ctx.class_matches(&term);
            let m_count = matches.len() as i32;
            for (idx, m) in matches.iter().enumerate() {
                let k = idx as i32 + 1;
                positions[m.start].push(PositionFn::match_pos(term.clone(), k, Dir::Begin));
                positions[m.end].push(PositionFn::match_pos(term.clone(), k, Dir::End));
                if self.config.enable_negative_ordinals {
                    let neg = k - m_count - 1;
                    positions[m.start].push(PositionFn::match_pos(term.clone(), neg, Dir::Begin));
                    positions[m.end].push(PositionFn::match_pos(term.clone(), neg, Dir::End));
                }
            }
        }
        if self.config.enable_const_pos {
            for (x, slot) in positions.iter_mut().enumerate() {
                slot.push(PositionFn::const_pos(x as i32 + 1));
                if self.config.enable_negative_ordinals {
                    slot.push(PositionFn::const_pos(x as i32 - s_len as i32 - 1));
                }
            }
        }
        positions
    }

    /// Adds the `Prefix`/`Suffix` labels: for each class-term match in `s` and
    /// each output position, only the longest prefix (resp. suffix) of that
    /// match occurring at the position is labelled.
    fn add_affix_labels(
        &self,
        ctx: &StrCtx<'_>,
        t_chars: &[char],
        edge_labels: &mut BTreeMap<(u32, u32), Vec<LabelId>>,
        interner: &mut LabelInterner,
    ) {
        let t_len = t_chars.len();
        let mut push = |edge_labels: &mut BTreeMap<(u32, u32), Vec<LabelId>>,
                        i: usize,
                        j: usize,
                        f: StringFn| {
            let id = interner.intern(f);
            let labels = edge_labels.entry((i as u32, j as u32)).or_default();
            if labels.len() < self.config.max_labels_per_edge && !labels.contains(&id) {
                labels.push(id);
            }
        };
        for term in CLASS_TERMS {
            let matches = ctx.class_matches(&term).to_vec();
            let m_count = matches.len() as i32;
            for (idx, m) in matches.iter().enumerate() {
                let k = idx as i32 + 1;
                let neg = k - m_count - 1;
                let matched: Vec<char> = ctx.chars()[m.start..m.end].to_vec();
                // Longest prefix of `matched` starting at each output position i.
                for i in 0..t_len {
                    let mut len = 0;
                    while len < matched.len() && i + len < t_len && t_chars[i + len] == matched[len]
                    {
                        len += 1;
                    }
                    if len >= 1 {
                        push(edge_labels, i, i + len, StringFn::prefix(term.clone(), k));
                        if self.config.enable_negative_ordinals {
                            push(edge_labels, i, i + len, StringFn::prefix(term.clone(), neg));
                        }
                    }
                }
                // Longest suffix of `matched` ending at each output position j.
                for j in 1..=t_len {
                    let mut len = 0;
                    while len < matched.len()
                        && len < j
                        && t_chars[j - 1 - len] == matched[matched.len() - 1 - len]
                    {
                        len += 1;
                    }
                    if len >= 1 {
                        push(edge_labels, j - len, j, StringFn::suffix(term.clone(), k));
                        if self.config.enable_negative_ordinals {
                            push(edge_labels, j - len, j, StringFn::suffix(term.clone(), neg));
                        }
                    }
                }
            }
        }
    }
}

/// `lce[x][i]` = length of the longest common prefix of `s[x..]` and `t[i..]`.
fn lce_table(s: &[char], t: &[char]) -> Vec<Vec<usize>> {
    let mut lce = vec![vec![0usize; t.len() + 1]; s.len() + 1];
    for x in (0..s.len()).rev() {
        for i in (0..t.len()).rev() {
            if s[x] == t[i] {
                lce[x][i] = lce[x + 1][i + 1] + 1;
            }
        }
    }
    lce
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(lhs: &str, rhs: &str, config: GraphConfig) -> (TransformationGraph, LabelInterner) {
        let mut interner = LabelInterner::new();
        let g = GraphBuilder::new(config)
            .build(&Replacement::new(lhs, rhs), &mut interner)
            .expect("graph");
        (g, interner)
    }

    /// Resolves the labels of edge (i, j) to their display strings.
    fn edge_label_strings(
        g: &TransformationGraph,
        interner: &LabelInterner,
        i: u32,
        j: u32,
    ) -> Vec<String> {
        g.edge(i, j)
            .map(|e| {
                e.labels
                    .iter()
                    .map(|&l| interner.resolve(l).to_string())
                    .collect()
            })
            .unwrap_or_default()
    }

    // Paper Figure 5: the graph for "Lee, Mary" -> "M. Lee".
    #[test]
    fn figure5_graph_shape() {
        let (g, interner) = build("Lee, Mary", "M. Lee", GraphConfig::default());
        assert_eq!(g.t_len(), 6);
        assert_eq!(g.num_nodes(), 7);
        // Every non-empty substring of t is an edge: 6*7/2 = 21 edges (paper: "all the 21 edges").
        assert_eq!(g.num_edges(), 21);
        // e_{0,6} (paper e_{1,7}) carries the Constant("M. Lee") label.
        let full = edge_label_strings(&g, &interner, 0, 6);
        assert!(full.contains(&"ConstantStr(\"M. Lee\")".to_string()));
        // e_{3,6} (paper e_{4,7}) carries the substring "Lee" via f1 = SubStr(TC1.B, Tl1.E).
        let lee = edge_label_strings(&g, &interner, 3, 6);
        assert!(lee.contains(&"SubStr(MatchPos(TC, 1, B), MatchPos(Tl, 1, E))".to_string()));
        // e_{0,1} (paper e_{1,2}) produces "M" via f2-like substring functions.
        let m = edge_label_strings(&g, &interner, 0, 1);
        assert!(
            m.iter().any(|l| l.starts_with("SubStr(")),
            "edge for \"M\" must have a SubStr label: {m:?}"
        );
        // e_{1,3} (paper e_{2,4}) produces ". " — only as a constant (". " does not occur in s).
        let dot = edge_label_strings(&g, &interner, 1, 3);
        assert!(dot.contains(&"ConstantStr(\". \")".to_string()));
        assert!(!dot.iter().any(|l| l.starts_with("SubStr(")));
    }

    #[test]
    fn every_label_produces_its_edge_substring() {
        // The defining invariant of the graph (Definition 2): every label on
        // edge (i, j) can produce t[i..j) from s.
        let cases = [
            ("Lee, Mary", "M. Lee"),
            ("Smith, James", "J. Smith"),
            ("9 St, 02141 Wisconsin", "9th Street, 02141 WI"),
            ("Street", "St"),
        ];
        for (lhs, rhs) in cases {
            let (g, interner) = build(lhs, rhs, GraphConfig::default());
            let ctx = StrCtx::new(lhs);
            let t_chars: Vec<char> = rhs.chars().collect();
            for e in g.edges() {
                let piece: String = t_chars[e.from as usize..e.to as usize].iter().collect();
                for &l in &e.labels {
                    let f = interner.resolve(l);
                    assert!(
                        f.can_produce(&ctx, &piece),
                        "{f} on edge ({}, {}) cannot produce {piece:?} from {lhs:?}",
                        e.from,
                        e.to
                    );
                }
            }
        }
    }

    #[test]
    fn affix_labels_present_for_street_st() {
        // Paper Example D.1: the graph of Street -> St has Prefix(Tl, 1) on the
        // edge producing "t".
        let (g, interner) = build("Street", "St", GraphConfig::default());
        let labels = edge_label_strings(&g, &interner, 1, 2);
        assert!(labels.contains(&"Prefix(Tl, 1)".to_string()), "{labels:?}");
        // And Avenue -> Ave has Prefix(Tl, 1) on the edge producing "ve".
        let (g2, interner2) = build("Avenue", "Ave", GraphConfig::default());
        let labels2 = edge_label_strings(&g2, &interner2, 1, 3);
        assert!(
            labels2.contains(&"Prefix(Tl, 1)".to_string()),
            "{labels2:?}"
        );
    }

    #[test]
    fn no_affix_config_omits_affix_labels() {
        let (g, interner) = build("Street", "St", GraphConfig::without_affix());
        for e in g.edges() {
            for &l in &e.labels {
                assert!(!interner.resolve(l).is_affix());
            }
        }
    }

    #[test]
    fn longest_affix_only() {
        // In Street -> Stre, the lowercase match of s is "treet". Prefixes of it
        // occurring at output position 1 are "t", "tr", "tre" — only the
        // longest ("tre", edge (1,4)) gets the Prefix label.
        let (g, interner) = build("Street", "Stre", GraphConfig::default());
        assert!(edge_label_strings(&g, &interner, 1, 4).contains(&"Prefix(Tl, 1)".to_string()));
        assert!(!edge_label_strings(&g, &interner, 1, 2).contains(&"Prefix(Tl, 1)".to_string()));
        assert!(!edge_label_strings(&g, &interner, 1, 3).contains(&"Prefix(Tl, 1)".to_string()));
    }

    #[test]
    fn constant_policy_full_only() {
        let config = GraphConfig {
            constant_policy: ConstantPolicy::FullOnly,
            ..GraphConfig::default()
        };
        let (g, interner) = build("Lee, Mary", "M. Lee", config);
        let mut constant_edges = 0;
        for e in g.edges() {
            for &l in &e.labels {
                if matches!(interner.resolve(l), StringFn::ConstantStr(_)) {
                    constant_edges += 1;
                    assert_eq!((e.from, e.to), (0, 6));
                }
            }
        }
        assert_eq!(constant_edges, 1);
    }

    #[test]
    fn constant_policy_max_len() {
        let config = GraphConfig {
            constant_policy: ConstantPolicy::MaxLen(2),
            ..GraphConfig::default()
        };
        let (g, interner) = build("Lee, Mary", "M. Lee", config);
        for e in g.edges() {
            for &l in &e.labels {
                if let StringFn::ConstantStr(c) = interner.resolve(l) {
                    let len = c.chars().count();
                    assert!(len <= 2 || len == 6, "unexpected constant {c:?}");
                }
            }
        }
    }

    #[test]
    fn max_output_len_rejects_long_outputs() {
        let config = GraphConfig {
            max_output_len: Some(3),
            ..GraphConfig::default()
        };
        let mut interner = LabelInterner::new();
        let builder = GraphBuilder::new(config);
        assert!(builder
            .build(&Replacement::new("abcd", "abcde"), &mut interner)
            .is_none());
        assert!(builder
            .build(&Replacement::new("abcd", "abc"), &mut interner)
            .is_some());
    }

    #[test]
    fn csr_adjacency_is_consistent() {
        let (g, _) = build("Smith, James", "J. Smith", GraphConfig::default());
        let mut total = 0;
        for i in 0..=g.last_node() {
            for e in g.out_edges(i) {
                assert_eq!(e.from, i);
                assert!(e.to > i);
                assert!(e.to <= g.last_node());
                total += 1;
            }
        }
        assert_eq!(total, g.num_edges());
        assert!(g.out_edges(g.last_node()).is_empty());
        assert!(g.edge(0, 1).is_some());
        assert!(g.edge(1, 0).is_none());
    }

    #[test]
    fn shared_interner_shares_labels_across_graphs() {
        let mut interner = LabelInterner::new();
        let builder = GraphBuilder::default();
        let g1 = builder
            .build(&Replacement::new("Lee, Mary", "M. Lee"), &mut interner)
            .unwrap();
        let before = interner.len();
        let g2 = builder
            .build(&Replacement::new("Smith, James", "J. Smith"), &mut interner)
            .unwrap();
        // The shared transformation functions (e.g. SubStr(TC1.B, Tl1.E)) must
        // have been reused rather than re-interned.
        assert!(interner.len() < before + g2.num_labels());
        let shared: Vec<LabelId> = g1
            .label_triples()
            .map(|(_, _, l)| l)
            .filter(|&l| g2.contains_label(l))
            .collect();
        assert!(!shared.is_empty(), "the two name-flip graphs share labels");
    }

    #[test]
    fn single_char_output() {
        let (g, interner) = build("9th", "9", GraphConfig::default());
        assert_eq!(g.num_edges(), 1);
        let labels = edge_label_strings(&g, &interner, 0, 1);
        assert!(labels.contains(&"ConstantStr(\"9\")".to_string()));
        assert!(labels.iter().any(|l| l.starts_with("SubStr(")));
        assert!(labels.iter().any(|l| l.starts_with("Prefix(Td")));
    }

    #[test]
    fn build_all_skips_rejected() {
        let mut interner = LabelInterner::new();
        let builder = GraphBuilder::new(GraphConfig {
            max_output_len: Some(4),
            ..GraphConfig::default()
        });
        let reps = vec![
            Replacement::new("a", "bb"),
            Replacement::new("a", "bbbbbb"),
            Replacement::new("c", "dd"),
        ];
        let graphs = builder.build_all(&reps, &mut interner);
        assert_eq!(graphs.len(), 2);
        assert_eq!(graphs[0].0, reps[0]);
        assert_eq!(graphs[1].0, reps[2]);
    }

    #[test]
    fn from_parts_round_trips_a_built_graph() {
        let (g, _) = build("Lee, Mary", "M. Lee", GraphConfig::default());
        let rebuilt = TransformationGraph::from_parts(
            g.replacement().clone(),
            g.last_node(),
            g.edges().to_vec(),
        )
        .expect("a built graph round-trips");
        assert_eq!(rebuilt.num_edges(), g.num_edges());
        for i in 0..=g.last_node() {
            assert_eq!(rebuilt.out_edges(i), g.out_edges(i), "node {i}");
        }
        // Out-of-range targets, empty labels, and unsorted edges are rejected.
        let rep = g.replacement().clone();
        let bad_target = vec![Edge {
            from: 0,
            to: g.last_node() + 1,
            labels: vec![LabelId(0)].into(),
        }];
        assert!(TransformationGraph::from_parts(rep.clone(), g.last_node(), bad_target).is_none());
        let empty_labels = vec![Edge {
            from: 0,
            to: 1,
            labels: LabelList::new(),
        }];
        assert!(
            TransformationGraph::from_parts(rep.clone(), g.last_node(), empty_labels).is_none()
        );
        let mut unsorted = g.edges().to_vec();
        unsorted.swap(0, 1);
        assert!(TransformationGraph::from_parts(rep, g.last_node(), unsorted).is_none());
    }

    #[test]
    fn const_pos_config_adds_constant_positions() {
        let config = GraphConfig {
            enable_const_pos: true,
            ..GraphConfig::default()
        };
        let (g, interner) = build("xabc", "abc", config);
        let has_const_pos = g.label_triples().any(|(_, _, l)| {
            matches!(
                interner.resolve(l),
                StringFn::SubStr(PositionFn::ConstPos(_), _)
            ) || matches!(
                interner.resolve(l),
                StringFn::SubStr(_, PositionFn::ConstPos(_))
            )
        });
        assert!(has_const_pos);
    }
}
