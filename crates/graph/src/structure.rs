//! Structure signatures (Section 7.2).
//!
//! Some replacements that share a transformation program still look
//! syntactically very different, which makes them hard for a human to judge as
//! one group. The paper therefore refines groups by *structure*: each side of
//! a replacement is mapped to a sequence of terms — the four character classes
//! for runs of class characters, and single-character terms for everything
//! else — and two replacements may only be grouped together when both sides
//! have equal structures.
//!
//! For example `Struc("9") = [Td]` and `Struc("9th") = [Td, Tl]`, so the
//! replacements `9 → 9th` and `3 → 3rd` are structurally equivalent, while
//! `9 → 9th` and `Wisconsin → WI` are not.

use ec_dsl::{Term, CLASS_TERMS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One token of a structure: a character-class run or a single character that
/// belongs to no class.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StructureToken {
    /// A maximal run of characters of one of the four classes.
    Class(Term),
    /// A single character outside all classes (punctuation, symbols, …).
    Single(char),
}

impl fmt::Display for StructureToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureToken::Class(t) => write!(f, "{t}"),
            StructureToken::Single(c) => write!(f, "T{c:?}"),
        }
    }
}

/// The structure of a single string: its sequence of structure tokens.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Structure(pub Vec<StructureToken>);

impl Structure {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the string was empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for tok in &self.0 {
            write!(f, "{tok}")?;
        }
        Ok(())
    }
}

/// The structure of a replacement: the pair of structures of its two sides.
/// Two replacements are *structurally equivalent* (Definition 4) iff their
/// `ReplacementStructure`s are equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ReplacementStructure {
    /// Structure of the left-hand side.
    pub lhs: Structure,
    /// Structure of the right-hand side.
    pub rhs: Structure,
}

impl fmt::Display for ReplacementStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.lhs, self.rhs)
    }
}

/// Computes the structure of a string: maximal class runs become
/// [`StructureToken::Class`] tokens, every other character becomes a
/// [`StructureToken::Single`] token.
pub fn structure_of(s: &str) -> Structure {
    let chars: Vec<char> = s.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    'outer: while i < chars.len() {
        for term in CLASS_TERMS {
            if term.contains_char(chars[i]) {
                let mut j = i + 1;
                while j < chars.len() && term.contains_char(chars[j]) {
                    j += 1;
                }
                out.push(StructureToken::Class(term));
                i = j;
                continue 'outer;
            }
        }
        out.push(StructureToken::Single(chars[i]));
        i += 1;
    }
    Structure(out)
}

/// Computes the [`ReplacementStructure`] of a replacement given its two sides.
pub fn replacement_structure(lhs: &str, rhs: &str) -> ReplacementStructure {
    ReplacementStructure {
        lhs: structure_of(lhs),
        rhs: structure_of(rhs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_9_and_9th() {
        // Struc("9") = Td and Struc("9th") = Td Tl (Section 7.2).
        assert_eq!(
            structure_of("9"),
            Structure(vec![StructureToken::Class(Term::Digits)])
        );
        assert_eq!(
            structure_of("9th"),
            Structure(vec![
                StructureToken::Class(Term::Digits),
                StructureToken::Class(Term::Lower)
            ])
        );
    }

    #[test]
    fn paper_equivalence_9_9th_and_3_3rd() {
        let a = replacement_structure("9", "9th");
        let b = replacement_structure("3", "3rd");
        assert_eq!(a, b, "9→9th and 3→3rd share the structure Td → TdTl");
        let c = replacement_structure("Wisconsin", "WI");
        assert_ne!(a, c);
    }

    #[test]
    fn punctuation_becomes_single_tokens() {
        let s = structure_of("Lee, Mary");
        assert_eq!(
            s,
            Structure(vec![
                StructureToken::Class(Term::Upper),
                StructureToken::Class(Term::Lower),
                StructureToken::Single(','),
                StructureToken::Class(Term::Whitespace),
                StructureToken::Class(Term::Upper),
                StructureToken::Class(Term::Lower),
            ])
        );
    }

    #[test]
    fn mixed_case_runs_split_at_class_boundaries() {
        let s = structure_of("McDonald");
        assert_eq!(
            s,
            Structure(vec![
                StructureToken::Class(Term::Upper),
                StructureToken::Class(Term::Lower),
                StructureToken::Class(Term::Upper),
                StructureToken::Class(Term::Lower),
            ])
        );
    }

    #[test]
    fn empty_string_has_empty_structure() {
        assert!(structure_of("").is_empty());
        assert_eq!(structure_of("").len(), 0);
    }

    #[test]
    fn every_character_is_covered_exactly_once() {
        // Reconstruct the character count from the structure.
        let s = "3rd E Avenue, 33990 CA";
        let st = structure_of(s);
        // Each Single covers 1 char; each Class covers >= 1. Just check the
        // token count never exceeds the char count and the structure is stable.
        assert!(st.len() <= s.chars().count());
        assert_eq!(st, structure_of(s));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(structure_of("9th").to_string(), "TdTl");
        assert_eq!(structure_of("A-1").to_string(), "TCT'-'Td");
        assert_eq!(replacement_structure("9", "9th").to_string(), "Td -> TdTl");
    }

    #[test]
    fn unicode_characters_are_single_tokens() {
        let s = structure_of("é9");
        assert_eq!(
            s,
            Structure(vec![
                StructureToken::Single('é'),
                StructureToken::Class(Term::Digits)
            ])
        );
    }
}
