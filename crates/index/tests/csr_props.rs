//! Differential property tests for the CSR index: the galloping
//! [`InvertedIndex::extend`] (and every probe the pivot search relies on)
//! must be observationally identical to the straightforward per-label
//! linear-scan index it replaced — which is kept **verbatim** below as the
//! reference implementation, exactly like the old char-based CSV parser kept
//! in `ec-data`'s stream property tests.

use ec_graph::{GraphBuilder, GraphConfig, LabelId, LabelInterner, Replacement};
use ec_index::{GraphId, InvertedIndex, PathList, PathOccurrence, Posting};
use proptest::prelude::*;

/// The pre-CSR inverted index, copied verbatim from the old implementation:
/// one `Vec<Posting>` per label, `extend` by linear merge walk.
struct ReferenceIndex {
    lists: Vec<Vec<Posting>>,
}

impl ReferenceIndex {
    fn build(graphs: &[ec_graph::TransformationGraph], num_labels: usize) -> Self {
        let mut lists: Vec<Vec<Posting>> = vec![Vec::new(); num_labels];
        for (gid, graph) in graphs.iter().enumerate() {
            for (from, to, label) in graph.label_triples() {
                let idx = label.index();
                if idx >= lists.len() {
                    lists.resize(idx + 1, Vec::new());
                }
                lists[idx].push(Posting {
                    graph: GraphId(gid as u32),
                    from,
                    to,
                });
            }
        }
        for list in &mut lists {
            list.sort();
        }
        ReferenceIndex { lists }
    }

    fn list(&self, label: LabelId) -> &[Posting] {
        self.lists
            .get(label.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    fn list_graph_count(&self, label: LabelId) -> usize {
        let list = self.list(label);
        let mut count = 0;
        let mut last = None;
        for p in list {
            if last != Some(p.graph) {
                count += 1;
                last = Some(p.graph);
            }
        }
        count
    }

    fn extend(&self, current: &PathList, label: LabelId) -> PathList {
        let postings = self.list(label);
        if postings.is_empty() || current.is_empty() {
            return PathList::default();
        }
        let occs = current.occurrences();
        let mut out = Vec::new();
        let mut pi = 0usize;
        for occ in occs {
            while pi < postings.len() && postings[pi].graph < occ.graph {
                pi += 1;
            }
            let mut j = pi;
            while j < postings.len() && postings[j].graph == occ.graph {
                if postings[j].from == occ.end {
                    out.push(PathOccurrence {
                        graph: occ.graph,
                        end: postings[j].to,
                    });
                }
                j += 1;
            }
        }
        PathList::from_occurrences(out)
    }
}

/// Random replacement pairs over a small alphabet so labels repeat across
/// graphs (shared labels are where the merge walks get interesting).
fn arb_replacements() -> impl Strategy<Value = Vec<Replacement>> {
    proptest::collection::vec(("[ABab 0-9.,]{1,10}", "[ABab 0-9.,]{1,8}"), 1..8usize).prop_map(
        |pairs| {
            pairs
                .into_iter()
                // A replacement must relate two *different* strings.
                .filter(|(lhs, rhs)| lhs != rhs)
                .map(|(lhs, rhs)| Replacement::new(lhs, rhs))
                .collect()
        },
    )
}

/// Builds graphs (dropping replacements the builder rejects) plus both
/// indexes over them.
fn build_both(
    replacements: &[Replacement],
) -> (
    Vec<ec_graph::TransformationGraph>,
    LabelInterner,
    InvertedIndex,
    ReferenceIndex,
) {
    let builder = GraphBuilder::new(GraphConfig::default());
    let mut interner = LabelInterner::new();
    let graphs: Vec<ec_graph::TransformationGraph> = replacements
        .iter()
        .filter_map(|r| builder.build(r, &mut interner))
        .collect();
    let csr = InvertedIndex::build(&graphs, interner.len());
    let reference = ReferenceIndex::build(&graphs, interner.len());
    (graphs, interner, csr, reference)
}

proptest! {
    /// Every per-label probe of the CSR index matches the reference: the
    /// posting lists themselves, their lengths and the precomputed
    /// distinct-graph counts (including labels past the interned range).
    #[test]
    fn csr_lists_match_the_linear_index(replacements in arb_replacements()) {
        let (_, interner, csr, reference) = build_both(&replacements);
        prop_assert_eq!(csr.num_labels(), interner.len());
        for raw in 0..interner.len() as u32 + 3 {
            let label = LabelId(raw);
            prop_assert_eq!(csr.list(label), reference.list(label));
            prop_assert_eq!(csr.list_len(label), reference.list(label).len());
            prop_assert_eq!(
                csr.list_graph_count(label),
                reference.list_graph_count(label)
            );
        }
    }

    /// Galloping `extend` ≡ linear-scan `extend`, chained along random label
    /// walks from the universe list (the exact access pattern of the pivot
    /// search).
    #[test]
    fn csr_extend_matches_the_linear_extend_on_label_walks(
        replacements in arb_replacements(),
        picks in proptest::collection::vec(0usize..64, 1..10usize),
    ) {
        let (graphs, interner, csr, reference) = build_both(&replacements);
        if interner.is_empty() {
            return Ok(());
        }
        let mut fast = PathList::universe(graphs.len());
        let mut slow = PathList::universe(graphs.len());
        for pick in picks {
            let label = LabelId((pick % interner.len()) as u32);
            fast = csr.extend(&fast, label);
            slow = reference.extend(&slow, label);
            prop_assert_eq!(&fast, &slow);
            prop_assert_eq!(fast.graph_count(), slow.graph_count());
            if fast.is_empty() {
                break;
            }
        }
    }

    /// `extend` agrees on arbitrary (not just reachable) occurrence lists,
    /// including ends that match no posting and graphs past the collection.
    #[test]
    fn csr_extend_matches_on_arbitrary_occurrence_lists(
        replacements in arb_replacements(),
        raw_occs in proptest::collection::vec((0u32..10, 0u32..24), 0..20usize),
        pick in 0usize..64,
    ) {
        let (_, interner, csr, reference) = build_both(&replacements);
        if interner.is_empty() {
            return Ok(());
        }
        let label = LabelId((pick % interner.len()) as u32);
        let list = PathList::from_occurrences(
            raw_occs
                .into_iter()
                .map(|(graph, end)| PathOccurrence {
                    graph: GraphId(graph),
                    end,
                })
                .collect(),
        );
        prop_assert_eq!(csr.extend(&list, label), reference.extend(&list, label));
    }
}
