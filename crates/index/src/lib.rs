//! # ec-index — the edge-label inverted index
//!
//! Pivot-path search (Section 5.1 of the paper) needs to answer one question
//! very quickly: *given a path — a sequence of string-function labels — which
//! transformation graphs contain it, starting at their first node?* The paper
//! answers it with an inverted index keyed by edge labels whose postings carry
//! the edge endpoints, so that intersecting two lists can require the edges to
//! be **adjacent** (the end node of one is the start node of the next).
//!
//! This crate provides that index ([`InvertedIndex`]) and the path-occurrence
//! lists it produces ([`PathList`]). A [`PathList`] tracks, for every graph
//! that contains the current path anchored at its first node, the node the
//! path has reached; extending the path by a label is a single
//! [`InvertedIndex::extend`] call.
//!
//! ## Layout
//!
//! The index stores all postings in one flat **CSR** (compressed sparse row)
//! arena: `label_offsets[l]..label_offsets[l + 1]` delimits the postings of
//! label `l`, sorted by `(graph, from, to)`. [`InvertedIndex::extend`] walks
//! an occurrence list and a posting list graph-by-graph, **galloping** over
//! whichever side is ahead, so intersecting a short list against a long one
//! costs `O(short × log(long))` instead of a linear scan of both. Per-label
//! distinct-graph counts are precomputed at build time, making the search's
//! hottest pruning probe ([`InvertedIndex::list_graph_count`]) O(1).
//!
//! A [`PathList`] is a range view over an `Arc`-shared occurrence arena:
//! cloning one (the pivot search snapshots its best list on every
//! improvement) is a reference-count bump, and [`PathList::slice_graphs`]
//! splits a list by graph range without copying occurrences — which is what
//! lets search subtasks carry their lists for free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ec_graph::{LabelId, TransformationGraph};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifier of a transformation graph inside one grouping problem: the index
/// of the graph in the slice the [`InvertedIndex`] was built from.
///
/// `repr(transparent)`: a `GraphId` is exactly a `u32`, so arrays of postings
/// have a defined layout an on-disk artifact can reproduce byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(transparent)]
pub struct GraphId(pub u32);

impl GraphId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One posting of the inverted index: graph `graph` has an edge `(from, to)`
/// carrying the label the posting is filed under (the paper's `⟨G, i, j⟩`).
///
/// `repr(C)`: three `u32` fields in declaration order, 12 bytes, align 4 —
/// the layout the compiled-artifact format stores and maps back in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(C)]
pub struct Posting {
    /// The graph containing the edge.
    pub graph: GraphId,
    /// Source node of the edge.
    pub from: u32,
    /// Target node of the edge.
    pub to: u32,
}

/// An occurrence of the current path in one graph: the path starts at the
/// graph's first node and has reached node `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(C)]
pub struct PathOccurrence {
    /// The graph containing the occurrence.
    pub graph: GraphId,
    /// The node reached by the path (the `j` of the last edge).
    pub end: u32,
}

/// External storage a [`SharedSlice`] can borrow its elements from — e.g. a
/// memory-mapped compiled artifact. The implementor owns whatever keeps the
/// bytes alive (a mapping guard, an aligned buffer) and hands out a typed
/// view; this crate stays `forbid(unsafe_code)` while the artifact crate does
/// the reinterpretation behind this object-safe seam.
pub trait SliceBacking<T>: Send + Sync + std::fmt::Debug {
    /// The backed elements.
    fn as_slice(&self) -> &[T];
}

/// A cheaply clonable, shared, immutable slice: either an owned `Arc<[T]>`
/// arena (the build path) or a borrowed view into external backing such as a
/// memory-mapped artifact section (the zero-copy load path). Consumers see
/// `&[T]` either way.
#[derive(Clone)]
pub struct SharedSlice<T> {
    repr: SliceRepr<T>,
}

#[derive(Clone)]
enum SliceRepr<T> {
    Owned(Arc<[T]>),
    External(Arc<dyn SliceBacking<T>>),
}

impl<T> SharedSlice<T> {
    /// Wraps external backing (a mapped artifact section).
    pub fn external(backing: Arc<dyn SliceBacking<T>>) -> Self {
        SharedSlice {
            repr: SliceRepr::External(backing),
        }
    }

    /// The elements.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            SliceRepr::Owned(arc) => arc,
            SliceRepr::External(backing) => backing.as_slice(),
        }
    }

    /// True when both views share one arena (same base pointer and length) —
    /// the zero-copy invariant the tests pin.
    pub fn ptr_eq(&self, other: &SharedSlice<T>) -> bool {
        let (a, b) = (self.as_slice(), other.as_slice());
        std::ptr::eq(a.as_ptr(), b.as_ptr()) && a.len() == b.len()
    }
}

impl<T> std::ops::Deref for SharedSlice<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> Default for SharedSlice<T> {
    fn default() -> Self {
        // A shared static empty arena — no allocation.
        SharedSlice {
            repr: SliceRepr::Owned(Arc::from([] as [T; 0])),
        }
    }
}

impl<T> From<Vec<T>> for SharedSlice<T> {
    fn from(v: Vec<T>) -> Self {
        SharedSlice {
            repr: SliceRepr::Owned(v.into()),
        }
    }
}

impl<T> From<Arc<[T]>> for SharedSlice<T> {
    fn from(arc: Arc<[T]>) -> Self {
        SharedSlice {
            repr: SliceRepr::Owned(arc),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SharedSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

/// The list of graphs containing the current path (the paper's `ℓ`).
///
/// Occurrences are kept sorted by `(graph, end)` and deduplicated. A graph may
/// appear with several `end` nodes when multi-valued (affix) labels allow the
/// same label sequence to cover different spans of the output string; the
/// *graph count* [`PathList::graph_count`] — what the paper calls `|ℓ|` — is
/// the number of distinct graphs.
///
/// The list is a `start..end` view over an `Arc`-shared occurrence arena:
/// [`Clone`] is a reference-count bump and [`PathList::slice_graphs`]
/// produces a graph-range sub-view without copying, so search subproblems can
/// carry (and snapshot) lists for free.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PathList {
    backing: SharedSlice<PathOccurrence>,
    start: usize,
    end: usize,
}

impl PartialEq for PathList {
    fn eq(&self, other: &Self) -> bool {
        self.occurrences() == other.occurrences()
    }
}

impl Eq for PathList {}

impl PathList {
    /// The list for the empty path over `num_graphs` graphs: every graph
    /// contains the empty path, anchored at its first node (node 0).
    pub fn universe(num_graphs: usize) -> Self {
        PathList::from_sorted(
            (0..num_graphs)
                .map(|g| PathOccurrence {
                    graph: GraphId(g as u32),
                    end: 0,
                })
                .collect(),
        )
    }

    /// Builds a list from raw occurrences (sorted and deduplicated).
    pub fn from_occurrences(mut occurrences: Vec<PathOccurrence>) -> Self {
        occurrences.sort();
        occurrences.dedup();
        PathList::from_sorted(occurrences)
    }

    /// Wraps occurrences that are already sorted by `(graph, end)` and
    /// deduplicated.
    fn from_sorted(occurrences: Vec<PathOccurrence>) -> Self {
        if occurrences.is_empty() {
            // `Arc<[T]>::default()` is a shared static — dead-end extends
            // (the search's common case) allocate nothing.
            return PathList::default();
        }
        let backing = SharedSlice::from(occurrences);
        PathList {
            start: 0,
            end: backing.len(),
            backing,
        }
    }

    /// Wraps occurrences held in external (e.g. memory-mapped) backing. The
    /// caller asserts they are sorted by `(graph, end)` and deduplicated;
    /// returns `None` when they are not, so a corrupt artifact is rejected
    /// instead of silently misread.
    pub fn from_backing(backing: SharedSlice<PathOccurrence>) -> Option<Self> {
        if backing.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        let end = backing.len();
        Some(PathList {
            backing,
            start: 0,
            end,
        })
    }

    /// The occurrences, sorted by `(graph, end)`.
    pub fn occurrences(&self) -> &[PathOccurrence] {
        &self.backing[self.start..self.end]
    }

    /// The sub-list of occurrences whose graph id lies in `graphs` — a range
    /// view sharing this list's arena (no occurrences are copied).
    pub fn slice_graphs(&self, graphs: std::ops::Range<u32>) -> PathList {
        let occs = self.occurrences();
        let lo = occs.partition_point(|occ| occ.graph.0 < graphs.start);
        let hi = lo + occs[lo..].partition_point(|occ| occ.graph.0 < graphs.end);
        PathList {
            backing: self.backing.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Number of distinct graphs containing the path — the paper's `|ℓ|`.
    pub fn graph_count(&self) -> usize {
        let mut count = 0;
        let mut last: Option<GraphId> = None;
        for occ in self.occurrences() {
            if last != Some(occ.graph) {
                count += 1;
                last = Some(occ.graph);
            }
        }
        count
    }

    /// Iterates over the distinct graphs in the list.
    pub fn graphs(&self) -> impl Iterator<Item = GraphId> + '_ {
        let mut last: Option<GraphId> = None;
        self.occurrences().iter().filter_map(move |occ| {
            if last == Some(occ.graph) {
                None
            } else {
                last = Some(occ.graph);
                Some(occ.graph)
            }
        })
    }

    /// The distinct graphs whose occurrence ends exactly at `last_node(graph)`
    /// — i.e. the graphs for which the current path is a complete
    /// transformation path.
    pub fn complete_graphs(&self, last_node: impl Fn(GraphId) -> u32) -> Vec<GraphId> {
        let mut out: Vec<GraphId> = self
            .occurrences()
            .iter()
            .filter(|occ| occ.end == last_node(occ.graph))
            .map(|occ| occ.graph)
            .collect();
        out.dedup();
        out
    }

    /// True when no graph contains the path.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The inverted index over edge labels of a set of transformation graphs.
///
/// Postings live in one flat CSR arena: the postings of label `l` occupy
/// `postings[label_offsets[l]..label_offsets[l + 1]]`, sorted by
/// `(graph, from, to)`; per-label distinct-graph counts are precomputed.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    /// All postings, grouped by label, each label's range sorted.
    postings: SharedSlice<Posting>,
    /// `label_offsets[l]..label_offsets[l + 1]` delimits label `l`'s range
    /// (length `num_labels + 1`).
    label_offsets: SharedSlice<u32>,
    /// `graph_counts[l]` — distinct graphs in label `l`'s posting range.
    graph_counts: SharedSlice<u32>,
}

/// Why [`InvertedIndex::from_parts`] rejected a CSR layout. Every variant
/// names the offending label so a corrupt artifact fails loudly and
/// precisely, never as a silent misread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexLayoutError {
    /// `label_offsets` must hold at least the terminating offset.
    OffsetsEmpty,
    /// `label_offsets` must start at 0.
    OffsetsStart,
    /// `label_offsets` must be non-decreasing.
    OffsetsNotMonotone {
        /// The first label whose offset decreases.
        label: usize,
    },
    /// The final offset must equal the postings arena length.
    OffsetsOutOfBounds {
        /// The final offset.
        last: u64,
        /// The postings arena length.
        postings: u64,
    },
    /// `graph_counts` must hold one count per label.
    GraphCountsLength {
        /// `label_offsets.len() - 1`.
        expected: usize,
        /// `graph_counts.len()`.
        actual: usize,
    },
    /// A label's posting range must be sorted by `(graph, from, to)`.
    RangeNotSorted {
        /// The unsorted label.
        label: usize,
    },
    /// A label's precomputed distinct-graph count must match its range.
    GraphCountMismatch {
        /// The label with the wrong count.
        label: usize,
        /// The count recomputed from the range.
        expected: u32,
        /// The stored count.
        actual: u32,
    },
}

impl std::fmt::Display for IndexLayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexLayoutError::OffsetsEmpty => write!(f, "label offsets are empty"),
            IndexLayoutError::OffsetsStart => write!(f, "label offsets do not start at 0"),
            IndexLayoutError::OffsetsNotMonotone { label } => {
                write!(f, "label offsets decrease at label {label}")
            }
            IndexLayoutError::OffsetsOutOfBounds { last, postings } => write!(
                f,
                "final label offset {last} does not match the postings arena length {postings}"
            ),
            IndexLayoutError::GraphCountsLength { expected, actual } => write!(
                f,
                "graph-count table holds {actual} entries, expected {expected}"
            ),
            IndexLayoutError::RangeNotSorted { label } => {
                write!(f, "posting range of label {label} is not sorted")
            }
            IndexLayoutError::GraphCountMismatch {
                label,
                expected,
                actual,
            } => write!(
                f,
                "graph count of label {label} is {actual}, recomputed {expected}"
            ),
        }
    }
}

impl std::error::Error for IndexLayoutError {}

impl InvertedIndex {
    /// Builds the index for `graphs`. `num_labels` must be at least the number
    /// of labels in the interner the graphs were built with (label ids index
    /// directly into the posting-list table).
    pub fn build(graphs: &[TransformationGraph], num_labels: usize) -> Self {
        // Pass 1: postings per label.
        let mut counts: Vec<u32> = vec![0; num_labels];
        for graph in graphs {
            for (_, _, label) in graph.label_triples() {
                let idx = label.index();
                if idx >= counts.len() {
                    counts.resize(idx + 1, 0);
                }
                counts[idx] += 1;
            }
        }
        // Offsets by prefix sum, then scatter through per-label cursors.
        let mut label_offsets: Vec<u32> = Vec::with_capacity(counts.len() + 1);
        let mut total = 0u32;
        for &count in &counts {
            label_offsets.push(total);
            total += count;
        }
        label_offsets.push(total);
        let mut postings = vec![
            Posting {
                graph: GraphId(0),
                from: 0,
                to: 0,
            };
            total as usize
        ];
        let mut cursors: Vec<u32> = label_offsets[..counts.len()].to_vec();
        for (gid, graph) in graphs.iter().enumerate() {
            for (from, to, label) in graph.label_triples() {
                let cursor = &mut cursors[label.index()];
                postings[*cursor as usize] = Posting {
                    graph: GraphId(gid as u32),
                    from,
                    to,
                };
                *cursor += 1;
            }
        }
        // Graphs were scattered in ascending id order, so each range is
        // already grouped by graph; the sort settles `(from, to)` within it.
        let mut graph_counts: Vec<u32> = Vec::with_capacity(counts.len());
        for l in 0..counts.len() {
            let range = label_offsets[l] as usize..label_offsets[l + 1] as usize;
            postings[range.clone()].sort_unstable();
            let mut distinct = 0u32;
            let mut last = None;
            for p in &postings[range] {
                if last != Some(p.graph) {
                    distinct += 1;
                    last = Some(p.graph);
                }
            }
            graph_counts.push(distinct);
        }
        InvertedIndex {
            postings: postings.into(),
            label_offsets: label_offsets.into(),
            graph_counts: graph_counts.into(),
        }
    }

    /// Extends the index with the postings of `new_graphs`, whose ids continue
    /// the existing numbering: the `i`-th new graph is graph
    /// `base_graphs + i`. `num_labels` is the label count after interning the
    /// new graphs (at least the current count — new graphs may only *add*
    /// labels).
    ///
    /// Because every new graph id exceeds every existing id, a touched label's
    /// range stays sorted as soon as its appended tail is: only the tails are
    /// sorted and only the touched labels' distinct-graph counts recomputed,
    /// while untouched ranges and counts are copied verbatim. The result is
    /// array-for-array identical to [`InvertedIndex::build`] over the
    /// concatenated graph slice (pinned by a property test), so the delta
    /// ingest path can grow an index without ever rebuilding it.
    pub fn append(
        &self,
        new_graphs: &[TransformationGraph],
        base_graphs: usize,
        num_labels: usize,
    ) -> InvertedIndex {
        let old_offsets = self.label_offsets.as_slice();
        let old_postings = self.postings.as_slice();
        let old_counts = self.graph_counts.as_slice();
        let old_labels = self.num_labels();
        // Pass 1: appended postings per label.
        let mut added: Vec<u32> = vec![0; num_labels.max(old_labels)];
        for graph in new_graphs {
            for (_, _, label) in graph.label_triples() {
                let idx = label.index();
                if idx >= added.len() {
                    added.resize(idx + 1, 0);
                }
                added[idx] += 1;
            }
        }
        let num_labels = added.len();
        let old_len = |l: usize| -> u32 {
            if l < old_labels {
                old_offsets[l + 1] - old_offsets[l]
            } else {
                0
            }
        };
        // Offsets by prefix sum over (old range length + appended count);
        // copy each old range into place and park the scatter cursor after it.
        let mut label_offsets: Vec<u32> = Vec::with_capacity(num_labels + 1);
        let mut total = 0u32;
        for (l, &extra) in added.iter().enumerate() {
            label_offsets.push(total);
            total += old_len(l) + extra;
        }
        label_offsets.push(total);
        let mut postings = vec![
            Posting {
                graph: GraphId(0),
                from: 0,
                to: 0,
            };
            total as usize
        ];
        let mut cursors: Vec<u32> = Vec::with_capacity(num_labels);
        for l in 0..num_labels {
            let start = label_offsets[l] as usize;
            let len = old_len(l) as usize;
            if len > 0 {
                let src = old_offsets[l] as usize..old_offsets[l + 1] as usize;
                postings[start..start + len].copy_from_slice(&old_postings[src]);
            }
            cursors.push(label_offsets[l] + len as u32);
        }
        for (i, graph) in new_graphs.iter().enumerate() {
            let gid = GraphId((base_graphs + i) as u32);
            for (from, to, label) in graph.label_triples() {
                let cursor = &mut cursors[label.index()];
                postings[*cursor as usize] = Posting {
                    graph: gid,
                    from,
                    to,
                };
                *cursor += 1;
            }
        }
        // New graphs were scattered in ascending id order, so each tail is
        // grouped by graph; sorting it settles `(from, to)` within groups,
        // and the whole range is sorted because new ids exceed old ones.
        let mut graph_counts: Vec<u32> = Vec::with_capacity(num_labels);
        for (l, &extra) in added.iter().enumerate() {
            let old = if l < old_labels { old_counts[l] } else { 0 };
            if extra == 0 {
                graph_counts.push(old);
                continue;
            }
            let tail =
                label_offsets[l] as usize + old_len(l) as usize..label_offsets[l + 1] as usize;
            postings[tail.clone()].sort_unstable();
            let mut distinct = 0u32;
            let mut last = None;
            for p in &postings[tail] {
                if last != Some(p.graph) {
                    distinct += 1;
                    last = Some(p.graph);
                }
            }
            graph_counts.push(old + distinct);
        }
        InvertedIndex {
            postings: postings.into(),
            label_offsets: label_offsets.into(),
            graph_counts: graph_counts.into(),
        }
    }

    /// Reassembles an index from its three CSR arrays — the zero-copy load
    /// path of the compiled-artifact format, where the slices borrow a
    /// memory-mapped file. The full layout invariant is verified in one O(n)
    /// pass (monotone offsets closing the arena, per-range `(graph, from,
    /// to)` sortedness, per-label distinct-graph counts), so an accepted
    /// index is indistinguishable from a freshly built one.
    pub fn from_parts(
        postings: SharedSlice<Posting>,
        label_offsets: SharedSlice<u32>,
        graph_counts: SharedSlice<u32>,
    ) -> Result<Self, IndexLayoutError> {
        let offsets = label_offsets.as_slice();
        if offsets.is_empty() {
            return Err(IndexLayoutError::OffsetsEmpty);
        }
        if offsets[0] != 0 {
            return Err(IndexLayoutError::OffsetsStart);
        }
        let num_labels = offsets.len() - 1;
        if graph_counts.len() != num_labels {
            return Err(IndexLayoutError::GraphCountsLength {
                expected: num_labels,
                actual: graph_counts.len(),
            });
        }
        if let Some(label) = (0..num_labels).find(|&l| offsets[l] > offsets[l + 1]) {
            return Err(IndexLayoutError::OffsetsNotMonotone { label });
        }
        if offsets[num_labels] as usize != postings.len() {
            return Err(IndexLayoutError::OffsetsOutOfBounds {
                last: offsets[num_labels] as u64,
                postings: postings.len() as u64,
            });
        }
        let arena = postings.as_slice();
        for label in 0..num_labels {
            // One fused pass per list: sortedness and the distinct-graph
            // count together. The arena is tens of MB on real datasets and
            // this loop runs on the artifact cold-start path.
            let range = &arena[offsets[label] as usize..offsets[label + 1] as usize];
            let mut distinct = 0u32;
            let mut last: Option<&Posting> = None;
            for p in range {
                match last {
                    Some(prev) if prev > p => {
                        return Err(IndexLayoutError::RangeNotSorted { label });
                    }
                    Some(prev) if prev.graph == p.graph => {}
                    _ => distinct += 1,
                }
                last = Some(p);
            }
            if distinct != graph_counts[label] {
                return Err(IndexLayoutError::GraphCountMismatch {
                    label,
                    expected: distinct,
                    actual: graph_counts[label],
                });
            }
        }
        Ok(InvertedIndex {
            postings,
            label_offsets,
            graph_counts,
        })
    }

    /// The three CSR arrays `(postings, label_offsets, graph_counts)` — what
    /// the compiled-artifact writer serializes.
    pub fn raw_parts(&self) -> (&[Posting], &[u32], &[u32]) {
        (
            self.postings.as_slice(),
            self.label_offsets.as_slice(),
            self.graph_counts.as_slice(),
        )
    }

    /// The posting list of a label (empty when the label never occurs).
    pub fn list(&self, label: LabelId) -> &[Posting] {
        let idx = label.index();
        if idx >= self.num_labels() {
            return &[];
        }
        &self.postings[self.label_offsets[idx] as usize..self.label_offsets[idx + 1] as usize]
    }

    /// Length of the posting list of a label.
    pub fn list_len(&self, label: LabelId) -> usize {
        self.list(label).len()
    }

    /// Number of *distinct graphs* in the posting list of a label (an upper
    /// bound on how many graphs can share any path through that label).
    /// Precomputed at build time — this is the pivot search's hottest pruning
    /// probe, consulted once per candidate extension.
    pub fn list_graph_count(&self, label: LabelId) -> usize {
        self.graph_counts.get(label.index()).copied().unwrap_or(0) as usize
    }

    /// Number of labels the index knows about.
    pub fn num_labels(&self) -> usize {
        self.label_offsets.len().saturating_sub(1)
    }

    /// Extends a path list by one label: the adjacency-aware intersection
    /// `ℓ ∩ I[label]` of Section 5.1. An occurrence `⟨G, end⟩` joins with a
    /// posting `⟨G, from, to⟩` iff `from == end`, producing `⟨G, to⟩`.
    ///
    /// The join is graph-scoped and galloping: both sides advance to each
    /// other's next graph by exponential + binary search instead of a linear
    /// scan, so a short occurrence list against a mega posting list (or vice
    /// versa) costs `O(short × log(long))`.
    pub fn extend(&self, current: &PathList, label: LabelId) -> PathList {
        let postings = self.list(label);
        let occs = current.occurrences();
        if postings.is_empty() || occs.is_empty() {
            return PathList::default();
        }
        let mut out: Vec<PathOccurrence> = Vec::new();
        let mut oi = 0usize;
        let mut pi = 0usize;
        while oi < occs.len() && pi < postings.len() {
            let graph = occs[oi].graph;
            // Gallop the postings to this graph's block.
            pi += gallop(&postings[pi..], |p| p.graph < graph);
            if pi == postings.len() {
                break;
            }
            if postings[pi].graph > graph {
                // The postings skipped ahead; gallop the occurrences to catch
                // up.
                let ahead = postings[pi].graph;
                oi += gallop(&occs[oi..], |occ| occ.graph < ahead);
                continue;
            }
            let block_end = pi + gallop(&postings[pi..], |p| p.graph == graph);
            let occs_end = oi + gallop(&occs[oi..], |occ| occ.graph == graph);
            // Intersect this graph's occurrence ends (ascending) against the
            // block's `from` fields (ascending): one forward sweep with a
            // binary jump per occurrence.
            let out_start = out.len();
            let mut pj = pi;
            for occ in &occs[oi..occs_end] {
                pj += gallop(&postings[pj..block_end], |p| p.from < occ.end);
                let mut pk = pj;
                while pk < block_end && postings[pk].from == occ.end {
                    out.push(PathOccurrence {
                        graph,
                        end: postings[pk].to,
                    });
                    pk += 1;
                }
            }
            // Postings are sorted by `(from, to)`, not by `to`, so this
            // graph's outputs need a local sort; duplicates (several postings
            // reaching the same node) are settled by the final dedup.
            out[out_start..].sort_unstable();
            oi = occs_end;
            pi = block_end;
        }
        out.dedup();
        PathList::from_sorted(out)
    }

    /// Postings stored across all labels (the CSR arena's length).
    pub fn num_postings(&self) -> usize {
        self.postings.len()
    }

    /// Convenience: the list of graphs containing a whole path (sequence of
    /// labels) anchored at the first node, computed by repeated [`extend`].
    ///
    /// [`extend`]: InvertedIndex::extend
    pub fn path_list(&self, num_graphs: usize, path: &[LabelId]) -> PathList {
        let mut list = PathList::universe(num_graphs);
        for &label in path {
            list = self.extend(&list, label);
            if list.is_empty() {
                break;
            }
        }
        list
    }
}

/// The first index of `slice` at which `pred` stops holding (the partition
/// point), found by exponential search from the front followed by a binary
/// search of the bracketed range — `O(log distance)` when the answer is near
/// the front, which is the common case for the graph-by-graph merge walks in
/// [`InvertedIndex::extend`]. `pred` must be monotone (true-prefix).
fn gallop<T>(slice: &[T], pred: impl Fn(&T) -> bool) -> usize {
    match slice.first() {
        Some(first) if pred(first) => {}
        _ => return 0,
    }
    let mut bound = 1usize;
    while bound < slice.len() && pred(&slice[bound]) {
        bound <<= 1;
    }
    // `pred` holds at `bound >> 1` and fails at `bound` (when in range).
    let lo = (bound >> 1) + 1;
    let hi = bound.min(slice.len());
    lo + slice[lo..hi].partition_point(pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_dsl::{Dir, PositionFn, StringFn, Term};
    use ec_graph::{GraphBuilder, GraphConfig, LabelInterner, Replacement};
    use proptest::prelude::*;

    /// Builds the three-replacement example of Example 5.1.
    fn example_5_1() -> (Vec<TransformationGraph>, LabelInterner, InvertedIndex) {
        let mut interner = LabelInterner::new();
        let builder = GraphBuilder::new(GraphConfig::default());
        let reps = [
            Replacement::new("Lee, Mary", "M. Lee"),
            Replacement::new("Smith, James", "J. Smith"),
            Replacement::new("Lee, Mary", "Mary Lee"),
        ];
        let graphs: Vec<TransformationGraph> = reps
            .iter()
            .map(|r| builder.build(r, &mut interner).unwrap())
            .collect();
        let index = InvertedIndex::build(&graphs, interner.len());
        (graphs, interner, index)
    }

    fn f1() -> StringFn {
        StringFn::sub_str(
            PositionFn::match_pos(Term::Upper, 1, Dir::Begin),
            PositionFn::match_pos(Term::Lower, 1, Dir::End),
        )
    }
    fn f2() -> StringFn {
        StringFn::sub_str(
            PositionFn::match_pos(Term::Whitespace, 1, Dir::End),
            PositionFn::match_pos(Term::Upper, -1, Dir::End),
        )
    }
    fn f3() -> StringFn {
        StringFn::constant(". ")
    }

    // Paper Example 5.1: the inverted lists of f1, f2, f3 and the intersection
    // of the path f2 ⊕ f3 ⊕ f1.
    #[test]
    fn paper_example_5_1_inverted_lists() {
        let (_, interner, index) = example_5_1();
        let id1 = interner.get(&f1()).expect("f1 interned");
        let id2 = interner.get(&f2()).expect("f2 interned");
        let id3 = interner.get(&f3()).expect("f3 interned");

        // I[f1] = (⟨G1,4,7⟩, ⟨G2,4,9⟩, ⟨G3,6,9⟩) in the paper's 1-based node
        // numbering = (⟨0,3,6⟩, ⟨1,3,8⟩, ⟨2,5,8⟩) here.
        let l1 = index.list(id1);
        assert!(l1.contains(&Posting {
            graph: GraphId(0),
            from: 3,
            to: 6
        }));
        assert!(l1.contains(&Posting {
            graph: GraphId(1),
            from: 3,
            to: 8
        }));
        assert!(l1.contains(&Posting {
            graph: GraphId(2),
            from: 5,
            to: 8
        }));

        // I[f2] = (⟨G1,1,2⟩, ⟨G2,1,2⟩, ⟨G3,1,2⟩) -> (⟨·,0,1⟩) here.
        let l2 = index.list(id2);
        for g in 0..3 {
            assert!(
                l2.contains(&Posting {
                    graph: GraphId(g),
                    from: 0,
                    to: 1
                }),
                "graph {g}"
            );
        }

        // I[f3] = (⟨G1,2,4⟩, ⟨G2,2,4⟩) -> (⟨·,1,3⟩); G3 ("Mary Lee") has no ". ".
        let l3 = index.list(id3);
        assert!(l3.contains(&Posting {
            graph: GraphId(0),
            from: 1,
            to: 3
        }));
        assert!(l3.contains(&Posting {
            graph: GraphId(1),
            from: 1,
            to: 3
        }));
        assert!(!l3.iter().any(|p| p.graph == GraphId(2)));
    }

    #[test]
    fn paper_example_5_1_path_intersection() {
        let (graphs, interner, index) = example_5_1();
        let path = vec![
            interner.get(&f2()).unwrap(),
            interner.get(&f3()).unwrap(),
            interner.get(&f1()).unwrap(),
        ];
        let list = index.path_list(graphs.len(), &path);
        // I[f2] ∩ I[f3] ∩ I[f1] = (⟨G1,1,7⟩, ⟨G2,1,9⟩): graphs 0 and 1, both
        // reaching their last node.
        assert_eq!(list.graph_count(), 2);
        let complete = list.complete_graphs(|g| graphs[g.index()].last_node());
        assert_eq!(complete, vec![GraphId(0), GraphId(1)]);
        assert_eq!(
            list.occurrences(),
            &[
                PathOccurrence {
                    graph: GraphId(0),
                    end: 6
                },
                PathOccurrence {
                    graph: GraphId(1),
                    end: 8
                }
            ]
        );
    }

    #[test]
    fn adjacency_is_enforced() {
        let (graphs, interner, index) = example_5_1();
        // f1 directly after f2 is NOT adjacent (f2 ends at node 1, f1 starts at 3).
        let path = vec![interner.get(&f2()).unwrap(), interner.get(&f1()).unwrap()];
        let list = index.path_list(graphs.len(), &path);
        assert!(list.is_empty());
    }

    #[test]
    fn universe_and_empty_path() {
        let (graphs, _, index) = example_5_1();
        let list = index.path_list(graphs.len(), &[]);
        assert_eq!(list.graph_count(), 3);
        assert_eq!(list, PathList::universe(3));
        assert_eq!(
            list.graphs().collect::<Vec<_>>(),
            vec![GraphId(0), GraphId(1), GraphId(2)]
        );
        // Unknown label -> empty.
        let unknown = LabelId(u32::MAX - 1);
        assert!(index.extend(&list, unknown).is_empty());
    }

    #[test]
    fn graph_count_counts_distinct_graphs() {
        let list = PathList::from_occurrences(vec![
            PathOccurrence {
                graph: GraphId(1),
                end: 3,
            },
            PathOccurrence {
                graph: GraphId(1),
                end: 5,
            },
            PathOccurrence {
                graph: GraphId(0),
                end: 2,
            },
        ]);
        assert_eq!(list.graph_count(), 2);
        assert_eq!(list.occurrences().len(), 3);
    }

    #[test]
    fn list_graph_count_vs_list_len() {
        let (_, interner, index) = example_5_1();
        // The constant label "e" occurs on several edges of the same graph.
        if let Some(id) = interner.get(&StringFn::constant("e")) {
            assert!(index.list_len(id) >= index.list_graph_count(id));
        }
        let id1 = interner.get(&f1()).unwrap();
        assert_eq!(index.list_graph_count(id1), 3);
    }

    #[test]
    fn constant_full_string_is_singleton_list() {
        let (graphs, interner, index) = example_5_1();
        let id = interner.get(&StringFn::constant("M. Lee")).unwrap();
        let list = index.path_list(graphs.len(), &[id]);
        assert_eq!(list.graph_count(), 1);
        let complete = list.complete_graphs(|g| graphs[g.index()].last_node());
        assert_eq!(complete, vec![GraphId(0)]);
    }

    #[test]
    fn slice_graphs_is_a_zero_copy_sub_view() {
        let list = PathList::from_occurrences(vec![
            PathOccurrence {
                graph: GraphId(0),
                end: 2,
            },
            PathOccurrence {
                graph: GraphId(2),
                end: 1,
            },
            PathOccurrence {
                graph: GraphId(2),
                end: 4,
            },
            PathOccurrence {
                graph: GraphId(5),
                end: 0,
            },
        ]);
        let mid = list.slice_graphs(1..5);
        assert_eq!(
            mid.occurrences(),
            &[
                PathOccurrence {
                    graph: GraphId(2),
                    end: 1
                },
                PathOccurrence {
                    graph: GraphId(2),
                    end: 4
                }
            ]
        );
        assert_eq!(mid.graph_count(), 1);
        // The sub-view shares the parent's arena.
        assert!(list.backing.ptr_eq(&mid.backing));
        assert!(list.slice_graphs(3..5).is_empty());
        assert_eq!(list.slice_graphs(0..6), list);
        // Slicing composes with `extend`-style equality semantics.
        assert_eq!(
            mid,
            PathList::from_occurrences(mid.occurrences().to_vec()),
            "a view equals its materialized copy"
        );
    }

    #[test]
    fn from_parts_accepts_a_built_layout_and_rejects_corrupt_ones() {
        let (graphs, interner, index) = example_5_1();
        let (p, o, c) = index.raw_parts();
        let (p, o, c) = (p.to_vec(), o.to_vec(), c.to_vec());
        let rebuilt =
            InvertedIndex::from_parts(p.clone().into(), o.clone().into(), c.clone().into())
                .expect("a freshly built layout validates");
        assert_eq!(rebuilt.num_labels(), index.num_labels());
        assert_eq!(rebuilt.num_postings(), index.num_postings());
        for l in 0..interner.len() {
            let label = LabelId(l as u32);
            assert_eq!(rebuilt.list(label), index.list(label));
            assert_eq!(
                rebuilt.list_graph_count(label),
                index.list_graph_count(label)
            );
        }
        let path = vec![
            interner.get(&f2()).unwrap(),
            interner.get(&f3()).unwrap(),
            interner.get(&f1()).unwrap(),
        ];
        assert_eq!(
            rebuilt.path_list(graphs.len(), &path),
            index.path_list(graphs.len(), &path)
        );

        assert_eq!(
            InvertedIndex::from_parts(p.clone().into(), Vec::new().into(), c.clone().into())
                .unwrap_err(),
            IndexLayoutError::OffsetsEmpty
        );
        let mut bad_start = o.clone();
        bad_start[0] = 1;
        assert_eq!(
            InvertedIndex::from_parts(p.clone().into(), bad_start.into(), c.clone().into())
                .unwrap_err(),
            IndexLayoutError::OffsetsStart
        );
        let mut truncated = o.clone();
        *truncated.last_mut().unwrap() -= 1;
        assert!(matches!(
            InvertedIndex::from_parts(p.clone().into(), truncated.into(), c.clone().into())
                .unwrap_err(),
            IndexLayoutError::OffsetsOutOfBounds { .. }
        ));
        assert!(matches!(
            InvertedIndex::from_parts(p.clone().into(), o.clone().into(), c[1..].to_vec().into())
                .unwrap_err(),
            IndexLayoutError::GraphCountsLength { .. }
        ));
        // Swap two postings inside the first non-trivial range: unsorted.
        let wide = (0..c.len())
            .find(|&l| o[l + 1] - o[l] >= 2)
            .expect("some label has two postings");
        let mut shuffled = p.clone();
        shuffled.swap(o[wide] as usize, o[wide] as usize + 1);
        assert!(matches!(
            InvertedIndex::from_parts(shuffled.into(), o.clone().into(), c.clone().into())
                .unwrap_err(),
            IndexLayoutError::RangeNotSorted { .. }
        ));
        let mut wrong_counts = c.clone();
        wrong_counts[0] += 1;
        assert!(matches!(
            InvertedIndex::from_parts(p.into(), o.into(), wrong_counts.into()).unwrap_err(),
            IndexLayoutError::GraphCountMismatch { .. }
        ));
    }

    /// Builds graphs for `pairs` with one shared interner, recording the
    /// interner size after the first `split` pairs — the state an incremental
    /// ingest sees at the batch boundary.
    fn graphs_with_split(
        pairs: &[(String, String)],
        split: usize,
    ) -> (Vec<TransformationGraph>, usize, usize) {
        let mut interner = LabelInterner::new();
        let builder = GraphBuilder::new(GraphConfig::default());
        let mut graphs = Vec::new();
        let mut labels_at_split = 0;
        for (i, (lhs, rhs)) in pairs.iter().enumerate() {
            if i == split {
                labels_at_split = interner.len();
            }
            if let Some(g) = builder.build(&Replacement::new(lhs, rhs), &mut interner) {
                graphs.push(g);
            }
        }
        if split >= pairs.len() {
            labels_at_split = interner.len();
        }
        (graphs, labels_at_split, interner.len())
    }

    #[test]
    fn append_matches_full_rebuild_on_the_example() {
        let pairs: Vec<(String, String)> = [
            ("Lee, Mary", "M. Lee"),
            ("Smith, James", "J. Smith"),
            ("Lee, Mary", "Mary Lee"),
            ("Ng, Ada", "A. Ng"),
        ]
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
        for split in 0..=pairs.len() {
            let (graphs, labels_at_split, labels_total) = graphs_with_split(&pairs, split);
            // All example pairs build, so the graph split equals the pair split.
            assert_eq!(graphs.len(), pairs.len());
            let prefix = InvertedIndex::build(&graphs[..split], labels_at_split);
            let appended = prefix.append(&graphs[split..], split, labels_total);
            let full = InvertedIndex::build(&graphs, labels_total);
            assert_eq!(appended.raw_parts(), full.raw_parts(), "split={split}");
        }
    }

    #[test]
    fn append_nothing_preserves_the_layout() {
        let (_, _, index) = example_5_1();
        let appended = index.append(&[], 3, index.num_labels());
        assert_eq!(appended.raw_parts(), index.raw_parts());
    }

    proptest! {
        /// The delta invariant the ingest path rides on: appending a suffix of
        /// graphs to the prefix's index is array-for-array identical to a full
        /// rebuild over all graphs.
        #[test]
        fn prop_append_equals_full_rebuild(
            pairs in proptest::collection::vec(("[a-c, ]{1,8}", "[a-c,. ]{1,8}"), 1..14),
            cut in 0usize..15,
        ) {
            let split = cut.min(pairs.len());
            // The builder may skip degenerate pairs; graphs built from the
            // first `split` pairs form the prefix regardless.
            let mut interner = LabelInterner::new();
            let builder = GraphBuilder::new(GraphConfig::default());
            let mut prefix_graphs = Vec::new();
            for (lhs, rhs) in &pairs[..split] {
                if lhs == rhs {
                    continue; // not a replacement
                }
                if let Some(g) = builder.build(&Replacement::new(lhs, rhs), &mut interner) {
                    prefix_graphs.push(g);
                }
            }
            let labels_at_split = interner.len();
            let mut all_graphs = prefix_graphs.clone();
            for (lhs, rhs) in &pairs[split..] {
                if lhs == rhs {
                    continue;
                }
                if let Some(g) = builder.build(&Replacement::new(lhs, rhs), &mut interner) {
                    all_graphs.push(g);
                }
            }
            let prefix = InvertedIndex::build(&prefix_graphs, labels_at_split);
            let appended = prefix.append(
                &all_graphs[prefix_graphs.len()..],
                prefix_graphs.len(),
                interner.len(),
            );
            let full = InvertedIndex::build(&all_graphs, interner.len());
            prop_assert_eq!(appended.raw_parts(), full.raw_parts());
        }
    }

    #[test]
    fn shared_slice_external_backing_is_transparent() {
        #[derive(Debug)]
        struct VecBacking(Vec<u32>);
        impl SliceBacking<u32> for VecBacking {
            fn as_slice(&self) -> &[u32] {
                &self.0
            }
        }
        let external = SharedSlice::external(Arc::new(VecBacking(vec![1, 2, 3])));
        assert_eq!(external.as_slice(), &[1, 2, 3]);
        assert!(external.ptr_eq(&external.clone()));
        let owned: SharedSlice<u32> = vec![1, 2, 3].into();
        assert!(!external.ptr_eq(&owned));
        assert!(SharedSlice::<u32>::default().as_slice().is_empty());
    }

    #[test]
    fn gallop_finds_every_partition_point() {
        for len in 0..20usize {
            let slice: Vec<usize> = (0..len).collect();
            for cut in 0..=len {
                assert_eq!(gallop(&slice, |&x| x < cut), cut, "len={len} cut={cut}");
            }
        }
    }

    #[test]
    fn extend_from_manual_list_respects_start_nodes() {
        let (_, interner, index) = example_5_1();
        let id1 = interner.get(&f1()).unwrap();
        // Start "mid-path" at node 3 of graph 0 and node 0 of graph 1: only the
        // graph-0 occurrence can extend through f1 (which starts at 3 there).
        let current = PathList::from_occurrences(vec![
            PathOccurrence {
                graph: GraphId(0),
                end: 3,
            },
            PathOccurrence {
                graph: GraphId(1),
                end: 0,
            },
        ]);
        let next = index.extend(&current, id1);
        assert_eq!(
            next.occurrences(),
            &[PathOccurrence {
                graph: GraphId(0),
                end: 6
            }]
        );
    }
}
