//! # ec-index — the edge-label inverted index
//!
//! Pivot-path search (Section 5.1 of the paper) needs to answer one question
//! very quickly: *given a path — a sequence of string-function labels — which
//! transformation graphs contain it, starting at their first node?* The paper
//! answers it with an inverted index keyed by edge labels whose postings carry
//! the edge endpoints, so that intersecting two lists can require the edges to
//! be **adjacent** (the end node of one is the start node of the next).
//!
//! This crate provides that index ([`InvertedIndex`]) and the path-occurrence
//! lists it produces ([`PathList`]). A [`PathList`] tracks, for every graph
//! that contains the current path anchored at its first node, the node the
//! path has reached; extending the path by a label is a single
//! [`InvertedIndex::extend`] call.
//!
//! ## Layout
//!
//! The index stores all postings in one flat **CSR** (compressed sparse row)
//! arena: `label_offsets[l]..label_offsets[l + 1]` delimits the postings of
//! label `l`, sorted by `(graph, from, to)`. [`InvertedIndex::extend`] walks
//! an occurrence list and a posting list graph-by-graph, **galloping** over
//! whichever side is ahead, so intersecting a short list against a long one
//! costs `O(short × log(long))` instead of a linear scan of both. Per-label
//! distinct-graph counts are precomputed at build time, making the search's
//! hottest pruning probe ([`InvertedIndex::list_graph_count`]) O(1).
//!
//! A [`PathList`] is a range view over an `Arc`-shared occurrence arena:
//! cloning one (the pivot search snapshots its best list on every
//! improvement) is a reference-count bump, and [`PathList::slice_graphs`]
//! splits a list by graph range without copying occurrences — which is what
//! lets search subtasks carry their lists for free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ec_graph::{LabelId, TransformationGraph};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifier of a transformation graph inside one grouping problem: the index
/// of the graph in the slice the [`InvertedIndex`] was built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GraphId(pub u32);

impl GraphId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One posting of the inverted index: graph `graph` has an edge `(from, to)`
/// carrying the label the posting is filed under (the paper's `⟨G, i, j⟩`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Posting {
    /// The graph containing the edge.
    pub graph: GraphId,
    /// Source node of the edge.
    pub from: u32,
    /// Target node of the edge.
    pub to: u32,
}

/// An occurrence of the current path in one graph: the path starts at the
/// graph's first node and has reached node `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PathOccurrence {
    /// The graph containing the occurrence.
    pub graph: GraphId,
    /// The node reached by the path (the `j` of the last edge).
    pub end: u32,
}

/// The list of graphs containing the current path (the paper's `ℓ`).
///
/// Occurrences are kept sorted by `(graph, end)` and deduplicated. A graph may
/// appear with several `end` nodes when multi-valued (affix) labels allow the
/// same label sequence to cover different spans of the output string; the
/// *graph count* [`PathList::graph_count`] — what the paper calls `|ℓ|` — is
/// the number of distinct graphs.
///
/// The list is a `start..end` view over an `Arc`-shared occurrence arena:
/// [`Clone`] is a reference-count bump and [`PathList::slice_graphs`]
/// produces a graph-range sub-view without copying, so search subproblems can
/// carry (and snapshot) lists for free.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PathList {
    backing: Arc<[PathOccurrence]>,
    start: usize,
    end: usize,
}

impl PartialEq for PathList {
    fn eq(&self, other: &Self) -> bool {
        self.occurrences() == other.occurrences()
    }
}

impl Eq for PathList {}

impl PathList {
    /// The list for the empty path over `num_graphs` graphs: every graph
    /// contains the empty path, anchored at its first node (node 0).
    pub fn universe(num_graphs: usize) -> Self {
        PathList::from_sorted(
            (0..num_graphs)
                .map(|g| PathOccurrence {
                    graph: GraphId(g as u32),
                    end: 0,
                })
                .collect(),
        )
    }

    /// Builds a list from raw occurrences (sorted and deduplicated).
    pub fn from_occurrences(mut occurrences: Vec<PathOccurrence>) -> Self {
        occurrences.sort();
        occurrences.dedup();
        PathList::from_sorted(occurrences)
    }

    /// Wraps occurrences that are already sorted by `(graph, end)` and
    /// deduplicated.
    fn from_sorted(occurrences: Vec<PathOccurrence>) -> Self {
        if occurrences.is_empty() {
            // `Arc<[T]>::default()` is a shared static — dead-end extends
            // (the search's common case) allocate nothing.
            return PathList::default();
        }
        let backing: Arc<[PathOccurrence]> = occurrences.into();
        PathList {
            start: 0,
            end: backing.len(),
            backing,
        }
    }

    /// The occurrences, sorted by `(graph, end)`.
    pub fn occurrences(&self) -> &[PathOccurrence] {
        &self.backing[self.start..self.end]
    }

    /// The sub-list of occurrences whose graph id lies in `graphs` — a range
    /// view sharing this list's arena (no occurrences are copied).
    pub fn slice_graphs(&self, graphs: std::ops::Range<u32>) -> PathList {
        let occs = self.occurrences();
        let lo = occs.partition_point(|occ| occ.graph.0 < graphs.start);
        let hi = lo + occs[lo..].partition_point(|occ| occ.graph.0 < graphs.end);
        PathList {
            backing: Arc::clone(&self.backing),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Number of distinct graphs containing the path — the paper's `|ℓ|`.
    pub fn graph_count(&self) -> usize {
        let mut count = 0;
        let mut last: Option<GraphId> = None;
        for occ in self.occurrences() {
            if last != Some(occ.graph) {
                count += 1;
                last = Some(occ.graph);
            }
        }
        count
    }

    /// Iterates over the distinct graphs in the list.
    pub fn graphs(&self) -> impl Iterator<Item = GraphId> + '_ {
        let mut last: Option<GraphId> = None;
        self.occurrences().iter().filter_map(move |occ| {
            if last == Some(occ.graph) {
                None
            } else {
                last = Some(occ.graph);
                Some(occ.graph)
            }
        })
    }

    /// The distinct graphs whose occurrence ends exactly at `last_node(graph)`
    /// — i.e. the graphs for which the current path is a complete
    /// transformation path.
    pub fn complete_graphs(&self, last_node: impl Fn(GraphId) -> u32) -> Vec<GraphId> {
        let mut out: Vec<GraphId> = self
            .occurrences()
            .iter()
            .filter(|occ| occ.end == last_node(occ.graph))
            .map(|occ| occ.graph)
            .collect();
        out.dedup();
        out
    }

    /// True when no graph contains the path.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The inverted index over edge labels of a set of transformation graphs.
///
/// Postings live in one flat CSR arena: the postings of label `l` occupy
/// `postings[label_offsets[l]..label_offsets[l + 1]]`, sorted by
/// `(graph, from, to)`; per-label distinct-graph counts are precomputed.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    /// All postings, grouped by label, each label's range sorted.
    postings: Vec<Posting>,
    /// `label_offsets[l]..label_offsets[l + 1]` delimits label `l`'s range
    /// (length `num_labels + 1`).
    label_offsets: Vec<u32>,
    /// `graph_counts[l]` — distinct graphs in label `l`'s posting range.
    graph_counts: Vec<u32>,
}

impl InvertedIndex {
    /// Builds the index for `graphs`. `num_labels` must be at least the number
    /// of labels in the interner the graphs were built with (label ids index
    /// directly into the posting-list table).
    pub fn build(graphs: &[TransformationGraph], num_labels: usize) -> Self {
        // Pass 1: postings per label.
        let mut counts: Vec<u32> = vec![0; num_labels];
        for graph in graphs {
            for (_, _, label) in graph.label_triples() {
                let idx = label.index();
                if idx >= counts.len() {
                    counts.resize(idx + 1, 0);
                }
                counts[idx] += 1;
            }
        }
        // Offsets by prefix sum, then scatter through per-label cursors.
        let mut label_offsets: Vec<u32> = Vec::with_capacity(counts.len() + 1);
        let mut total = 0u32;
        for &count in &counts {
            label_offsets.push(total);
            total += count;
        }
        label_offsets.push(total);
        let mut postings = vec![
            Posting {
                graph: GraphId(0),
                from: 0,
                to: 0,
            };
            total as usize
        ];
        let mut cursors: Vec<u32> = label_offsets[..counts.len()].to_vec();
        for (gid, graph) in graphs.iter().enumerate() {
            for (from, to, label) in graph.label_triples() {
                let cursor = &mut cursors[label.index()];
                postings[*cursor as usize] = Posting {
                    graph: GraphId(gid as u32),
                    from,
                    to,
                };
                *cursor += 1;
            }
        }
        // Graphs were scattered in ascending id order, so each range is
        // already grouped by graph; the sort settles `(from, to)` within it.
        let mut graph_counts: Vec<u32> = Vec::with_capacity(counts.len());
        for l in 0..counts.len() {
            let range = label_offsets[l] as usize..label_offsets[l + 1] as usize;
            postings[range.clone()].sort_unstable();
            let mut distinct = 0u32;
            let mut last = None;
            for p in &postings[range] {
                if last != Some(p.graph) {
                    distinct += 1;
                    last = Some(p.graph);
                }
            }
            graph_counts.push(distinct);
        }
        InvertedIndex {
            postings,
            label_offsets,
            graph_counts,
        }
    }

    /// The posting list of a label (empty when the label never occurs).
    pub fn list(&self, label: LabelId) -> &[Posting] {
        let idx = label.index();
        if idx >= self.num_labels() {
            return &[];
        }
        &self.postings[self.label_offsets[idx] as usize..self.label_offsets[idx + 1] as usize]
    }

    /// Length of the posting list of a label.
    pub fn list_len(&self, label: LabelId) -> usize {
        self.list(label).len()
    }

    /// Number of *distinct graphs* in the posting list of a label (an upper
    /// bound on how many graphs can share any path through that label).
    /// Precomputed at build time — this is the pivot search's hottest pruning
    /// probe, consulted once per candidate extension.
    pub fn list_graph_count(&self, label: LabelId) -> usize {
        self.graph_counts.get(label.index()).copied().unwrap_or(0) as usize
    }

    /// Number of labels the index knows about.
    pub fn num_labels(&self) -> usize {
        self.label_offsets.len().saturating_sub(1)
    }

    /// Extends a path list by one label: the adjacency-aware intersection
    /// `ℓ ∩ I[label]` of Section 5.1. An occurrence `⟨G, end⟩` joins with a
    /// posting `⟨G, from, to⟩` iff `from == end`, producing `⟨G, to⟩`.
    ///
    /// The join is graph-scoped and galloping: both sides advance to each
    /// other's next graph by exponential + binary search instead of a linear
    /// scan, so a short occurrence list against a mega posting list (or vice
    /// versa) costs `O(short × log(long))`.
    pub fn extend(&self, current: &PathList, label: LabelId) -> PathList {
        let postings = self.list(label);
        let occs = current.occurrences();
        if postings.is_empty() || occs.is_empty() {
            return PathList::default();
        }
        let mut out: Vec<PathOccurrence> = Vec::new();
        let mut oi = 0usize;
        let mut pi = 0usize;
        while oi < occs.len() && pi < postings.len() {
            let graph = occs[oi].graph;
            // Gallop the postings to this graph's block.
            pi += gallop(&postings[pi..], |p| p.graph < graph);
            if pi == postings.len() {
                break;
            }
            if postings[pi].graph > graph {
                // The postings skipped ahead; gallop the occurrences to catch
                // up.
                let ahead = postings[pi].graph;
                oi += gallop(&occs[oi..], |occ| occ.graph < ahead);
                continue;
            }
            let block_end = pi + gallop(&postings[pi..], |p| p.graph == graph);
            let occs_end = oi + gallop(&occs[oi..], |occ| occ.graph == graph);
            // Intersect this graph's occurrence ends (ascending) against the
            // block's `from` fields (ascending): one forward sweep with a
            // binary jump per occurrence.
            let out_start = out.len();
            let mut pj = pi;
            for occ in &occs[oi..occs_end] {
                pj += gallop(&postings[pj..block_end], |p| p.from < occ.end);
                let mut pk = pj;
                while pk < block_end && postings[pk].from == occ.end {
                    out.push(PathOccurrence {
                        graph,
                        end: postings[pk].to,
                    });
                    pk += 1;
                }
            }
            // Postings are sorted by `(from, to)`, not by `to`, so this
            // graph's outputs need a local sort; duplicates (several postings
            // reaching the same node) are settled by the final dedup.
            out[out_start..].sort_unstable();
            oi = occs_end;
            pi = block_end;
        }
        out.dedup();
        PathList::from_sorted(out)
    }

    /// Postings stored across all labels (the CSR arena's length).
    pub fn num_postings(&self) -> usize {
        self.postings.len()
    }

    /// Convenience: the list of graphs containing a whole path (sequence of
    /// labels) anchored at the first node, computed by repeated [`extend`].
    ///
    /// [`extend`]: InvertedIndex::extend
    pub fn path_list(&self, num_graphs: usize, path: &[LabelId]) -> PathList {
        let mut list = PathList::universe(num_graphs);
        for &label in path {
            list = self.extend(&list, label);
            if list.is_empty() {
                break;
            }
        }
        list
    }
}

/// The first index of `slice` at which `pred` stops holding (the partition
/// point), found by exponential search from the front followed by a binary
/// search of the bracketed range — `O(log distance)` when the answer is near
/// the front, which is the common case for the graph-by-graph merge walks in
/// [`InvertedIndex::extend`]. `pred` must be monotone (true-prefix).
fn gallop<T>(slice: &[T], pred: impl Fn(&T) -> bool) -> usize {
    match slice.first() {
        Some(first) if pred(first) => {}
        _ => return 0,
    }
    let mut bound = 1usize;
    while bound < slice.len() && pred(&slice[bound]) {
        bound <<= 1;
    }
    // `pred` holds at `bound >> 1` and fails at `bound` (when in range).
    let lo = (bound >> 1) + 1;
    let hi = bound.min(slice.len());
    lo + slice[lo..hi].partition_point(pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_dsl::{Dir, PositionFn, StringFn, Term};
    use ec_graph::{GraphBuilder, GraphConfig, LabelInterner, Replacement};

    /// Builds the three-replacement example of Example 5.1.
    fn example_5_1() -> (Vec<TransformationGraph>, LabelInterner, InvertedIndex) {
        let mut interner = LabelInterner::new();
        let builder = GraphBuilder::new(GraphConfig::default());
        let reps = [
            Replacement::new("Lee, Mary", "M. Lee"),
            Replacement::new("Smith, James", "J. Smith"),
            Replacement::new("Lee, Mary", "Mary Lee"),
        ];
        let graphs: Vec<TransformationGraph> = reps
            .iter()
            .map(|r| builder.build(r, &mut interner).unwrap())
            .collect();
        let index = InvertedIndex::build(&graphs, interner.len());
        (graphs, interner, index)
    }

    fn f1() -> StringFn {
        StringFn::sub_str(
            PositionFn::match_pos(Term::Upper, 1, Dir::Begin),
            PositionFn::match_pos(Term::Lower, 1, Dir::End),
        )
    }
    fn f2() -> StringFn {
        StringFn::sub_str(
            PositionFn::match_pos(Term::Whitespace, 1, Dir::End),
            PositionFn::match_pos(Term::Upper, -1, Dir::End),
        )
    }
    fn f3() -> StringFn {
        StringFn::constant(". ")
    }

    // Paper Example 5.1: the inverted lists of f1, f2, f3 and the intersection
    // of the path f2 ⊕ f3 ⊕ f1.
    #[test]
    fn paper_example_5_1_inverted_lists() {
        let (_, interner, index) = example_5_1();
        let id1 = interner.get(&f1()).expect("f1 interned");
        let id2 = interner.get(&f2()).expect("f2 interned");
        let id3 = interner.get(&f3()).expect("f3 interned");

        // I[f1] = (⟨G1,4,7⟩, ⟨G2,4,9⟩, ⟨G3,6,9⟩) in the paper's 1-based node
        // numbering = (⟨0,3,6⟩, ⟨1,3,8⟩, ⟨2,5,8⟩) here.
        let l1 = index.list(id1);
        assert!(l1.contains(&Posting {
            graph: GraphId(0),
            from: 3,
            to: 6
        }));
        assert!(l1.contains(&Posting {
            graph: GraphId(1),
            from: 3,
            to: 8
        }));
        assert!(l1.contains(&Posting {
            graph: GraphId(2),
            from: 5,
            to: 8
        }));

        // I[f2] = (⟨G1,1,2⟩, ⟨G2,1,2⟩, ⟨G3,1,2⟩) -> (⟨·,0,1⟩) here.
        let l2 = index.list(id2);
        for g in 0..3 {
            assert!(
                l2.contains(&Posting {
                    graph: GraphId(g),
                    from: 0,
                    to: 1
                }),
                "graph {g}"
            );
        }

        // I[f3] = (⟨G1,2,4⟩, ⟨G2,2,4⟩) -> (⟨·,1,3⟩); G3 ("Mary Lee") has no ". ".
        let l3 = index.list(id3);
        assert!(l3.contains(&Posting {
            graph: GraphId(0),
            from: 1,
            to: 3
        }));
        assert!(l3.contains(&Posting {
            graph: GraphId(1),
            from: 1,
            to: 3
        }));
        assert!(!l3.iter().any(|p| p.graph == GraphId(2)));
    }

    #[test]
    fn paper_example_5_1_path_intersection() {
        let (graphs, interner, index) = example_5_1();
        let path = vec![
            interner.get(&f2()).unwrap(),
            interner.get(&f3()).unwrap(),
            interner.get(&f1()).unwrap(),
        ];
        let list = index.path_list(graphs.len(), &path);
        // I[f2] ∩ I[f3] ∩ I[f1] = (⟨G1,1,7⟩, ⟨G2,1,9⟩): graphs 0 and 1, both
        // reaching their last node.
        assert_eq!(list.graph_count(), 2);
        let complete = list.complete_graphs(|g| graphs[g.index()].last_node());
        assert_eq!(complete, vec![GraphId(0), GraphId(1)]);
        assert_eq!(
            list.occurrences(),
            &[
                PathOccurrence {
                    graph: GraphId(0),
                    end: 6
                },
                PathOccurrence {
                    graph: GraphId(1),
                    end: 8
                }
            ]
        );
    }

    #[test]
    fn adjacency_is_enforced() {
        let (graphs, interner, index) = example_5_1();
        // f1 directly after f2 is NOT adjacent (f2 ends at node 1, f1 starts at 3).
        let path = vec![interner.get(&f2()).unwrap(), interner.get(&f1()).unwrap()];
        let list = index.path_list(graphs.len(), &path);
        assert!(list.is_empty());
    }

    #[test]
    fn universe_and_empty_path() {
        let (graphs, _, index) = example_5_1();
        let list = index.path_list(graphs.len(), &[]);
        assert_eq!(list.graph_count(), 3);
        assert_eq!(list, PathList::universe(3));
        assert_eq!(
            list.graphs().collect::<Vec<_>>(),
            vec![GraphId(0), GraphId(1), GraphId(2)]
        );
        // Unknown label -> empty.
        let unknown = LabelId(u32::MAX - 1);
        assert!(index.extend(&list, unknown).is_empty());
    }

    #[test]
    fn graph_count_counts_distinct_graphs() {
        let list = PathList::from_occurrences(vec![
            PathOccurrence {
                graph: GraphId(1),
                end: 3,
            },
            PathOccurrence {
                graph: GraphId(1),
                end: 5,
            },
            PathOccurrence {
                graph: GraphId(0),
                end: 2,
            },
        ]);
        assert_eq!(list.graph_count(), 2);
        assert_eq!(list.occurrences().len(), 3);
    }

    #[test]
    fn list_graph_count_vs_list_len() {
        let (_, interner, index) = example_5_1();
        // The constant label "e" occurs on several edges of the same graph.
        if let Some(id) = interner.get(&StringFn::constant("e")) {
            assert!(index.list_len(id) >= index.list_graph_count(id));
        }
        let id1 = interner.get(&f1()).unwrap();
        assert_eq!(index.list_graph_count(id1), 3);
    }

    #[test]
    fn constant_full_string_is_singleton_list() {
        let (graphs, interner, index) = example_5_1();
        let id = interner.get(&StringFn::constant("M. Lee")).unwrap();
        let list = index.path_list(graphs.len(), &[id]);
        assert_eq!(list.graph_count(), 1);
        let complete = list.complete_graphs(|g| graphs[g.index()].last_node());
        assert_eq!(complete, vec![GraphId(0)]);
    }

    #[test]
    fn slice_graphs_is_a_zero_copy_sub_view() {
        let list = PathList::from_occurrences(vec![
            PathOccurrence {
                graph: GraphId(0),
                end: 2,
            },
            PathOccurrence {
                graph: GraphId(2),
                end: 1,
            },
            PathOccurrence {
                graph: GraphId(2),
                end: 4,
            },
            PathOccurrence {
                graph: GraphId(5),
                end: 0,
            },
        ]);
        let mid = list.slice_graphs(1..5);
        assert_eq!(
            mid.occurrences(),
            &[
                PathOccurrence {
                    graph: GraphId(2),
                    end: 1
                },
                PathOccurrence {
                    graph: GraphId(2),
                    end: 4
                }
            ]
        );
        assert_eq!(mid.graph_count(), 1);
        // The sub-view shares the parent's arena.
        assert!(Arc::ptr_eq(&list.backing, &mid.backing));
        assert!(list.slice_graphs(3..5).is_empty());
        assert_eq!(list.slice_graphs(0..6), list);
        // Slicing composes with `extend`-style equality semantics.
        assert_eq!(
            mid,
            PathList::from_occurrences(mid.occurrences().to_vec()),
            "a view equals its materialized copy"
        );
    }

    #[test]
    fn gallop_finds_every_partition_point() {
        for len in 0..20usize {
            let slice: Vec<usize> = (0..len).collect();
            for cut in 0..=len {
                assert_eq!(gallop(&slice, |&x| x < cut), cut, "len={len} cut={cut}");
            }
        }
    }

    #[test]
    fn extend_from_manual_list_respects_start_nodes() {
        let (_, interner, index) = example_5_1();
        let id1 = interner.get(&f1()).unwrap();
        // Start "mid-path" at node 3 of graph 0 and node 0 of graph 1: only the
        // graph-0 occurrence can extend through f1 (which starts at 3 there).
        let current = PathList::from_occurrences(vec![
            PathOccurrence {
                graph: GraphId(0),
                end: 3,
            },
            PathOccurrence {
                graph: GraphId(1),
                end: 0,
            },
        ]);
        let next = index.extend(&current, id1);
        assert_eq!(
            next.occurrences(),
            &[PathOccurrence {
                graph: GraphId(0),
                end: 6
            }]
        );
    }
}
