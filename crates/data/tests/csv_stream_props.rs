//! Property tests for the incremental CSV reader: quoted, multiline and CRLF
//! fields must round-trip through `CsvReader` at every refill-chunk size, and
//! the incremental parser must agree byte-for-byte — records *and* errors —
//! with the original whole-document parser, which is kept here verbatim as
//! the reference model.

use ec_data::csv::{parse, write, CsvError, CsvErrorKind, CsvReader, CsvWriter};
use proptest::prelude::*;
use std::io::Read;

// ---------------------------------------------------------------------------
// Reference model: the pre-streaming, char-based whole-document parser,
// copied verbatim from `ec_data::csv::parse` before it became an adapter
// over `CsvReader`.
// ---------------------------------------------------------------------------

fn reference_parse(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut line = 1usize;
    let mut in_quotes = false;
    let mut field_started = false;
    let mut expected: Option<usize> = None;

    let mut chars = text.chars().peekable();
    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                        match chars.peek() {
                            None | Some(',') | Some('\n') | Some('\r') => {}
                            Some(_) => {
                                return Err(CsvError {
                                    line,
                                    kind: CsvErrorKind::InvalidQuoteEscape,
                                })
                            }
                        }
                    }
                }
                '\n' => {
                    field.push('\n');
                    line += 1;
                }
                other => field.push(other),
            }
            continue;
        }
        match ch {
            '"' if field.is_empty() && !field_started => {
                in_quotes = true;
                field_started = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                field_started = false;
            }
            '\r' => {}
            '\n' => {
                record.push(std::mem::take(&mut field));
                field_started = false;
                reference_finish(&mut records, &mut record, &mut expected, line)?;
                line += 1;
            }
            other => {
                field.push(other);
                field_started = true;
            }
        }
    }
    if in_quotes {
        return Err(CsvError {
            line,
            kind: CsvErrorKind::UnterminatedQuote,
        });
    }
    if field_started || !field.is_empty() || !record.is_empty() {
        record.push(field);
        reference_finish(&mut records, &mut record, &mut expected, line)?;
    }
    Ok(records)
}

fn reference_finish(
    records: &mut Vec<Vec<String>>,
    record: &mut Vec<String>,
    expected: &mut Option<usize>,
    line: usize,
) -> Result<(), CsvError> {
    if record.len() == 1 && record[0].is_empty() {
        record.clear();
        return Ok(());
    }
    match expected {
        None => *expected = Some(record.len()),
        Some(n) if *n != record.len() => {
            return Err(CsvError {
                line,
                kind: CsvErrorKind::FieldCountMismatch {
                    expected: *n,
                    found: record.len(),
                },
            })
        }
        Some(_) => {}
    }
    records.push(std::mem::take(record));
    Ok(())
}

// ---------------------------------------------------------------------------
// Harness: drive CsvReader across arbitrary refill boundaries.
// ---------------------------------------------------------------------------

/// Hands out at most `chunk` bytes per `read` call.
struct Throttled<'a> {
    bytes: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for Throttled<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.bytes.len() - self.pos);
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn parse_chunked(text: &str, chunk: usize) -> Result<Vec<Vec<String>>, CsvError> {
    CsvReader::new(Throttled {
        bytes: text.as_bytes(),
        pos: 0,
        chunk,
    })
    .collect()
}

// ---------------------------------------------------------------------------
// Strategies: fields deliberately heavy on the RFC-4180 special characters
// (quotes, commas, LF, CR) so quoted, multiline and CRLF handling is
// exercised constantly.
// ---------------------------------------------------------------------------

fn arb_field() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('B'),
            Just('7'),
            Just(' '),
            Just('é'),
            Just('"'),
            Just(','),
            Just('\n'),
            Just('\r'),
        ],
        0..8usize,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Equal-width records; a lone empty field is padded so the written record is
/// not a blank line (which the parser skips by design).
fn arb_records() -> impl Strategy<Value = Vec<Vec<String>>> {
    (1usize..4).prop_flat_map(|width| {
        proptest::collection::vec(
            proptest::collection::vec(arb_field(), width).prop_map(move |mut record| {
                if width == 1 && record[0].is_empty() {
                    record[0].push('x');
                }
                record
            }),
            0..7usize,
        )
    })
}

/// Arbitrary CSV-ish text, malformed inputs very much included.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('b'),
            Just('"'),
            Just(','),
            Just('\n'),
            Just('\r'),
            Just(' '),
        ],
        0..40usize,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

proptest! {
    /// Quoted / multiline / CRLF fields round-trip through the incremental
    /// reader at every chunk size, and the incremental reader agrees with
    /// the reference whole-document parser on the written text.
    #[test]
    fn written_records_round_trip_through_the_incremental_reader(
        records in arb_records(),
        chunk in 1usize..9,
    ) {
        let text = write(&records);
        prop_assert_eq!(reference_parse(&text).unwrap(), records.clone());
        prop_assert_eq!(parse_chunked(&text, chunk).unwrap(), records.clone());
        prop_assert_eq!(parse(&text).unwrap(), records);
    }

    /// On arbitrary (often malformed) text the incremental reader and the
    /// reference parser agree exactly: same records or the same error, at
    /// every refill-chunk size.
    #[test]
    fn incremental_reader_matches_the_reference_parser(
        text in arb_text(),
        chunk in 1usize..9,
    ) {
        let expected = reference_parse(&text);
        prop_assert_eq!(parse_chunked(&text, chunk), expected.clone());
        prop_assert_eq!(parse(&text), expected);
    }

    /// The record-at-a-time writer produces byte-identical output to the
    /// whole-document `write` adapter.
    #[test]
    fn csv_writer_matches_the_whole_document_writer(records in arb_records()) {
        let mut writer = CsvWriter::new(Vec::new());
        for record in &records {
            writer.write_record(record).unwrap();
        }
        let streamed = String::from_utf8(writer.into_inner()).unwrap();
        prop_assert_eq!(streamed, write(&records));
    }
}
