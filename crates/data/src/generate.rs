//! Synthetic dataset generators.
//!
//! Each generator draws latent entities, clusters them, and renders every
//! record either as a *variant* of the cluster's entity (one of several
//! formats, mirroring the transformation families of Table 4 and Figure 2) or
//! as a *conflict* (a rendering of a different entity), with mixture rates
//! tuned so that the variant/conflict pair fractions and cluster-size profiles
//! approach the paper's Table 6. All generators are deterministic given the
//! seed in [`GeneratorConfig`].

use crate::model::{Cell, Cluster, Dataset, Row};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a dataset generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of clusters (entities) to generate.
    pub num_clusters: usize,
    /// RNG seed; the same seed always produces the same dataset.
    pub seed: u64,
    /// Number of distinct data sources records are attributed to.
    pub num_sources: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            num_clusters: 100,
            seed: 42,
            num_sources: 8,
        }
    }
}

/// The three datasets of the paper's evaluation (Section 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperDataset {
    /// Book author lists (AbeBooks), clustered by ISBN.
    AuthorList,
    /// NYC discretionary-funding organisation addresses, clustered by EIN.
    Address,
    /// Scientific journal titles, clustered by ISSN.
    JournalTitle,
}

impl PaperDataset {
    /// All three datasets, in the order the paper reports them.
    pub const ALL: [PaperDataset; 3] = [
        PaperDataset::AuthorList,
        PaperDataset::Address,
        PaperDataset::JournalTitle,
    ];

    /// The dataset's display name.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::AuthorList => "AuthorList",
            PaperDataset::Address => "Address",
            PaperDataset::JournalTitle => "JournalTitle",
        }
    }

    /// The number of groups the paper asks the human to confirm for this
    /// dataset (the x-axis extent of Figures 6-8).
    pub fn paper_budget(&self) -> usize {
        match self {
            PaperDataset::AuthorList => 200,
            PaperDataset::Address => 100,
            PaperDataset::JournalTitle => 100,
        }
    }

    /// A default generator configuration scaled to run the full pipeline in
    /// seconds rather than hours while preserving the cluster-size profile.
    pub fn default_config(&self) -> GeneratorConfig {
        match self {
            PaperDataset::AuthorList => GeneratorConfig {
                num_clusters: 80,
                seed: 1,
                num_sources: 10,
            },
            PaperDataset::Address => GeneratorConfig {
                num_clusters: 250,
                seed: 2,
                num_sources: 6,
            },
            PaperDataset::JournalTitle => GeneratorConfig {
                num_clusters: 600,
                seed: 3,
                num_sources: 12,
            },
        }
    }

    /// Generates the dataset with the given configuration.
    pub fn generate(&self, config: &GeneratorConfig) -> Dataset {
        match self {
            PaperDataset::AuthorList => author_list(config),
            PaperDataset::Address => address(config),
            PaperDataset::JournalTitle => journal_title(config),
        }
    }
}

// --- vocabularies -----------------------------------------------------------

const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "Robert",
    "Patricia",
    "John",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Karen",
    "Donald",
    "Nancy",
    "Steven",
    "Margaret",
    "Kenneth",
    "Lisa",
    "Andrew",
    "Betty",
    "Joshua",
    "Sandra",
    "Kevin",
    "Ashley",
    "Brian",
    "Dorothy",
    "George",
    "Kimberly",
    "Edward",
    "Emily",
    "Ronald",
    "Donna",
    "Timothy",
    "Michelle",
];

const NICKNAMES: &[(&str, &str)] = &[
    ("Robert", "Bob"),
    ("William", "Bill"),
    ("Richard", "Rick"),
    ("Steven", "Steve"),
    ("Kenneth", "Ken"),
    ("Joseph", "Joe"),
    ("Thomas", "Tom"),
    ("Michael", "Mike"),
    ("Jennifer", "Jen"),
    ("Timothy", "Tim"),
    ("Kevin", "Kev"),
    ("Joshua", "Josh"),
];

const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
];

const STREET_NAMES: &[&str] = &[
    "Main",
    "Oak",
    "Pine",
    "Maple",
    "Cedar",
    "Elm",
    "Washington",
    "Lake",
    "Hill",
    "Park",
    "River",
    "Spring",
    "Church",
    "Mill",
    "Union",
    "High",
    "Center",
    "Walnut",
    "Prospect",
    "Franklin",
];

const STREET_TYPES: &[(&str, &str)] = &[
    ("Street", "St"),
    ("Avenue", "Ave"),
    ("Road", "Rd"),
    ("Boulevard", "Blvd"),
    ("Drive", "Dr"),
    ("Lane", "Ln"),
];

const STATES: &[(&str, &str)] = &[
    ("New York", "NY"),
    ("California", "CA"),
    ("Wisconsin", "WI"),
    ("Texas", "TX"),
    ("Florida", "FL"),
    ("Illinois", "IL"),
    ("Massachusetts", "MA"),
    ("Washington", "WA"),
    ("Oregon", "OR"),
    ("Colorado", "CO"),
];

const JOURNAL_SUBJECTS: &[(&str, &str)] = &[
    ("Computer Science", "Comput. Sci."),
    ("Applied Mathematics", "Appl. Math."),
    ("Molecular Biology", "Mol. Biol."),
    ("Chemical Physics", "Chem. Phys."),
    ("Clinical Medicine", "Clin. Med."),
    ("Environmental Research", "Environ. Res."),
    ("Materials Science", "Mater. Sci."),
    ("Theoretical Physics", "Theor. Phys."),
    ("Data Engineering", "Data Eng."),
    ("Machine Learning", "Mach. Learn."),
    ("Social Psychology", "Soc. Psychol."),
    ("Economic Policy", "Econ. Policy"),
    ("Marine Ecology", "Mar. Ecol."),
    ("Organic Chemistry", "Org. Chem."),
    ("Neural Computation", "Neural Comput."),
    ("Quantum Information", "Quantum Inf."),
];

const JOURNAL_PREFIXES: &[(&str, &str)] = &[
    ("Journal of", "J."),
    ("International Journal of", "Int. J."),
    ("Annals of", "Ann."),
    ("Transactions on", "Trans."),
    ("Review of", "Rev."),
    ("Advances in", "Adv."),
    ("Proceedings of", "Proc."),
    ("Bulletin of", "Bull."),
];

fn ordinal_suffix(n: u32) -> &'static str {
    match (n % 10, n % 100) {
        (_, 11..=13) => "th",
        (1, _) => "st",
        (2, _) => "nd",
        (3, _) => "rd",
        _ => "th",
    }
}

// --- AuthorList --------------------------------------------------------------

#[derive(Clone)]
struct AuthorEntity {
    authors: Vec<(String, String)>, // (first, last)
}

impl AuthorEntity {
    fn random(rng: &mut StdRng) -> Self {
        let n = *[1usize, 1, 2, 2, 2, 3].choose(rng).unwrap();
        let authors = (0..n)
            .map(|_| {
                (
                    FIRST_NAMES.choose(rng).unwrap().to_string(),
                    LAST_NAMES.choose(rng).unwrap().to_string(),
                )
            })
            .collect();
        AuthorEntity { authors }
    }

    /// The canonical rendering: "First Last, First Last".
    fn canonical(&self) -> String {
        self.authors
            .iter()
            .map(|(f, l)| format!("{f} {l}"))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// One of the variant formats of Table 4.
    fn render(&self, format: usize) -> String {
        match format % 5 {
            // Canonical.
            0 => self.canonical(),
            // "Last, First Last, First" (group A/C style).
            1 => self
                .authors
                .iter()
                .map(|(f, l)| format!("{l}, {f}"))
                .collect::<Vec<_>>()
                .join(" "),
            // Initials: "F. Last, F. Last" (Figure 2 group 2).
            2 => self
                .authors
                .iter()
                .map(|(f, l)| format!("{}. {l}", f.chars().next().unwrap()))
                .collect::<Vec<_>>()
                .join(", "),
            // Role annotation: "Last, First (edt)" (group E).
            3 => self
                .authors
                .iter()
                .map(|(f, l)| format!("{l}, {f} (edt)"))
                .collect::<Vec<_>>()
                .join(" "),
            // Nickname contraction of the first author (group B).
            _ => {
                let mut parts = Vec::new();
                for (i, (f, l)) in self.authors.iter().enumerate() {
                    let first = if i == 0 {
                        NICKNAMES
                            .iter()
                            .find(|(full, _)| full == f)
                            .map(|(_, nick)| nick.to_string())
                            .unwrap_or_else(|| f.clone())
                    } else {
                        f.clone()
                    };
                    parts.push(format!("{first} {l}"));
                }
                parts.join(", ")
            }
        }
    }
}

/// Generates the AuthorList dataset: large clusters (books clustered by ISBN)
/// whose author-list values mix several rendering formats with conflicting
/// author lists from mismatched records.
pub fn author_list(config: &GeneratorConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut dataset = Dataset::new("AuthorList", vec!["author_list".to_string()]);
    for _ in 0..config.num_clusters {
        let entity = AuthorEntity::random(&mut rng);
        let canonical = entity.canonical();
        // Cluster sizes: heavy-tailed, averaging in the twenties.
        let size = 1 + rng.gen_range(0..8usize) * rng.gen_range(1..8usize);
        // 3-4 conflicting author lists per cluster keeps the conflict share of
        // distinct pairs near the paper's 73.5%.
        let num_conflicts = if size >= 4 { rng.gen_range(3..=4) } else { 0 };
        let conflicts: Vec<AuthorEntity> = (0..num_conflicts)
            .map(|_| AuthorEntity::random(&mut rng))
            .collect();
        let mut rows = Vec::with_capacity(size);
        for r in 0..size {
            let source = rng.gen_range(0..config.num_sources);
            let conflict_row = r > 0 && !conflicts.is_empty() && rng.gen_bool(0.35);
            let cell = if conflict_row {
                let other = conflicts.choose(&mut rng).unwrap();
                Cell {
                    observed: other.render(rng.gen_range(0..5)),
                    truth: other.canonical(),
                }
            } else {
                Cell {
                    observed: entity.render(r % 5),
                    truth: canonical.clone(),
                }
            };
            rows.push(Row {
                source,
                cells: vec![cell],
            });
        }
        dataset.clusters.push(Cluster {
            rows,
            golden: vec![canonical],
        });
    }
    dataset
}

// --- Address -----------------------------------------------------------------

#[derive(Clone)]
struct AddressEntity {
    number: u32,
    street: String,
    street_type: usize,
    zip: String,
    state: usize,
}

impl AddressEntity {
    fn random(rng: &mut StdRng) -> Self {
        AddressEntity {
            number: rng.gen_range(1..400),
            street: STREET_NAMES.choose(rng).unwrap().to_string(),
            street_type: rng.gen_range(0..STREET_TYPES.len()),
            zip: format!("{:05}", rng.gen_range(501..99950)),
            state: rng.gen_range(0..STATES.len()),
        }
    }

    /// Canonical: ordinal number, full street type, state abbreviation — the
    /// target format of Table 2.
    fn canonical(&self) -> String {
        format!(
            "{}{} {} {}, {} {}",
            self.number,
            ordinal_suffix(self.number),
            self.street,
            STREET_TYPES[self.street_type].0,
            self.zip,
            STATES[self.state].1
        )
    }

    fn render(&self, format: usize) -> String {
        let ordinal = format % 2 == 0;
        let abbrev_type = (format / 2) % 2 == 0;
        let full_state = (format / 4) % 2 == 0;
        let number = if ordinal {
            format!("{}{}", self.number, ordinal_suffix(self.number))
        } else {
            self.number.to_string()
        };
        let st = if abbrev_type {
            STREET_TYPES[self.street_type].1
        } else {
            STREET_TYPES[self.street_type].0
        };
        let state = if full_state {
            STATES[self.state].0
        } else {
            STATES[self.state].1
        };
        format!("{number} {} {st}, {} {state}", self.street, self.zip)
    }
}

/// Generates the Address dataset: mid-sized clusters (funding applications
/// clustered by EIN) with ordinal/street-type/state formatting variants and a
/// high share of genuinely different addresses (conflicts).
pub fn address(config: &GeneratorConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut dataset = Dataset::new("Address", vec!["address".to_string()]);
    for _ in 0..config.num_clusters {
        let entity = AddressEntity::random(&mut rng);
        let canonical = entity.canonical();
        let size = 1 + rng.gen_range(0..6usize) + rng.gen_range(0..5usize);
        let num_conflicts = if size >= 3 { rng.gen_range(2..=4) } else { 0 };
        let conflicts: Vec<AddressEntity> = (0..num_conflicts)
            .map(|_| AddressEntity::random(&mut rng))
            .collect();
        let mut rows = Vec::with_capacity(size);
        for r in 0..size {
            let source = rng.gen_range(0..config.num_sources);
            let conflict_row = r > 0 && !conflicts.is_empty() && rng.gen_bool(0.45);
            let cell = if conflict_row {
                let other = conflicts.choose(&mut rng).unwrap();
                Cell {
                    observed: other.render(rng.gen_range(0..8)),
                    truth: other.canonical(),
                }
            } else {
                Cell {
                    observed: entity.render(r % 8),
                    truth: canonical.clone(),
                }
            };
            rows.push(Row {
                source,
                cells: vec![cell],
            });
        }
        dataset.clusters.push(Cluster {
            rows,
            golden: vec![canonical],
        });
    }
    dataset
}

// --- JournalTitle --------------------------------------------------------------

#[derive(Clone)]
struct JournalEntity {
    prefix: usize,
    subject: usize,
}

impl JournalEntity {
    fn random(rng: &mut StdRng) -> Self {
        JournalEntity {
            prefix: rng.gen_range(0..JOURNAL_PREFIXES.len()),
            subject: rng.gen_range(0..JOURNAL_SUBJECTS.len()),
        }
    }

    fn canonical(&self) -> String {
        format!(
            "{} {}",
            JOURNAL_PREFIXES[self.prefix].0, JOURNAL_SUBJECTS[self.subject].0
        )
    }

    fn render(&self, format: usize) -> String {
        match format % 4 {
            0 => self.canonical(),
            // Fully abbreviated title.
            1 => format!(
                "{} {}",
                JOURNAL_PREFIXES[self.prefix].1, JOURNAL_SUBJECTS[self.subject].1
            ),
            // Abbreviated prefix, full subject.
            2 => format!(
                "{} {}",
                JOURNAL_PREFIXES[self.prefix].1, JOURNAL_SUBJECTS[self.subject].0
            ),
            // Lower-cased canonical title.
            _ => self.canonical().to_lowercase(),
        }
    }
}

/// Generates the JournalTitle dataset: many tiny clusters (journals clustered
/// by ISSN) whose titles differ mostly by abbreviation and casing, so the
/// variant share of pairs is high (the paper reports 74%).
pub fn journal_title(config: &GeneratorConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut dataset = Dataset::new("JournalTitle", vec!["title".to_string()]);
    for _ in 0..config.num_clusters {
        let entity = JournalEntity::random(&mut rng);
        let canonical = entity.canonical();
        // Mostly 1-2 records, occasionally more (average ≈ 1.8).
        let size = match rng.gen_range(0..10) {
            0..=3 => 1,
            4..=7 => 2,
            8 => 3,
            _ => rng.gen_range(3..7),
        };
        let conflict_cluster = size >= 2 && rng.gen_bool(0.22);
        let conflict_entity = JournalEntity::random(&mut rng);
        let mut rows = Vec::with_capacity(size);
        for r in 0..size {
            let source = rng.gen_range(0..config.num_sources);
            let is_conflict = conflict_cluster && r == size - 1;
            let cell = if is_conflict {
                Cell {
                    observed: conflict_entity.render(rng.gen_range(0..4)),
                    truth: conflict_entity.canonical(),
                }
            } else {
                Cell {
                    observed: entity.render(r % 4),
                    truth: canonical.clone(),
                }
            };
            rows.push(Row {
                source,
                cells: vec![cell],
            });
        }
        dataset.clusters.push(Cluster {
            rows,
            golden: vec![canonical],
        });
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(dataset: PaperDataset) -> Dataset {
        dataset.generate(&GeneratorConfig {
            num_clusters: 40,
            seed: 11,
            num_sources: 5,
        })
    }

    #[test]
    fn generators_are_deterministic() {
        for d in PaperDataset::ALL {
            let a = d.generate(&GeneratorConfig {
                num_clusters: 10,
                seed: 99,
                num_sources: 3,
            });
            let b = d.generate(&GeneratorConfig {
                num_clusters: 10,
                seed: 99,
                num_sources: 3,
            });
            assert_eq!(a, b, "{} must be deterministic", d.name());
            let c = d.generate(&GeneratorConfig {
                num_clusters: 10,
                seed: 100,
                num_sources: 3,
            });
            assert_ne!(a, c, "different seeds must differ for {}", d.name());
        }
    }

    #[test]
    fn every_cell_has_a_truth_and_goldens_are_canonical() {
        for d in PaperDataset::ALL {
            let ds = small(d);
            assert_eq!(ds.clusters.len(), 40);
            for cluster in &ds.clusters {
                assert!(!cluster.is_empty());
                assert_eq!(cluster.golden.len(), ds.columns.len());
                for row in &cluster.rows {
                    for cell in &row.cells {
                        assert!(!cell.observed.is_empty());
                        assert!(!cell.truth.is_empty());
                    }
                }
                // At least one row renders the cluster's own entity.
                assert!(
                    cluster
                        .rows
                        .iter()
                        .any(|r| r.cells[0].truth == cluster.golden[0]),
                    "{}",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn variant_conflict_mix_orders_like_table_6() {
        // Table 6: JournalTitle has by far the highest variant share, Address
        // the lowest; AuthorList and Address are both conflict-dominated.
        let mut fractions = Vec::new();
        for d in PaperDataset::ALL {
            let ds = d.generate(&d.default_config());
            let s = ds.stats(0);
            assert!(
                s.distinct_value_pairs > 100,
                "{} too small: {s:?}",
                d.name()
            );
            fractions.push((d, s.variant_pair_fraction));
        }
        let author = fractions[0].1;
        let address = fractions[1].1;
        let journal = fractions[2].1;
        assert!(
            journal > 0.55,
            "JournalTitle should be variant-dominated: {journal}"
        );
        assert!(
            author < 0.5,
            "AuthorList should be conflict-dominated: {author}"
        );
        assert!(
            address < 0.5,
            "Address should be conflict-dominated: {address}"
        );
        assert!(journal > author && journal > address);
    }

    #[test]
    fn cluster_size_profiles_are_ordered_like_the_paper() {
        let author = PaperDataset::AuthorList.generate(&PaperDataset::AuthorList.default_config());
        let address = PaperDataset::Address.generate(&PaperDataset::Address.default_config());
        let journal =
            PaperDataset::JournalTitle.generate(&PaperDataset::JournalTitle.default_config());
        let a = author.stats(0).avg_cluster_size;
        let b = address.stats(0).avg_cluster_size;
        let c = journal.stats(0).avg_cluster_size;
        assert!(
            a > b && b > c,
            "cluster sizes should order AuthorList > Address > JournalTitle: {a} {b} {c}"
        );
        assert!(c < 3.0);
        assert!(a > 8.0);
    }

    #[test]
    fn address_variants_use_the_expected_formats() {
        let ds = small(PaperDataset::Address);
        let all: Vec<String> = ds
            .clusters
            .iter()
            .flat_map(|c| c.rows.iter().map(|r| r.cells[0].observed.clone()))
            .collect();
        assert!(
            all.iter()
                .any(|v| v.contains(" St,") || v.contains(" Ave,")),
            "abbreviated street types expected"
        );
        assert!(
            all.iter()
                .any(|v| v.contains("Street") || v.contains("Avenue")),
            "full street types expected"
        );
        let has_full_state = all
            .iter()
            .any(|v| STATES.iter().any(|(full, _)| v.ends_with(full)));
        let has_abbrev_state = all
            .iter()
            .any(|v| STATES.iter().any(|(_, ab)| v.ends_with(ab)));
        assert!(has_full_state && has_abbrev_state);
    }

    #[test]
    fn author_variants_include_transpositions_and_initials() {
        let ds = small(PaperDataset::AuthorList);
        let all: Vec<String> = ds
            .clusters
            .iter()
            .flat_map(|c| c.rows.iter().map(|r| r.cells[0].observed.clone()))
            .collect();
        assert!(
            all.iter().any(|v| v.contains(". ")),
            "initials format expected"
        );
        assert!(
            all.iter().any(|v| v.contains("(edt)")),
            "role annotations expected"
        );
        assert!(
            all.iter().any(|v| v.contains(", ")),
            "comma formats expected"
        );
    }

    #[test]
    fn journal_variants_include_abbreviations_and_casing() {
        let ds = small(PaperDataset::JournalTitle);
        let all: Vec<String> = ds
            .clusters
            .iter()
            .flat_map(|c| c.rows.iter().map(|r| r.cells[0].observed.clone()))
            .collect();
        assert!(
            all.iter().any(|v| v.contains("J.") || v.contains("Int.")),
            "abbreviated prefixes expected"
        );
        assert!(
            all.iter()
                .any(|v| v.chars().next().is_some_and(|c| c.is_lowercase())),
            "lower-cased variants expected"
        );
    }

    #[test]
    fn ordinal_suffixes() {
        assert_eq!(ordinal_suffix(1), "st");
        assert_eq!(ordinal_suffix(2), "nd");
        assert_eq!(ordinal_suffix(3), "rd");
        assert_eq!(ordinal_suffix(4), "th");
        assert_eq!(ordinal_suffix(11), "th");
        assert_eq!(ordinal_suffix(12), "th");
        assert_eq!(ordinal_suffix(13), "th");
        assert_eq!(ordinal_suffix(21), "st");
        assert_eq!(ordinal_suffix(102), "nd");
        assert_eq!(ordinal_suffix(111), "th");
    }

    #[test]
    fn paper_budgets() {
        assert_eq!(PaperDataset::AuthorList.paper_budget(), 200);
        assert_eq!(PaperDataset::Address.paper_budget(), 100);
        assert_eq!(PaperDataset::JournalTitle.paper_budget(), 100);
    }
}
