//! A small, dependency-free CSV reader/writer.
//!
//! The paper's datasets are distributed as delimited text; downstream users
//! will want to load their own clustered (or raw) data the same way. The
//! sanctioned dependency list has no CSV crate, so this module implements the
//! subset of RFC 4180 the dataset formats need: comma separation, `"`-quoted
//! fields, doubled quotes as escapes, and quoted fields that span newlines.
//! Both `\n` and `\r\n` record terminators are accepted.
//!
//! The workhorse is the **incremental** [`CsvReader`]: it pulls bytes from any
//! [`std::io::Read`] in fixed-size chunks and yields one record at a time, so
//! inputs larger than RAM never have to be materialized. [`parse`] and
//! [`write`] are thin whole-document adapters over [`CsvReader`] and
//! [`CsvWriter`] for callers that already hold the text in memory.

use std::fmt;
use std::io::{Read, Write};

/// How many bytes [`CsvReader`] requests from the underlying reader at a
/// time. Together with the length of the current record this bounds the
/// reader's buffered lookahead, independent of the input size.
const READ_CHUNK: usize = 8 * 1024;

/// An error produced while parsing CSV text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number where the error was detected.
    pub line: usize,
    /// What went wrong.
    pub kind: CsvErrorKind,
}

/// The kinds of CSV parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvErrorKind {
    /// A quoted field was still open when the input ended.
    UnterminatedQuote,
    /// A closing quote was followed by something other than a separator,
    /// record end, or another quote.
    InvalidQuoteEscape,
    /// A record had a different number of fields than the header/first record.
    FieldCountMismatch {
        /// Number of fields expected (from the first record).
        expected: usize,
        /// Number of fields found.
        found: usize,
    },
    /// A field was not valid UTF-8 (only possible when reading raw bytes).
    InvalidUtf8,
    /// The underlying reader failed.
    Io(String),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            CsvErrorKind::UnterminatedQuote => {
                write!(f, "line {}: unterminated quoted field", self.line)
            }
            CsvErrorKind::InvalidQuoteEscape => {
                write!(
                    f,
                    "line {}: invalid character after closing quote",
                    self.line
                )
            }
            CsvErrorKind::FieldCountMismatch { expected, found } => write!(
                f,
                "line {}: expected {} fields, found {}",
                self.line, expected, found
            ),
            CsvErrorKind::InvalidUtf8 => {
                write!(f, "line {}: field is not valid UTF-8", self.line)
            }
            CsvErrorKind::Io(msg) => write!(f, "line {}: read failed: {msg}", self.line),
        }
    }
}

impl std::error::Error for CsvError {}

/// An incremental RFC-4180 reader over any [`Read`].
///
/// Records are yielded one at a time via [`Iterator`]; the reader holds at
/// most one refill chunk ([`READ_CHUNK`] bytes) plus the bytes of the record
/// currently being assembled, so peak memory is independent of the input
/// length. Empty input yields no records; a trailing newline does not produce
/// a trailing empty record; completely empty lines between records are
/// skipped. Every record must have the same number of fields as the first
/// one. After the first error the iterator is fused and yields nothing more.
pub struct CsvReader<R: Read> {
    input: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    eof: bool,
    /// 1-based line number of the byte about to be consumed.
    line: usize,
    /// Field count locked in by the first record.
    expected: Option<usize>,
    /// Set after EOF or an error; the iterator then stays exhausted.
    finished: bool,
}

impl<R: Read> CsvReader<R> {
    /// Creates a reader over `input`.
    pub fn new(input: R) -> Self {
        CsvReader {
            input,
            buf: vec![0u8; READ_CHUNK],
            pos: 0,
            len: 0,
            eof: false,
            line: 1,
            expected: None,
            finished: false,
        }
    }

    /// The next byte of the input, refilling the chunk buffer as needed.
    fn next_byte(&mut self) -> Result<Option<u8>, CsvError> {
        if self.pos == self.len {
            if self.eof {
                return Ok(None);
            }
            loop {
                match self.input.read(&mut self.buf) {
                    Ok(0) => {
                        self.eof = true;
                        return Ok(None);
                    }
                    Ok(n) => {
                        self.pos = 0;
                        self.len = n;
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        return Err(CsvError {
                            line: self.line,
                            kind: CsvErrorKind::Io(e.to_string()),
                        })
                    }
                }
            }
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(Some(b))
    }

    /// Converts the accumulated field bytes into a `String`.
    fn take_field(&self, bytes: &mut Vec<u8>) -> Result<String, CsvError> {
        String::from_utf8(std::mem::take(bytes)).map_err(|_| CsvError {
            line: self.line,
            kind: CsvErrorKind::InvalidUtf8,
        })
    }

    /// Validates a completed record's field count against the first record's.
    /// Returns `None` for a blank line (a record of one empty field).
    fn finish_record(
        &mut self,
        record: Vec<String>,
        line: usize,
    ) -> Result<Option<Vec<String>>, CsvError> {
        if record.len() == 1 && record[0].is_empty() {
            return Ok(None);
        }
        match self.expected {
            None => self.expected = Some(record.len()),
            Some(n) if n != record.len() => {
                return Err(CsvError {
                    line,
                    kind: CsvErrorKind::FieldCountMismatch {
                        expected: n,
                        found: record.len(),
                    },
                })
            }
            Some(_) => {}
        }
        Ok(Some(record))
    }

    /// Parses the next record. `Ok(None)` means clean end of input.
    fn read_record(&mut self) -> Result<Option<Vec<String>>, CsvError> {
        let mut record: Vec<String> = Vec::new();
        let mut field: Vec<u8> = Vec::new();
        let mut field_started = false; // saw any content (or a quote) for this field
        let mut in_quotes = false;
        // Saw a `"` inside a quoted field; the next byte decides whether it
        // was an escape (another `"`) or the closing quote.
        let mut quote_pending = false;
        loop {
            let Some(b) = self.next_byte()? else {
                // End of input: a pending quote closes cleanly at EOF.
                if quote_pending {
                    in_quotes = false;
                }
                if in_quotes {
                    return Err(CsvError {
                        line: self.line,
                        kind: CsvErrorKind::UnterminatedQuote,
                    });
                }
                if field_started || !field.is_empty() || !record.is_empty() {
                    record.push(self.take_field(&mut field)?);
                    let line = self.line;
                    return self.finish_record(record, line);
                }
                return Ok(None);
            };
            if quote_pending {
                quote_pending = false;
                match b {
                    b'"' => {
                        field.push(b'"');
                        continue;
                    }
                    // The quote closed; fall through and process the byte as
                    // unquoted content (separator, record end, or swallowed
                    // carriage return).
                    b',' | b'\n' | b'\r' => in_quotes = false,
                    _ => {
                        return Err(CsvError {
                            line: self.line,
                            kind: CsvErrorKind::InvalidQuoteEscape,
                        })
                    }
                }
            }
            if in_quotes {
                match b {
                    b'"' => quote_pending = true,
                    b'\n' => {
                        field.push(b'\n');
                        self.line += 1;
                    }
                    other => field.push(other),
                }
                continue;
            }
            match b {
                b'"' if field.is_empty() && !field_started => {
                    in_quotes = true;
                    field_started = true;
                }
                b',' => {
                    record.push(self.take_field(&mut field)?);
                    field_started = false;
                }
                b'\r' => {
                    // Swallow; the following '\n' (if any) ends the record.
                }
                b'\n' => {
                    record.push(self.take_field(&mut field)?);
                    field_started = false;
                    let line = self.line;
                    self.line += 1;
                    if let Some(rec) = self.finish_record(record, line)? {
                        return Ok(Some(rec));
                    }
                    record = Vec::new(); // blank line: keep scanning
                }
                other => {
                    field.push(other);
                    field_started = true;
                }
            }
        }
    }
}

impl<R: Read> Iterator for CsvReader<R> {
    type Item = Result<Vec<String>, CsvError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        match self.read_record() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => {
                self.finished = true;
                None
            }
            Err(e) => {
                self.finished = true;
                Some(Err(e))
            }
        }
    }
}

/// Parses CSV text into records of fields — the whole-document adapter over
/// [`CsvReader`]. Empty input yields no records; a trailing newline does not
/// produce a trailing empty record. Every record must have the same number of
/// fields as the first one.
pub fn parse(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    CsvReader::new(text.as_bytes()).collect()
}

/// True when a field needs quoting on output.
fn needs_quoting(field: &str) -> bool {
    field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r')
}

/// A record-at-a-time CSV writer over any [`Write`].
///
/// Each record is assembled in an internal scratch buffer and written with a
/// single `write_all`, so wrapping the destination in a
/// [`std::io::BufWriter`] is only needed for destinations where even
/// per-record writes are expensive (files, sockets). Fields are quoted only
/// when necessary; every record ends with `\n`.
pub struct CsvWriter<W: Write> {
    out: W,
    scratch: String,
}

impl<W: Write> CsvWriter<W> {
    /// Creates a writer over `out`.
    pub fn new(out: W) -> Self {
        CsvWriter {
            out,
            scratch: String::new(),
        }
    }

    /// Writes one record.
    pub fn write_record<I, S>(&mut self, fields: I) -> std::io::Result<()>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.scratch.clear();
        for (i, field) in fields.into_iter().enumerate() {
            if i > 0 {
                self.scratch.push(',');
            }
            let field = field.as_ref();
            if needs_quoting(field) {
                self.scratch.push('"');
                for ch in field.chars() {
                    if ch == '"' {
                        self.scratch.push('"');
                    }
                    self.scratch.push(ch);
                }
                self.scratch.push('"');
            } else {
                self.scratch.push_str(field);
            }
        }
        self.scratch.push('\n');
        self.out.write_all(self.scratch.as_bytes())
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }

    /// Consumes the writer, returning the destination.
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// Serializes records to CSV text with a trailing newline after every record —
/// the whole-document adapter over [`CsvWriter`]. Fields are quoted only when
/// necessary.
pub fn write(records: &[Vec<String>]) -> String {
    let mut writer = CsvWriter::new(Vec::new());
    for record in records {
        writer
            .write_record(record)
            .expect("writing to a Vec cannot fail");
    }
    String::from_utf8(writer.into_inner()).expect("CSV output is valid UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_records() {
        let records = parse("a,b,c\nd,e,f\n").unwrap();
        assert_eq!(records, vec![vec!["a", "b", "c"], vec!["d", "e", "f"]]);
    }

    #[test]
    fn missing_trailing_newline_is_fine() {
        let records = parse("a,b\nc,d").unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1], vec!["c", "d"]);
    }

    #[test]
    fn quoted_fields_with_commas_quotes_and_newlines() {
        let text = "name,note\n\"Lee, Mary\",\"said \"\"hi\"\"\"\n\"multi\nline\",x\n";
        let records = parse(text).unwrap();
        assert_eq!(records[1][0], "Lee, Mary");
        assert_eq!(records[1][1], "said \"hi\"");
        assert_eq!(records[2][0], "multi\nline");
    }

    #[test]
    fn crlf_line_endings() {
        let records = parse("a,b\r\nc,d\r\n").unwrap();
        assert_eq!(records, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn empty_fields_and_blank_lines() {
        let records = parse("a,,c\n\n,x,\n").unwrap();
        assert_eq!(records, vec![vec!["a", "", "c"], vec!["", "x", ""]]);
        assert!(parse("").unwrap().is_empty());
        assert!(parse("\n\n").unwrap().is_empty());
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let err = parse("a,\"oops\n").unwrap_err();
        assert_eq!(err.kind, CsvErrorKind::UnterminatedQuote);
    }

    #[test]
    fn garbage_after_closing_quote_is_an_error() {
        let err = parse("\"a\"b,c\n").unwrap_err();
        assert_eq!(err.kind, CsvErrorKind::InvalidQuoteEscape);
    }

    #[test]
    fn field_count_mismatch_reports_the_line() {
        let err = parse("a,b\nc\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(
            err.kind,
            CsvErrorKind::FieldCountMismatch {
                expected: 2,
                found: 1
            }
        );
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn write_round_trips_through_parse() {
        let records = vec![
            vec!["plain".to_string(), "with,comma".to_string()],
            vec!["with \"quote\"".to_string(), "multi\nline".to_string()],
            vec!["".to_string(), "x".to_string()],
        ];
        let text = write(&records);
        assert_eq!(parse(&text).unwrap(), records);
    }

    #[test]
    fn write_quotes_only_when_needed() {
        let text = write(&[vec!["plain".to_string(), "a,b".to_string()]]);
        assert_eq!(text, "plain,\"a,b\"\n");
    }

    /// A reader that hands out at most `chunk` bytes per `read` call, forcing
    /// the incremental parser across every possible refill boundary.
    struct Throttled<'a> {
        bytes: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl Read for Throttled<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(buf.len()).min(self.bytes.len() - self.pos);
            buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn parse_chunked(text: &str, chunk: usize) -> Result<Vec<Vec<String>>, CsvError> {
        CsvReader::new(Throttled {
            bytes: text.as_bytes(),
            pos: 0,
            chunk,
        })
        .collect()
    }

    #[test]
    fn chunk_boundaries_are_invisible() {
        let texts = [
            "a,b,c\nd,e,f\n",
            "name,note\n\"Lee, Mary\",\"said \"\"hi\"\"\"\n\"multi\nline\",x\n",
            "a,b\r\nc,d\r\n",
            "a,,c\n\n,x,\n",
            "a,\"oops\n",
            "\"a\"b,c\n",
            "a,b\nc\n",
            "\"closes at eof\",\"x\"",
            "über,naïve\n\"schön\",ok\n",
        ];
        for text in texts {
            let whole = parse(text);
            for chunk in 1..=7 {
                assert_eq!(whole, parse_chunked(text, chunk), "chunk={chunk}: {text:?}");
            }
        }
    }

    #[test]
    fn reader_is_fused_after_an_error() {
        let mut reader = CsvReader::new("a,b\nc\nd,e\n".as_bytes());
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none());
    }

    #[test]
    fn invalid_utf8_is_reported_with_the_line() {
        let bytes: &[u8] = b"a,b\nc,\xff\xfe\n";
        let result: Result<Vec<_>, _> = CsvReader::new(bytes).collect();
        let err = result.unwrap_err();
        assert_eq!(err.kind, CsvErrorKind::InvalidUtf8);
        assert_eq!(err.line, 2);
    }

    #[test]
    fn read_errors_surface_as_csv_errors() {
        struct Failing;
        impl Read for Failing {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        let result: Result<Vec<_>, _> = CsvReader::new(Failing).collect();
        let err = result.unwrap_err();
        assert!(matches!(err.kind, CsvErrorKind::Io(ref m) if m.contains("disk on fire")));
    }

    #[test]
    fn csv_writer_streams_records() {
        let mut writer = CsvWriter::new(Vec::new());
        writer.write_record(["a", "b,c"]).unwrap();
        writer.write_record(["\"q\"", ""]).unwrap();
        let text = String::from_utf8(writer.into_inner()).unwrap();
        assert_eq!(text, "a,\"b,c\"\n\"\"\"q\"\"\",\n");
        assert_eq!(
            text,
            write(&[
                vec!["a".to_string(), "b,c".to_string()],
                vec!["\"q\"".to_string(), "".to_string()],
            ])
        );
    }
}
