//! A small, dependency-free CSV reader/writer.
//!
//! The paper's datasets are distributed as delimited text; downstream users
//! will want to load their own clustered (or raw) data the same way. The
//! sanctioned dependency list has no CSV crate, so this module implements the
//! subset of RFC 4180 the dataset formats need: comma separation, `"`-quoted
//! fields, doubled quotes as escapes, and quoted fields that span newlines.
//! Both `\n` and `\r\n` record terminators are accepted.

use std::fmt;

/// An error produced while parsing CSV text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number where the error was detected.
    pub line: usize,
    /// What went wrong.
    pub kind: CsvErrorKind,
}

/// The kinds of CSV parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvErrorKind {
    /// A quoted field was still open when the input ended.
    UnterminatedQuote,
    /// A closing quote was followed by something other than a separator,
    /// record end, or another quote.
    InvalidQuoteEscape,
    /// A record had a different number of fields than the header/first record.
    FieldCountMismatch {
        /// Number of fields expected (from the first record).
        expected: usize,
        /// Number of fields found.
        found: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            CsvErrorKind::UnterminatedQuote => {
                write!(f, "line {}: unterminated quoted field", self.line)
            }
            CsvErrorKind::InvalidQuoteEscape => {
                write!(
                    f,
                    "line {}: invalid character after closing quote",
                    self.line
                )
            }
            CsvErrorKind::FieldCountMismatch { expected, found } => write!(
                f,
                "line {}: expected {} fields, found {}",
                self.line, expected, found
            ),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text into records of fields. Empty input yields no records; a
/// trailing newline does not produce a trailing empty record. Every record
/// must have the same number of fields as the first one.
pub fn parse(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut line = 1usize;
    let mut in_quotes = false;
    let mut field_started = false; // saw any content (or a quote) for this field
    let mut expected: Option<usize> = None;

    let mut chars = text.chars().peekable();
    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                        // Only a separator, record end, or EOF may follow.
                        match chars.peek() {
                            None | Some(',') | Some('\n') | Some('\r') => {}
                            Some(_) => {
                                return Err(CsvError {
                                    line,
                                    kind: CsvErrorKind::InvalidQuoteEscape,
                                })
                            }
                        }
                    }
                }
                '\n' => {
                    field.push('\n');
                    line += 1;
                }
                other => field.push(other),
            }
            continue;
        }
        match ch {
            '"' if field.is_empty() && !field_started => {
                in_quotes = true;
                field_started = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                field_started = false;
            }
            '\r' => {
                // Swallow; the following '\n' (if any) ends the record.
            }
            '\n' => {
                record.push(std::mem::take(&mut field));
                field_started = false;
                finish_record(&mut records, &mut record, &mut expected, line)?;
                line += 1;
            }
            other => {
                field.push(other);
                field_started = true;
            }
        }
    }
    if in_quotes {
        return Err(CsvError {
            line,
            kind: CsvErrorKind::UnterminatedQuote,
        });
    }
    if field_started || !field.is_empty() || !record.is_empty() {
        record.push(field);
        finish_record(&mut records, &mut record, &mut expected, line)?;
    }
    Ok(records)
}

fn finish_record(
    records: &mut Vec<Vec<String>>,
    record: &mut Vec<String>,
    expected: &mut Option<usize>,
    line: usize,
) -> Result<(), CsvError> {
    // A completely empty line between records is ignored.
    if record.len() == 1 && record[0].is_empty() {
        record.clear();
        return Ok(());
    }
    match expected {
        None => *expected = Some(record.len()),
        Some(n) if *n != record.len() => {
            return Err(CsvError {
                line,
                kind: CsvErrorKind::FieldCountMismatch {
                    expected: *n,
                    found: record.len(),
                },
            })
        }
        Some(_) => {}
    }
    records.push(std::mem::take(record));
    Ok(())
}

/// True when a field needs quoting on output.
fn needs_quoting(field: &str) -> bool {
    field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r')
}

/// Serializes records to CSV text with a trailing newline after every record.
/// Fields are quoted only when necessary.
pub fn write(records: &[Vec<String>]) -> String {
    let mut out = String::new();
    for record in records {
        for (i, field) in record.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if needs_quoting(field) {
                out.push('"');
                for ch in field.chars() {
                    if ch == '"' {
                        out.push('"');
                    }
                    out.push(ch);
                }
                out.push('"');
            } else {
                out.push_str(field);
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_records() {
        let records = parse("a,b,c\nd,e,f\n").unwrap();
        assert_eq!(records, vec![vec!["a", "b", "c"], vec!["d", "e", "f"]]);
    }

    #[test]
    fn missing_trailing_newline_is_fine() {
        let records = parse("a,b\nc,d").unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1], vec!["c", "d"]);
    }

    #[test]
    fn quoted_fields_with_commas_quotes_and_newlines() {
        let text = "name,note\n\"Lee, Mary\",\"said \"\"hi\"\"\"\n\"multi\nline\",x\n";
        let records = parse(text).unwrap();
        assert_eq!(records[1][0], "Lee, Mary");
        assert_eq!(records[1][1], "said \"hi\"");
        assert_eq!(records[2][0], "multi\nline");
    }

    #[test]
    fn crlf_line_endings() {
        let records = parse("a,b\r\nc,d\r\n").unwrap();
        assert_eq!(records, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn empty_fields_and_blank_lines() {
        let records = parse("a,,c\n\n,x,\n").unwrap();
        assert_eq!(records, vec![vec!["a", "", "c"], vec!["", "x", ""]]);
        assert!(parse("").unwrap().is_empty());
        assert!(parse("\n\n").unwrap().is_empty());
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let err = parse("a,\"oops\n").unwrap_err();
        assert_eq!(err.kind, CsvErrorKind::UnterminatedQuote);
    }

    #[test]
    fn garbage_after_closing_quote_is_an_error() {
        let err = parse("\"a\"b,c\n").unwrap_err();
        assert_eq!(err.kind, CsvErrorKind::InvalidQuoteEscape);
    }

    #[test]
    fn field_count_mismatch_reports_the_line() {
        let err = parse("a,b\nc\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(
            err.kind,
            CsvErrorKind::FieldCountMismatch {
                expected: 2,
                found: 1
            }
        );
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn write_round_trips_through_parse() {
        let records = vec![
            vec!["plain".to_string(), "with,comma".to_string()],
            vec!["with \"quote\"".to_string(), "multi\nline".to_string()],
            vec!["".to_string(), "x".to_string()],
        ];
        let text = write(&records);
        assert_eq!(parse(&text).unwrap(), records);
    }

    #[test]
    fn write_quotes_only_when_needed() {
        let text = write(&[vec!["plain".to_string(), "a,b".to_string()]]);
        assert_eq!(text, "plain,\"a,b\"\n");
    }
}
