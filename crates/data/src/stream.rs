//! Record-at-a-time dataset I/O: the [`RecordStream`] / [`DatasetSink`]
//! abstractions and their CSV implementations.
//!
//! The whole-document functions in [`crate::io`] parse an in-memory string
//! into an in-memory [`Dataset`]; nothing about that survives contact with
//! files larger than RAM. This module is the streaming counterpart:
//!
//! * [`FlatCsvReader`] — an incremental reader of **flat record CSV**
//!   (`source,<attributes...>`), yielding one [`FlatRecord`] at a time;
//! * [`ClusteredCsvReader`] — an incremental reader of **clustered CSV**
//!   (`cluster,source,<attr>...,[<attr>__truth]...`), yielding one
//!   [`ClusteredRow`] at a time (or collecting into a [`Dataset`]);
//! * [`ClusteredCsvWriter`] — a buffered, cluster-at-a-time clustered-CSV
//!   writer;
//! * the [`RecordStream`] trait, so consumers (the resolver's streaming entry
//!   point, the fused pipeline) are agnostic to whether records come from a
//!   file, a socket, or an in-memory vector ([`VecRecordStream`]);
//! * the [`DatasetSink`] trait, the write-side dual: clusters can be streamed
//!   to a CSV file ([`ClusteredCsvWriter`]) or collected in memory
//!   ([`Dataset`] itself implements the trait).
//!
//! All readers carry [`crate::io::DatasetIoError`] (which wraps
//! [`crate::csv::CsvError`]) through unchanged, so error handling is the same
//! whether a caller parses incrementally or whole-document.

use crate::csv::{CsvReader, CsvWriter};
use crate::io::DatasetIoError;
use crate::model::{majority_golden, Cell, Cluster, Dataset, Row};
use std::collections::HashMap;
use std::io::{Read, Write};

/// One flat (unclustered) input record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatRecord {
    /// The data source the record came from.
    pub source: usize,
    /// One value per attribute column.
    pub fields: Vec<String>,
}

/// A pull-based stream of flat records with a known column schema.
pub trait RecordStream {
    /// The attribute column names (excluding `source`).
    fn columns(&self) -> &[String];

    /// The next record, or `None` at end of stream. After an `Err` the stream
    /// is exhausted.
    fn next_record(&mut self) -> Option<Result<FlatRecord, DatasetIoError>>;

    /// Drains the stream into a vector (for callers that want the
    /// whole-document behavior back).
    fn collect_records(&mut self) -> Result<Vec<FlatRecord>, DatasetIoError> {
        let mut out = Vec::new();
        while let Some(record) = self.next_record() {
            out.push(record?);
        }
        Ok(out)
    }
}

/// An incremental reader of flat record CSV: a `source,<attributes...>`
/// header followed by one row per record. The header is parsed eagerly by
/// [`FlatCsvReader::new`]; rows are parsed on demand, so peak memory is one
/// record plus the underlying [`CsvReader`]'s chunk buffer.
pub struct FlatCsvReader<R: Read> {
    csv: CsvReader<R>,
    columns: Vec<String>,
    /// 1-based data-row number of the next record (for error reporting).
    row: usize,
}

impl<R: Read> FlatCsvReader<R> {
    /// Opens the stream and parses the header.
    pub fn new(input: R) -> Result<Self, DatasetIoError> {
        let mut csv = CsvReader::new(input);
        let header = match csv.next() {
            None => return Err(DatasetIoError::BadHeader("empty input".to_string())),
            Some(header) => header?,
        };
        if header.len() < 2 || header[0] != "source" {
            return Err(DatasetIoError::BadHeader(
                "expected columns: source, <attributes...>".to_string(),
            ));
        }
        Ok(FlatCsvReader {
            csv,
            columns: header[1..].to_vec(),
            row: 0,
        })
    }
}

impl<R: Read> RecordStream for FlatCsvReader<R> {
    fn columns(&self) -> &[String] {
        &self.columns
    }

    fn next_record(&mut self) -> Option<Result<FlatRecord, DatasetIoError>> {
        let record = match self.csv.next()? {
            Ok(record) => record,
            Err(e) => return Some(Err(DatasetIoError::Csv(e))),
        };
        self.row += 1;
        let mut fields = record.into_iter();
        let source_text = fields.next().expect("records have at least two fields");
        let source: usize = match source_text.trim().parse() {
            Ok(source) => source,
            Err(_) => {
                return Some(Err(DatasetIoError::BadCell {
                    row: self.row,
                    message: format!("source '{source_text}' is not an integer"),
                }))
            }
        };
        Some(Ok(FlatRecord {
            source,
            fields: fields.collect(),
        }))
    }
}

/// An in-memory [`RecordStream`] over a vector of records — the adapter tests
/// and library callers use when the records are already materialized.
pub struct VecRecordStream {
    columns: Vec<String>,
    records: std::vec::IntoIter<FlatRecord>,
}

impl VecRecordStream {
    /// Creates a stream over `records` with the given column names.
    pub fn new(columns: Vec<String>, records: Vec<FlatRecord>) -> Self {
        VecRecordStream {
            columns,
            records: records.into_iter(),
        }
    }
}

impl RecordStream for VecRecordStream {
    fn columns(&self) -> &[String] {
        &self.columns
    }

    fn next_record(&mut self) -> Option<Result<FlatRecord, DatasetIoError>> {
        self.records.next().map(Ok)
    }
}

/// One parsed row of a clustered CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusteredRow {
    /// The cluster id cell, verbatim (ids are arbitrary strings).
    pub cluster: String,
    /// The data source of the row.
    pub source: usize,
    /// One observed/truth cell per attribute column.
    pub cells: Vec<Cell>,
}

/// An incremental reader of clustered CSV (`cluster,source,<attr>...,`
/// optionally followed by one `<attr>__truth` column per attribute). The
/// header is parsed eagerly; rows are parsed on demand.
pub struct ClusteredCsvReader<R: Read> {
    csv: CsvReader<R>,
    columns: Vec<String>,
    /// Record index of each observed attribute column.
    observed_index: Vec<usize>,
    /// Record index of each attribute's `__truth` column, when present.
    truth_index: Vec<Option<usize>>,
    has_truth: bool,
    /// 1-based data-row number of the next row (for error reporting).
    row: usize,
}

impl<R: Read> ClusteredCsvReader<R> {
    /// Opens the stream and parses the header.
    pub fn new(input: R) -> Result<Self, DatasetIoError> {
        let mut csv = CsvReader::new(input);
        let header = match csv.next() {
            None => return Err(DatasetIoError::BadHeader("empty input".to_string())),
            Some(header) => header?,
        };
        if header.len() < 3 || header[0] != "cluster" || header[1] != "source" {
            return Err(DatasetIoError::BadHeader(
                "expected columns: cluster, source, <attributes...>".to_string(),
            ));
        }
        let attribute_headers = &header[2..];
        let mut columns = Vec::new();
        let mut observed_index = Vec::new();
        let mut truth_positions: HashMap<&str, usize> = HashMap::new();
        for (i, h) in attribute_headers.iter().enumerate() {
            if let Some(attr) = h.strip_suffix("__truth") {
                truth_positions.insert(attr, i + 2);
            } else {
                columns.push(h.clone());
                observed_index.push(i + 2);
            }
        }
        let truth_index: Vec<Option<usize>> = columns
            .iter()
            .map(|col| truth_positions.get(col.as_str()).copied())
            .collect();
        let has_truth = truth_index.iter().any(Option::is_some);
        Ok(ClusteredCsvReader {
            csv,
            columns,
            observed_index,
            truth_index,
            has_truth,
            row: 0,
        })
    }

    /// The observed attribute column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Whether the header declared any `<attr>__truth` column.
    pub fn has_truth_columns(&self) -> bool {
        self.has_truth
    }

    /// The next row, or `None` at end of stream.
    pub fn next_row(&mut self) -> Option<Result<ClusteredRow, DatasetIoError>> {
        let record = match self.csv.next()? {
            Ok(record) => record,
            Err(e) => return Some(Err(DatasetIoError::Csv(e))),
        };
        self.row += 1;
        let source: usize = match record[1].trim().parse() {
            Ok(source) => source,
            Err(_) => {
                return Some(Err(DatasetIoError::BadCell {
                    row: self.row,
                    message: format!("source '{}' is not an integer", record[1]),
                }))
            }
        };
        let cells: Vec<Cell> = self
            .observed_index
            .iter()
            .zip(&self.truth_index)
            .map(|(&obs_idx, truth_idx)| {
                let observed = record[obs_idx].clone();
                let truth = truth_idx
                    .map(|t| record[t].clone())
                    .unwrap_or_else(|| observed.clone());
                Cell { observed, truth }
            })
            .collect();
        Some(Ok(ClusteredRow {
            cluster: record[0].trim().to_string(),
            source,
            cells,
        }))
    }

    /// Drains the stream into a [`Dataset`]. Clusters appear in order of first
    /// appearance of their id (so a dataset written by
    /// [`crate::io::dataset_to_csv`] round trips with its cluster order
    /// intact); each cluster's golden record is the per-column majority of its
    /// rows' truth values.
    pub fn into_dataset(mut self, name: &str) -> Result<Dataset, DatasetIoError> {
        let mut cluster_ids: HashMap<String, usize> = HashMap::new();
        let mut cluster_rows: Vec<Vec<Row>> = Vec::new();
        while let Some(row) = self.next_row() {
            let row = row?;
            let next_id = cluster_rows.len();
            let &mut idx = cluster_ids.entry(row.cluster).or_insert(next_id);
            if idx == cluster_rows.len() {
                cluster_rows.push(Vec::new());
            }
            cluster_rows[idx].push(Row {
                source: row.source,
                cells: row.cells,
            });
        }
        let num_columns = self.columns.len();
        let mut dataset = Dataset::new(name, self.columns);
        for rows in cluster_rows {
            let golden = majority_golden(&rows, num_columns);
            dataset.clusters.push(Cluster { rows, golden });
        }
        Ok(dataset)
    }
}

/// A consumer of clustered data, one cluster at a time — the write-side dual
/// of [`RecordStream`].
pub trait DatasetSink {
    /// Consumes one cluster.
    fn write_cluster(&mut self, cluster: &Cluster) -> std::io::Result<()>;

    /// Finishes the sink (flushes buffered output). The default does nothing.
    fn finish(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Collecting sink: appends the clusters to an in-memory dataset.
impl DatasetSink for Dataset {
    fn write_cluster(&mut self, cluster: &Cluster) -> std::io::Result<()> {
        self.clusters.push(cluster.clone());
        Ok(())
    }
}

/// A cluster-at-a-time clustered-CSV writer: the header (including the
/// `__truth` columns) is written at construction, each
/// [`ClusteredCsvWriter::write_cluster`] call appends that cluster's rows with
/// the next sequential cluster id, and nothing is buffered beyond the record
/// being assembled.
pub struct ClusteredCsvWriter<W: Write> {
    csv: CsvWriter<W>,
    next_cluster_id: usize,
}

impl<W: Write> ClusteredCsvWriter<W> {
    /// Creates the writer and emits the header row.
    pub fn new(out: W, columns: &[String]) -> std::io::Result<Self> {
        let mut csv = CsvWriter::new(out);
        let mut header = vec!["cluster".to_string(), "source".to_string()];
        header.extend(columns.iter().cloned());
        header.extend(columns.iter().map(|col| format!("{col}__truth")));
        csv.write_record(&header)?;
        Ok(ClusteredCsvWriter {
            csv,
            next_cluster_id: 0,
        })
    }

    /// Consumes the writer, returning the destination.
    pub fn into_inner(self) -> W {
        self.csv.into_inner()
    }
}

impl<W: Write> DatasetSink for ClusteredCsvWriter<W> {
    fn write_cluster(&mut self, cluster: &Cluster) -> std::io::Result<()> {
        let cluster_id = self.next_cluster_id.to_string();
        self.next_cluster_id += 1;
        for row in &cluster.rows {
            let fields = [cluster_id.as_str(), &row.source.to_string()]
                .map(str::to_string)
                .into_iter()
                .chain(row.cells.iter().map(|c| c.observed.clone()))
                .chain(row.cells.iter().map(|c| c.truth.clone()));
            self.csv.write_record(fields)?;
        }
        Ok(())
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.csv.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{GeneratorConfig, PaperDataset};
    use crate::io::{dataset_from_csv, dataset_to_csv, raw_records_from_csv};

    #[test]
    fn flat_reader_streams_records_and_agrees_with_the_adapter() {
        let text = "source,Name,Address\n0,Mary Lee,\"9 St, 02141 WI\"\n1,M. Lee,9th St\n";
        let mut stream = FlatCsvReader::new(text.as_bytes()).unwrap();
        assert_eq!(stream.columns(), ["Name", "Address"]);
        let records = stream.collect_records().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].source, 0);
        assert_eq!(records[0].fields[1], "9 St, 02141 WI");

        let (columns, raw) = raw_records_from_csv(text).unwrap();
        assert_eq!(columns, ["Name", "Address"]);
        let from_adapter: Vec<FlatRecord> = raw
            .into_iter()
            .map(|(source, fields)| FlatRecord { source, fields })
            .collect();
        assert_eq!(records, from_adapter);
    }

    #[test]
    fn flat_reader_rejects_bad_headers_and_sources() {
        assert!(matches!(
            FlatCsvReader::new("".as_bytes()),
            Err(DatasetIoError::BadHeader(_))
        ));
        assert!(matches!(
            FlatCsvReader::new("name\nx\n".as_bytes()),
            Err(DatasetIoError::BadHeader(_))
        ));
        let mut stream = FlatCsvReader::new("source,Name\nnotanumber,X\n".as_bytes()).unwrap();
        assert!(matches!(
            stream.next_record(),
            Some(Err(DatasetIoError::BadCell { row: 1, .. }))
        ));
    }

    #[test]
    fn clustered_reader_detects_truth_columns() {
        let with = "cluster,source,Name,Name__truth\n0,0,M. Lee,Mary Lee\n";
        let reader = ClusteredCsvReader::new(with.as_bytes()).unwrap();
        assert!(reader.has_truth_columns());
        assert_eq!(reader.columns(), ["Name"]);

        let without = "cluster,source,Name\n0,0,M. Lee\n";
        let reader = ClusteredCsvReader::new(without.as_bytes()).unwrap();
        assert!(!reader.has_truth_columns());
    }

    #[test]
    fn clustered_reader_round_trips_a_generated_dataset_in_order() {
        let original = PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 12,
            seed: 3,
            num_sources: 3,
        });
        let text = dataset_to_csv(&original);
        let parsed = ClusteredCsvReader::new(text.as_bytes())
            .unwrap()
            .into_dataset(&original.name)
            .unwrap();
        // First-appearance cluster ordering makes the row round trip exact
        // (not just set-equal); goldens are re-derived as majority truths.
        assert_eq!(parsed.columns, original.columns);
        assert_eq!(parsed.clusters.len(), original.clusters.len());
        for (p, o) in parsed.clusters.iter().zip(&original.clusters) {
            assert_eq!(p.rows, o.rows);
            assert_eq!(p.golden, majority_golden(&o.rows, original.columns.len()));
        }
        // And the whole-document adapter agrees.
        assert_eq!(parsed, dataset_from_csv(&original.name, &text).unwrap());
    }

    #[test]
    fn clustered_writer_matches_the_whole_document_adapter() {
        let dataset = PaperDataset::JournalTitle.generate(&GeneratorConfig {
            num_clusters: 8,
            seed: 5,
            num_sources: 3,
        });
        let mut sink = ClusteredCsvWriter::new(Vec::new(), &dataset.columns).unwrap();
        for cluster in &dataset.clusters {
            sink.write_cluster(cluster).unwrap();
        }
        sink.finish().unwrap();
        let streamed = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(streamed, dataset_to_csv(&dataset));
    }

    #[test]
    fn dataset_is_a_collecting_sink() {
        let source = PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 4,
            seed: 1,
            num_sources: 2,
        });
        let mut collected = Dataset::new(source.name.clone(), source.columns.clone());
        for cluster in &source.clusters {
            collected.write_cluster(cluster).unwrap();
        }
        collected.finish().unwrap();
        assert_eq!(collected, source);
    }

    #[test]
    fn vec_record_stream_yields_everything() {
        let mut stream = VecRecordStream::new(
            vec!["Name".to_string()],
            vec![
                FlatRecord {
                    source: 0,
                    fields: vec!["a".to_string()],
                },
                FlatRecord {
                    source: 1,
                    fields: vec!["b".to_string()],
                },
            ],
        );
        assert_eq!(stream.columns(), ["Name"]);
        assert_eq!(stream.collect_records().unwrap().len(), 2);
        assert!(stream.next_record().is_none());
    }
}
