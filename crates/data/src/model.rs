//! The clustered-table data model.
//!
//! Entity resolution has already happened upstream: the input of entity
//! consolidation is a set of clusters, each holding the records believed to
//! describe one real-world entity. Every cell additionally carries its ground
//! truth (the latent value it is a rendering of), which the synthetic
//! generators know by construction; evaluation code uses it in place of the
//! paper's manual labelling of 1000 sampled pairs.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One cell: the observed (possibly variant or conflicting) value and the
/// latent true value it renders.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// The value as it appears in the source data.
    pub observed: String,
    /// The latent true value (used only for evaluation and the simulated
    /// oracle, never by the learning algorithms).
    pub truth: String,
}

/// One record (row) of a cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Row {
    /// The data source the record came from.
    pub source: usize,
    /// One cell per column of the dataset.
    pub cells: Vec<Cell>,
}

/// A cluster of duplicate records describing one entity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Cluster {
    /// The records of the cluster.
    pub rows: Vec<Row>,
    /// The ground-truth golden record (one canonical value per column).
    pub golden: Vec<String>,
}

impl Cluster {
    /// Number of records in the cluster.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the cluster has no records.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A clustered dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable dataset name.
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
    /// The clusters.
    pub clusters: Vec<Cluster>,
}

/// A labelled pair of cells used for the precision/recall/MCC evaluation: two
/// non-identical values from the same cluster, labelled variant (same latent
/// value) or conflict (different latent values), exactly mirroring the paper's
/// 1000 manually-labelled sample pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledPair {
    /// Cluster index.
    pub cluster: usize,
    /// First row index.
    pub row_a: usize,
    /// Second row index.
    pub row_b: usize,
    /// True when the two cells render the same latent value.
    pub is_variant: bool,
}

/// Dataset statistics in the shape of the paper's Table 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Average cluster size (records per cluster).
    pub avg_cluster_size: f64,
    /// Smallest cluster size.
    pub min_cluster_size: usize,
    /// Largest cluster size.
    pub max_cluster_size: usize,
    /// Total number of records.
    pub num_records: usize,
    /// Number of clusters.
    pub num_clusters: usize,
    /// Number of distinct non-identical value pairs within clusters.
    pub distinct_value_pairs: usize,
    /// Fraction of distinct pairs that are variant pairs.
    pub variant_pair_fraction: f64,
    /// Fraction of distinct pairs that are conflict pairs.
    pub conflict_pair_fraction: f64,
}

/// The per-column majority of the rows' truth values — how both the synthetic
/// generators and the CSV/resolution loaders define a cluster's golden record
/// when only row-level truth is known. Ties break towards the
/// lexicographically smallest value so the result is deterministic.
pub fn majority_golden(rows: &[Row], num_columns: usize) -> Vec<String> {
    (0..num_columns)
        .map(|col| {
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for row in rows {
                *counts.entry(row.cells[col].truth.as_str()).or_insert(0) += 1;
            }
            counts
                .into_iter()
                .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v)))
                .map(|(v, _)| v.to_string())
                .unwrap_or_default()
        })
        .collect()
}

impl Dataset {
    /// Creates an empty dataset with the given name and columns.
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> Self {
        Dataset {
            name: name.into(),
            columns,
            clusters: Vec::new(),
        }
    }

    /// The index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Total number of records.
    pub fn num_records(&self) -> usize {
        self.clusters.iter().map(Cluster::len).sum()
    }

    /// The observed values of one column, grouped by cluster — the shape the
    /// candidate-generation and application code works on.
    pub fn column_values(&self, col: usize) -> Vec<Vec<String>> {
        self.clusters
            .iter()
            .map(|c| {
                c.rows
                    .iter()
                    .map(|r| r.cells[col].observed.clone())
                    .collect()
            })
            .collect()
    }

    /// Writes back updated observed values for one column (shape must match
    /// [`Dataset::column_values`]).
    ///
    /// # Panics
    /// Panics if the cluster/row shape does not match the dataset.
    pub fn set_column_values(&mut self, col: usize, values: Vec<Vec<String>>) {
        assert_eq!(values.len(), self.clusters.len(), "cluster count mismatch");
        for (cluster, new_values) in self.clusters.iter_mut().zip(values) {
            assert_eq!(cluster.rows.len(), new_values.len(), "row count mismatch");
            for (row, value) in cluster.rows.iter_mut().zip(new_values) {
                row.cells[col].observed = value;
            }
        }
    }

    /// The set of ground-truth (canonical) values of one column.
    pub fn canonical_values(&self, col: usize) -> HashSet<String> {
        self.clusters
            .iter()
            .map(|c| c.golden[col].clone())
            .collect()
    }

    /// For every distinct non-identical observed value pair within some
    /// cluster, how many cell pairs labelled variant vs conflict it covers.
    /// The simulated oracle uses this to emulate the human "most or all pairs
    /// look right" judgement.
    pub fn pair_labels(&self, col: usize) -> HashMap<(String, String), (usize, usize)> {
        let mut out: HashMap<(String, String), (usize, usize)> = HashMap::new();
        for cluster in &self.clusters {
            for (i, a) in cluster.rows.iter().enumerate() {
                for b in cluster.rows.iter().skip(i + 1) {
                    let va = &a.cells[col];
                    let vb = &b.cells[col];
                    if va.observed == vb.observed {
                        continue;
                    }
                    let variant = va.truth == vb.truth;
                    for key in [
                        (va.observed.clone(), vb.observed.clone()),
                        (vb.observed.clone(), va.observed.clone()),
                    ] {
                        let entry = out.entry(key).or_insert((0, 0));
                        if variant {
                            entry.0 += 1;
                        } else {
                            entry.1 += 1;
                        }
                    }
                }
            }
        }
        out
    }

    /// Dataset statistics (Table 6) for one column.
    pub fn stats(&self, col: usize) -> DatasetStats {
        let sizes: Vec<usize> = self.clusters.iter().map(Cluster::len).collect();
        let num_records: usize = sizes.iter().sum();
        let mut distinct_pairs: HashSet<(String, String)> = HashSet::new();
        let mut variant_pairs: HashSet<(String, String)> = HashSet::new();
        for cluster in &self.clusters {
            for (i, a) in cluster.rows.iter().enumerate() {
                for b in cluster.rows.iter().skip(i + 1) {
                    let va = &a.cells[col];
                    let vb = &b.cells[col];
                    if va.observed == vb.observed {
                        continue;
                    }
                    let key = if va.observed < vb.observed {
                        (va.observed.clone(), vb.observed.clone())
                    } else {
                        (vb.observed.clone(), va.observed.clone())
                    };
                    if va.truth == vb.truth {
                        variant_pairs.insert(key.clone());
                    }
                    distinct_pairs.insert(key);
                }
            }
        }
        let total = distinct_pairs.len();
        let variant = distinct_pairs
            .iter()
            .filter(|p| variant_pairs.contains(*p))
            .count();
        DatasetStats {
            avg_cluster_size: if sizes.is_empty() {
                0.0
            } else {
                num_records as f64 / sizes.len() as f64
            },
            min_cluster_size: sizes.iter().copied().min().unwrap_or(0),
            max_cluster_size: sizes.iter().copied().max().unwrap_or(0),
            num_records,
            num_clusters: self.clusters.len(),
            distinct_value_pairs: total,
            variant_pair_fraction: if total == 0 {
                0.0
            } else {
                variant as f64 / total as f64
            },
            conflict_pair_fraction: if total == 0 {
                0.0
            } else {
                (total - variant) as f64 / total as f64
            },
        }
    }

    /// Samples up to `n` labelled cell pairs with non-identical observed
    /// values (the evaluation sample of Section 8, which the paper draws with
    /// size 1000 and labels by hand).
    pub fn sample_labeled_pairs<R: Rng>(
        &self,
        col: usize,
        n: usize,
        rng: &mut R,
    ) -> Vec<LabeledPair> {
        let mut all: Vec<LabeledPair> = Vec::new();
        for (c, cluster) in self.clusters.iter().enumerate() {
            for i in 0..cluster.rows.len() {
                for j in (i + 1)..cluster.rows.len() {
                    let a = &cluster.rows[i].cells[col];
                    let b = &cluster.rows[j].cells[col];
                    if a.observed != b.observed {
                        all.push(LabeledPair {
                            cluster: c,
                            row_a: i,
                            row_b: j,
                            is_variant: a.truth == b.truth,
                        });
                    }
                }
            }
        }
        all.shuffle(rng);
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A tiny hand-built dataset mirroring Table 1 of the paper.
    pub(crate) fn table1() -> Dataset {
        let mut d = Dataset::new("table1", vec!["Name".to_string(), "Address".to_string()]);
        let mk = |observed: &str, truth: &str| Cell {
            observed: observed.to_string(),
            truth: truth.to_string(),
        };
        d.clusters.push(Cluster {
            rows: vec![
                Row {
                    source: 0,
                    cells: vec![
                        mk("Mary Lee", "Mary Lee"),
                        mk("9 St, 02141 Wisconsin", "9th Street, 02141 WI"),
                    ],
                },
                Row {
                    source: 1,
                    cells: vec![
                        mk("M. Lee", "Mary Lee"),
                        mk("9th St, 02141 WI", "9th Street, 02141 WI"),
                    ],
                },
                Row {
                    source: 2,
                    cells: vec![
                        mk("Lee, Mary", "Mary Lee"),
                        mk("9 Street, 02141 WI", "9th Street, 02141 WI"),
                    ],
                },
            ],
            golden: vec!["Mary Lee".to_string(), "9th Street, 02141 WI".to_string()],
        });
        d.clusters.push(Cluster {
            rows: vec![
                Row {
                    source: 0,
                    cells: vec![
                        mk("Smith, James", "James Smith"),
                        mk("5th St, 22701 California", "5th St, 22701 California"),
                    ],
                },
                Row {
                    source: 1,
                    cells: vec![
                        mk("James Smith", "James Smith"),
                        mk("3rd E Ave, 33990 California", "3rd E Avenue, 33990 CA"),
                    ],
                },
                Row {
                    source: 2,
                    cells: vec![
                        mk("J. Smith", "James Smith"),
                        mk("3 E Avenue, 33990 CA", "3rd E Avenue, 33990 CA"),
                    ],
                },
            ],
            golden: vec![
                "James Smith".to_string(),
                "3rd E Avenue, 33990 CA".to_string(),
            ],
        });
        d
    }

    #[test]
    fn column_round_trip() {
        let mut d = table1();
        let col = d.column_index("Name").unwrap();
        let mut values = d.column_values(col);
        assert_eq!(values[0][2], "Lee, Mary");
        values[0][2] = "Mary Lee".to_string();
        d.set_column_values(col, values);
        assert_eq!(d.clusters[0].rows[2].cells[col].observed, "Mary Lee");
        // Truth is untouched.
        assert_eq!(d.clusters[0].rows[2].cells[col].truth, "Mary Lee");
    }

    #[test]
    fn stats_match_the_hand_built_table() {
        let d = table1();
        let s = d.stats(0);
        assert_eq!(s.num_clusters, 2);
        assert_eq!(s.num_records, 6);
        assert_eq!(s.min_cluster_size, 3);
        assert_eq!(s.max_cluster_size, 3);
        assert!((s.avg_cluster_size - 3.0).abs() < 1e-9);
        // Name column: 3 distinct pairs per cluster, all variants.
        assert_eq!(s.distinct_value_pairs, 6);
        assert_eq!(s.variant_pair_fraction, 1.0);
        assert_eq!(s.conflict_pair_fraction, 0.0);
    }

    #[test]
    fn address_column_has_conflicts() {
        let d = table1();
        let col = d.column_index("Address").unwrap();
        let s = d.stats(col);
        assert!(
            s.conflict_pair_fraction > 0.0,
            "the Smith cluster has two different addresses"
        );
        assert!(s.variant_pair_fraction > 0.0);
    }

    #[test]
    fn pair_labels_are_symmetric_and_consistent() {
        let d = table1();
        let labels = d.pair_labels(0);
        let ab = labels
            .get(&("Mary Lee".to_string(), "M. Lee".to_string()))
            .unwrap();
        let ba = labels
            .get(&("M. Lee".to_string(), "Mary Lee".to_string()))
            .unwrap();
        assert_eq!(ab, ba);
        assert_eq!(*ab, (1, 0));
        let col = d.column_index("Address").unwrap();
        let labels = d.pair_labels(col);
        let conflict = labels
            .get(&(
                "5th St, 22701 California".to_string(),
                "3rd E Ave, 33990 California".to_string(),
            ))
            .unwrap();
        assert_eq!(*conflict, (0, 1));
    }

    #[test]
    fn sampling_respects_the_requested_size_and_labels() {
        let d = table1();
        let mut rng = StdRng::seed_from_u64(7);
        let sample = d.sample_labeled_pairs(0, 100, &mut rng);
        assert_eq!(sample.len(), 6, "only 6 non-identical pairs exist");
        assert!(sample.iter().all(|p| p.is_variant));
        let small = d.sample_labeled_pairs(0, 2, &mut rng);
        assert_eq!(small.len(), 2);
    }

    #[test]
    fn canonical_values() {
        let d = table1();
        let canon = d.canonical_values(0);
        assert!(canon.contains("Mary Lee"));
        assert!(canon.contains("James Smith"));
        assert_eq!(canon.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cluster count mismatch")]
    fn set_column_values_shape_mismatch_panics() {
        let mut d = table1();
        d.set_column_values(0, vec![vec![]]);
    }
}
