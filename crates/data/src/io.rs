//! Loading and saving clustered datasets as delimited text.
//!
//! Two formats are supported:
//!
//! * **clustered CSV** — one row per record with a `cluster` id column, a
//!   `source` column, then one observed-value column per attribute and
//!   (optionally) one `<attribute>__truth` column per attribute. This is the
//!   format [`dataset_to_csv`] writes and [`dataset_from_csv`] reads; it round
//!   trips losslessly (ground-truth golden values are re-derived as the
//!   majority truth of the cluster, which is how the generators define them).
//! * **flat record CSV** — one row per unclustered record: a `source` column
//!   followed by attribute columns. [`raw_records_from_csv`] reads it; the
//!   `ec-resolution` crate turns such records into clusters.
//!
//! Every function here is a thin whole-document adapter over the incremental
//! readers and writers in [`crate::stream`]; callers with large inputs should
//! use [`crate::stream::ClusteredCsvReader`] / [`crate::stream::FlatCsvReader`]
//! directly and never materialize the document.

use crate::csv::CsvError;
use crate::model::Dataset;
use crate::stream::{ClusteredCsvReader, ClusteredCsvWriter, DatasetSink, FlatCsvReader};
use std::fmt;

/// An error produced while reading a dataset from CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetIoError {
    /// The underlying CSV text failed to parse (or the reader failed).
    Csv(CsvError),
    /// The header was missing or lacked required columns.
    BadHeader(String),
    /// A cell failed to parse (e.g. a non-numeric cluster id).
    BadCell {
        /// 1-based data-row number (excluding the header).
        row: usize,
        /// Explanation of the failure.
        message: String,
    },
}

impl fmt::Display for DatasetIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetIoError::Csv(e) => write!(f, "csv error: {e}"),
            DatasetIoError::BadHeader(msg) => write!(f, "bad header: {msg}"),
            DatasetIoError::BadCell { row, message } => write!(f, "row {row}: {message}"),
        }
    }
}

impl std::error::Error for DatasetIoError {}

impl From<CsvError> for DatasetIoError {
    fn from(e: CsvError) -> Self {
        DatasetIoError::Csv(e)
    }
}

/// Serializes a dataset to clustered CSV, including the `__truth` columns so
/// that evaluation-ready datasets round trip.
pub fn dataset_to_csv(dataset: &Dataset) -> String {
    let mut writer = ClusteredCsvWriter::new(Vec::new(), &dataset.columns)
        .expect("writing to a Vec cannot fail");
    for cluster in &dataset.clusters {
        writer
            .write_cluster(cluster)
            .expect("writing to a Vec cannot fail");
    }
    String::from_utf8(writer.into_inner()).expect("CSV output is valid UTF-8")
}

/// Parses a clustered-CSV dataset produced by [`dataset_to_csv`] (or authored
/// by hand). The `__truth` columns are optional; when absent each cell's truth
/// is set to its observed value. Clusters appear in order of first appearance
/// of their id, and cluster golden records are the per-column majority of
/// truths within the cluster.
pub fn dataset_from_csv(name: &str, text: &str) -> Result<Dataset, DatasetIoError> {
    ClusteredCsvReader::new(text.as_bytes())?.into_dataset(name)
}

/// Attribute column names plus one `(source, fields)` entry per flat record —
/// the shape `ec-resolution`'s `RawRecord` construction expects.
pub type RawRecords = (Vec<String>, Vec<(usize, Vec<String>)>);

/// Parses flat, unclustered records: a header of `source,<attributes...>`
/// followed by one row per record.
pub fn raw_records_from_csv(text: &str) -> Result<RawRecords, DatasetIoError> {
    use crate::stream::RecordStream;
    let mut stream = FlatCsvReader::new(text.as_bytes())?;
    let columns = stream.columns().to_vec();
    let records = stream
        .collect_records()?
        .into_iter()
        .map(|r| (r.source, r.fields))
        .collect();
    Ok((columns, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{GeneratorConfig, PaperDataset};

    fn small_dataset() -> Dataset {
        PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 12,
            seed: 3,
            num_sources: 3,
        })
    }

    #[test]
    fn dataset_round_trips_through_csv() {
        let original = small_dataset();
        let text = dataset_to_csv(&original);
        let parsed = dataset_from_csv(&original.name, &text).unwrap();
        // First-appearance cluster ordering makes the row round trip exact
        // (goldens are re-derived as majority truths, which can differ from
        // the generator's latent canonical value in conflict-heavy clusters).
        assert_eq!(parsed.columns, original.columns);
        assert_eq!(parsed.clusters.len(), original.clusters.len());
        for (p, o) in parsed.clusters.iter().zip(&original.clusters) {
            assert_eq!(p.rows, o.rows);
        }
        // A second round trip is a perfect fixed point.
        let text2 = dataset_to_csv(&parsed);
        assert_eq!(text, text2);
        assert_eq!(
            dataset_from_csv("again", &text2).unwrap().clusters,
            parsed.clusters
        );
    }

    #[test]
    fn csv_without_truth_columns_defaults_truth_to_observed() {
        let text = "cluster,source,Name\n0,0,Mary Lee\n0,1,\"Lee, Mary\"\n1,0,James Smith\n";
        let dataset = dataset_from_csv("names", text).unwrap();
        assert_eq!(dataset.columns, vec!["Name"]);
        assert_eq!(dataset.clusters.len(), 2);
        for cluster in &dataset.clusters {
            for row in &cluster.rows {
                assert_eq!(row.cells[0].observed, row.cells[0].truth);
            }
        }
    }

    #[test]
    fn golden_records_are_majority_truths() {
        let text = "cluster,source,Name,Name__truth\n\
                    0,0,Mary Lee,Mary Lee\n\
                    0,1,M. Lee,Mary Lee\n\
                    0,2,Lee Mary,Lee Mary\n";
        let dataset = dataset_from_csv("names", text).unwrap();
        assert_eq!(dataset.clusters[0].golden[0], "Mary Lee");
    }

    #[test]
    fn clusters_preserve_first_appearance_order() {
        // Ids that would sort differently as strings ("10" < "9"
        // lexicographically) keep their order of first appearance instead.
        let text = "cluster,source,Name\n9,0,a\n10,0,b\n9,1,c\n2,0,d\n";
        let dataset = dataset_from_csv("order", text).unwrap();
        let firsts: Vec<&str> = dataset
            .clusters
            .iter()
            .map(|c| c.rows[0].cells[0].observed.as_str())
            .collect();
        assert_eq!(firsts, ["a", "b", "d"]);
        assert_eq!(dataset.clusters[0].rows.len(), 2, "9's rows merged");
    }

    #[test]
    fn bad_headers_are_rejected() {
        assert!(matches!(
            dataset_from_csv("x", ""),
            Err(DatasetIoError::BadHeader(_))
        ));
        assert!(matches!(
            dataset_from_csv("x", "a,b,c\n1,2,3\n"),
            Err(DatasetIoError::BadHeader(_))
        ));
    }

    #[test]
    fn bad_source_reports_the_row() {
        let text = "cluster,source,Name\n0,zero,Mary\n";
        let err = dataset_from_csv("x", text).unwrap_err();
        match err {
            DatasetIoError::BadCell { row, .. } => assert_eq!(row, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn csv_parse_errors_propagate() {
        let text = "cluster,source,Name\n0,0,\"open\n";
        assert!(matches!(
            dataset_from_csv("x", text),
            Err(DatasetIoError::Csv(_))
        ));
    }

    #[test]
    fn raw_records_parse() {
        let text = "source,Name,Address\n0,Mary Lee,\"9 St, 02141 WI\"\n1,M. Lee,9th St\n";
        let (columns, records) = raw_records_from_csv(text).unwrap();
        assert_eq!(columns, vec!["Name", "Address"]);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].0, 0);
        assert_eq!(records[0].1[1], "9 St, 02141 WI");
    }

    #[test]
    fn raw_records_reject_bad_headers_and_sources() {
        assert!(raw_records_from_csv("").is_err());
        assert!(raw_records_from_csv("name\nx\n").is_err());
        assert!(raw_records_from_csv("source,Name\nnotanumber,X\n").is_err());
    }
}
