//! Loading and saving clustered datasets as delimited text.
//!
//! Two formats are supported:
//!
//! * **clustered CSV** — one row per record with a `cluster` id column, a
//!   `source` column, then one observed-value column per attribute and
//!   (optionally) one `<attribute>__truth` column per attribute. This is the
//!   format [`dataset_to_csv`] writes and [`dataset_from_csv`] reads; it round
//!   trips losslessly (ground-truth golden values are re-derived as the
//!   majority truth of the cluster, which is how the generators define them).
//! * **flat record CSV** — one row per unclustered record: a `source` column
//!   followed by attribute columns. [`raw_records_from_csv`] reads it; the
//!   `ec-resolution` crate turns such records into clusters.

use crate::csv::{self, CsvError};
use crate::model::{Cell, Cluster, Dataset, Row};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An error produced while reading a dataset from CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetIoError {
    /// The underlying CSV text failed to parse.
    Csv(CsvError),
    /// The header was missing or lacked required columns.
    BadHeader(String),
    /// A cell failed to parse (e.g. a non-numeric cluster id).
    BadCell {
        /// 1-based data-row number (excluding the header).
        row: usize,
        /// Explanation of the failure.
        message: String,
    },
}

impl fmt::Display for DatasetIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetIoError::Csv(e) => write!(f, "csv error: {e}"),
            DatasetIoError::BadHeader(msg) => write!(f, "bad header: {msg}"),
            DatasetIoError::BadCell { row, message } => write!(f, "row {row}: {message}"),
        }
    }
}

impl std::error::Error for DatasetIoError {}

impl From<CsvError> for DatasetIoError {
    fn from(e: CsvError) -> Self {
        DatasetIoError::Csv(e)
    }
}

/// Serializes a dataset to clustered CSV, including the `__truth` columns so
/// that evaluation-ready datasets round trip.
pub fn dataset_to_csv(dataset: &Dataset) -> String {
    let mut records: Vec<Vec<String>> = Vec::with_capacity(dataset.num_records() + 1);
    let mut header = vec!["cluster".to_string(), "source".to_string()];
    for col in &dataset.columns {
        header.push(col.clone());
    }
    for col in &dataset.columns {
        header.push(format!("{col}__truth"));
    }
    records.push(header);
    for (cluster_id, cluster) in dataset.clusters.iter().enumerate() {
        for row in &cluster.rows {
            let mut record = vec![cluster_id.to_string(), row.source.to_string()];
            record.extend(row.cells.iter().map(|c| c.observed.clone()));
            record.extend(row.cells.iter().map(|c| c.truth.clone()));
            records.push(record);
        }
    }
    csv::write(&records)
}

/// Parses a clustered-CSV dataset produced by [`dataset_to_csv`] (or authored
/// by hand). The `__truth` columns are optional; when absent each cell's truth
/// is set to its observed value. Cluster golden records are the per-column
/// majority of truths within the cluster.
pub fn dataset_from_csv(name: &str, text: &str) -> Result<Dataset, DatasetIoError> {
    let records = csv::parse(text)?;
    let Some((header, data)) = records.split_first() else {
        return Err(DatasetIoError::BadHeader("empty input".to_string()));
    };
    if header.len() < 3 || header[0] != "cluster" || header[1] != "source" {
        return Err(DatasetIoError::BadHeader(
            "expected columns: cluster, source, <attributes...>".to_string(),
        ));
    }
    let attribute_headers = &header[2..];
    // Observed columns come first, then any *__truth columns.
    let observed: Vec<&String> = attribute_headers
        .iter()
        .filter(|h| !h.ends_with("__truth"))
        .collect();
    let truth_index: HashMap<&str, usize> = attribute_headers
        .iter()
        .enumerate()
        .filter(|(_, h)| h.ends_with("__truth"))
        .map(|(i, h)| (h.trim_end_matches("__truth"), i + 2))
        .collect();
    let observed_index: Vec<usize> = attribute_headers
        .iter()
        .enumerate()
        .filter(|(_, h)| !h.ends_with("__truth"))
        .map(|(i, _)| i + 2)
        .collect();
    let columns: Vec<String> = observed.iter().map(|s| s.to_string()).collect();

    let mut clusters: BTreeMap<String, Vec<Row>> = BTreeMap::new();
    for (row_num, record) in data.iter().enumerate() {
        let source: usize = record[1]
            .trim()
            .parse()
            .map_err(|_| DatasetIoError::BadCell {
                row: row_num + 1,
                message: format!("source '{}' is not an integer", record[1]),
            })?;
        let cells: Vec<Cell> = columns
            .iter()
            .zip(&observed_index)
            .map(|(col, &obs_idx)| {
                let observed = record[obs_idx].clone();
                let truth = truth_index
                    .get(col.as_str())
                    .map(|&t| record[t].clone())
                    .unwrap_or_else(|| observed.clone());
                Cell { observed, truth }
            })
            .collect();
        clusters
            .entry(record[0].trim().to_string())
            .or_default()
            .push(Row { source, cells });
    }

    let mut dataset = Dataset::new(name, columns.clone());
    for (_, rows) in clusters {
        let golden: Vec<String> = (0..columns.len())
            .map(|col| {
                let mut counts: HashMap<&str, usize> = HashMap::new();
                for row in &rows {
                    *counts.entry(row.cells[col].truth.as_str()).or_insert(0) += 1;
                }
                counts
                    .into_iter()
                    .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v)))
                    .map(|(v, _)| v.to_string())
                    .unwrap_or_default()
            })
            .collect();
        dataset.clusters.push(Cluster { rows, golden });
    }
    Ok(dataset)
}

/// Attribute column names plus one `(source, fields)` entry per flat record —
/// the shape `ec-resolution`'s `RawRecord` construction expects.
pub type RawRecords = (Vec<String>, Vec<(usize, Vec<String>)>);

/// Parses flat, unclustered records: a header of `source,<attributes...>`
/// followed by one row per record.
pub fn raw_records_from_csv(text: &str) -> Result<RawRecords, DatasetIoError> {
    let records = csv::parse(text)?;
    let Some((header, data)) = records.split_first() else {
        return Err(DatasetIoError::BadHeader("empty input".to_string()));
    };
    if header.len() < 2 || header[0] != "source" {
        return Err(DatasetIoError::BadHeader(
            "expected columns: source, <attributes...>".to_string(),
        ));
    }
    let columns = header[1..].to_vec();
    let mut out = Vec::with_capacity(data.len());
    for (row_num, record) in data.iter().enumerate() {
        let source: usize = record[0]
            .trim()
            .parse()
            .map_err(|_| DatasetIoError::BadCell {
                row: row_num + 1,
                message: format!("source '{}' is not an integer", record[0]),
            })?;
        out.push((source, record[1..].to_vec()));
    }
    Ok((columns, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{GeneratorConfig, PaperDataset};

    fn small_dataset() -> Dataset {
        PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 12,
            seed: 3,
            num_sources: 3,
        })
    }

    #[test]
    fn dataset_round_trips_through_csv() {
        let original = small_dataset();
        let text = dataset_to_csv(&original);
        let parsed = dataset_from_csv(&original.name, &text).unwrap();
        assert_eq!(parsed.columns, original.columns);
        assert_eq!(parsed.num_records(), original.num_records());
        // Every (observed, truth) multiset per cluster is preserved; cluster
        // order may differ because ids are strings, so compare as sets.
        let key = |d: &Dataset| {
            let mut clusters: Vec<Vec<(String, String, usize)>> = d
                .clusters
                .iter()
                .map(|c| {
                    let mut rows: Vec<(String, String, usize)> = c
                        .rows
                        .iter()
                        .map(|r| {
                            (
                                r.cells[0].observed.clone(),
                                r.cells[0].truth.clone(),
                                r.source,
                            )
                        })
                        .collect();
                    rows.sort();
                    rows
                })
                .collect();
            clusters.sort();
            clusters
        };
        assert_eq!(key(&parsed), key(&original));
    }

    #[test]
    fn csv_without_truth_columns_defaults_truth_to_observed() {
        let text = "cluster,source,Name\n0,0,Mary Lee\n0,1,\"Lee, Mary\"\n1,0,James Smith\n";
        let dataset = dataset_from_csv("names", text).unwrap();
        assert_eq!(dataset.columns, vec!["Name"]);
        assert_eq!(dataset.clusters.len(), 2);
        for cluster in &dataset.clusters {
            for row in &cluster.rows {
                assert_eq!(row.cells[0].observed, row.cells[0].truth);
            }
        }
    }

    #[test]
    fn golden_records_are_majority_truths() {
        let text = "cluster,source,Name,Name__truth\n\
                    0,0,Mary Lee,Mary Lee\n\
                    0,1,M. Lee,Mary Lee\n\
                    0,2,Lee Mary,Lee Mary\n";
        let dataset = dataset_from_csv("names", text).unwrap();
        assert_eq!(dataset.clusters[0].golden[0], "Mary Lee");
    }

    #[test]
    fn bad_headers_are_rejected() {
        assert!(matches!(
            dataset_from_csv("x", ""),
            Err(DatasetIoError::BadHeader(_))
        ));
        assert!(matches!(
            dataset_from_csv("x", "a,b,c\n1,2,3\n"),
            Err(DatasetIoError::BadHeader(_))
        ));
    }

    #[test]
    fn bad_source_reports_the_row() {
        let text = "cluster,source,Name\n0,zero,Mary\n";
        let err = dataset_from_csv("x", text).unwrap_err();
        match err {
            DatasetIoError::BadCell { row, .. } => assert_eq!(row, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn csv_parse_errors_propagate() {
        let text = "cluster,source,Name\n0,0,\"open\n";
        assert!(matches!(
            dataset_from_csv("x", text),
            Err(DatasetIoError::Csv(_))
        ));
    }

    #[test]
    fn raw_records_parse() {
        let text = "source,Name,Address\n0,Mary Lee,\"9 St, 02141 WI\"\n1,M. Lee,9th St\n";
        let (columns, records) = raw_records_from_csv(text).unwrap();
        assert_eq!(columns, vec!["Name", "Address"]);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].0, 0);
        assert_eq!(records[0].1[1], "9 St, 02141 WI");
    }

    #[test]
    fn raw_records_reject_bad_headers_and_sources() {
        assert!(raw_records_from_csv("").is_err());
        assert!(raw_records_from_csv("name\nx\n").is_err());
        assert!(raw_records_from_csv("source,Name\nnotanumber,X\n").is_err());
    }
}
