//! # ec-data — clustered datasets with ground truth
//!
//! The paper evaluates on three real-world datasets (AuthorList, Address,
//! JournalTitle). Those raw dumps are not redistributable, so this crate
//! provides (a) the clustered-table data model the rest of the workspace works
//! on and (b) three seeded synthetic generators that reproduce the *shape* of
//! the paper's datasets — the transformation families shown in Table 4 and
//! Figure 2, the variant/conflict pair ratios and cluster-size profiles of
//! Table 6 — together with per-cell ground truth so that precision, recall,
//! MCC and golden-record precision can be computed exactly instead of by
//! manual labelling.
//!
//! See DESIGN.md ("Substitutions") for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod generate;
pub mod io;
pub mod model;
pub mod stream;

pub use generate::{address, author_list, journal_title, GeneratorConfig, PaperDataset};
pub use io::{dataset_from_csv, dataset_to_csv, raw_records_from_csv, DatasetIoError, RawRecords};
pub use model::{majority_golden, Cell, Cluster, Dataset, DatasetStats, LabeledPair, Row};
pub use stream::{
    ClusteredCsvReader, ClusteredCsvWriter, ClusteredRow, DatasetSink, FlatCsvReader, FlatRecord,
    RecordStream, VecRecordStream,
};
