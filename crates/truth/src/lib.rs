//! # ec-truth — truth discovery for golden-record construction
//!
//! After the variant values of a cluster have been standardized, a truth
//! discovery method resolves the remaining conflicts and picks one canonical
//! value per attribute — the golden record (Algorithm 1, line 10). The paper
//! evaluates with **majority consensus** (Section 8.3, Table 8); this crate
//! provides that plus an iterative **source-reliability** scheme in the spirit
//! of the truth-discovery literature the paper defers to (TruthFinder-style:
//! source trust and claim confidence computed as fixed points of each other),
//! which is the substrate a downstream user would actually want.
//!
//! Both operate on one cluster-column at a time: a list of claimed values,
//! optionally tagged with the source that claimed them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advanced;

pub use advanced::{accu_source_accuracies, accu_truth_discovery, weighted_voting, AccuConfig};

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A value claimed by a source for one attribute of one entity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Claim {
    /// The claimed value.
    pub value: String,
    /// The source that made the claim (an opaque id; records from the same
    /// data source share it).
    pub source: usize,
}

/// The outcome of truth discovery for one cluster-column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resolution {
    /// The chosen golden value, or `None` when the method could not decide
    /// (e.g. a tie under majority consensus, as in the paper's Section 8.3).
    pub value: Option<String>,
    /// The confidence score of the chosen value (vote fraction for majority
    /// consensus, normalized claim confidence for the weighted scheme).
    pub confidence: f64,
}

/// Majority consensus: the most frequent value wins; a tie for the top count
/// yields no golden value (the paper: "if there are two values with the same
/// frequency, MC could not produce a golden value").
pub fn majority_consensus<S: AsRef<str>>(values: &[S]) -> Resolution {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for v in values {
        *counts.entry(v.as_ref()).or_insert(0) += 1;
    }
    if counts.is_empty() {
        return Resolution {
            value: None,
            confidence: 0.0,
        };
    }
    let max = counts.values().copied().max().unwrap_or(0);
    let mut top: Vec<&str> = counts
        .iter()
        .filter(|(_, &c)| c == max)
        .map(|(&v, _)| v)
        .collect();
    top.sort_unstable();
    if top.len() == 1 {
        Resolution {
            value: Some(top[0].to_string()),
            confidence: max as f64 / values.len() as f64,
        }
    } else {
        Resolution {
            value: None,
            confidence: 0.0,
        }
    }
}

/// Configuration of the iterative source-reliability truth discovery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityConfig {
    /// Maximum number of trust/confidence iterations.
    pub max_iterations: usize,
    /// Stop when the largest change in source trust falls below this value.
    pub tolerance: f64,
    /// Initial trust assigned to every source.
    pub initial_trust: f64,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            max_iterations: 20,
            tolerance: 1e-6,
            initial_trust: 0.8,
        }
    }
}

/// Iterative source-reliability truth discovery over many entities at once.
///
/// `claims[e]` holds the claims for entity `e` (one cluster-column). Source
/// trust is the average confidence of the values the source claims; value
/// confidence within an entity is the normalized sum of the trusts of the
/// sources claiming it. The two are iterated to a fixed point, then the
/// highest-confidence value per entity is returned (`None` only for entities
/// with no claims).
pub fn reliability_truth_discovery(
    claims: &[Vec<Claim>],
    config: &ReliabilityConfig,
) -> Vec<Resolution> {
    // Collect sources.
    let mut sources: Vec<usize> = claims
        .iter()
        .flat_map(|c| c.iter().map(|claim| claim.source))
        .collect();
    sources.sort_unstable();
    sources.dedup();
    let source_index: HashMap<usize, usize> =
        sources.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut trust = vec![config.initial_trust; sources.len()];

    let mut value_confidence: Vec<HashMap<&str, f64>> = vec![HashMap::new(); claims.len()];
    for _ in 0..config.max_iterations.max(1) {
        // Value confidence from source trust.
        for (e, entity_claims) in claims.iter().enumerate() {
            let mut scores: HashMap<&str, f64> = HashMap::new();
            for claim in entity_claims {
                *scores.entry(claim.value.as_str()).or_insert(0.0) +=
                    trust[source_index[&claim.source]];
            }
            let total: f64 = scores.values().sum();
            if total > 0.0 {
                for v in scores.values_mut() {
                    *v /= total;
                }
            }
            value_confidence[e] = scores;
        }
        // Source trust from value confidence.
        let mut new_trust = vec![0.0f64; sources.len()];
        let mut counts = vec![0usize; sources.len()];
        for (e, entity_claims) in claims.iter().enumerate() {
            for claim in entity_claims {
                let idx = source_index[&claim.source];
                new_trust[idx] += value_confidence[e]
                    .get(claim.value.as_str())
                    .copied()
                    .unwrap_or(0.0);
                counts[idx] += 1;
            }
        }
        let mut max_delta = 0.0f64;
        for i in 0..sources.len() {
            let t = if counts[i] > 0 {
                new_trust[i] / counts[i] as f64
            } else {
                config.initial_trust
            };
            max_delta = max_delta.max((t - trust[i]).abs());
            trust[i] = t;
        }
        if max_delta < config.tolerance {
            break;
        }
    }

    claims
        .iter()
        .enumerate()
        .map(|(e, entity_claims)| {
            if entity_claims.is_empty() {
                return Resolution {
                    value: None,
                    confidence: 0.0,
                };
            }
            let scores = &value_confidence[e];
            let mut best: Option<(&str, f64)> = None;
            let mut entries: Vec<(&str, f64)> = scores.iter().map(|(&v, &c)| (v, c)).collect();
            entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(b.0)));
            if let Some(&(v, c)) = entries.first() {
                best = Some((v, c));
            }
            match best {
                Some((v, c)) => Resolution {
                    value: Some(v.to_string()),
                    confidence: c,
                },
                None => Resolution {
                    value: None,
                    confidence: 0.0,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_consensus_picks_the_most_frequent_value() {
        let r = majority_consensus(&["a", "b", "a", "a", "c"]);
        assert_eq!(r.value.as_deref(), Some("a"));
        assert!((r.confidence - 0.6).abs() < 1e-9);
    }

    #[test]
    fn majority_consensus_tie_yields_no_value() {
        let r = majority_consensus(&["a", "b"]);
        assert_eq!(r.value, None);
        assert_eq!(r.confidence, 0.0);
        let r2 = majority_consensus(&["a", "b", "a", "b"]);
        assert_eq!(r2.value, None);
    }

    #[test]
    fn majority_consensus_edge_cases() {
        assert_eq!(majority_consensus::<&str>(&[]).value, None);
        let r = majority_consensus(&["only"]);
        assert_eq!(r.value.as_deref(), Some("only"));
        assert_eq!(r.confidence, 1.0);
    }

    #[test]
    fn standardization_turns_ties_into_majorities() {
        // The scenario behind Table 8: before standardization "Mary Lee" and
        // "Lee, Mary" split the vote; after standardization MC succeeds.
        let before = majority_consensus(&["Mary Lee", "Lee, Mary", "5th Ave"]);
        assert_eq!(before.value, None);
        let after = majority_consensus(&["Mary Lee", "Mary Lee", "5th Ave"]);
        assert_eq!(after.value.as_deref(), Some("Mary Lee"));
    }

    #[test]
    fn reliability_discovery_follows_reliable_sources() {
        // Source 0 is always right (agrees with the majority on entities 0-2),
        // source 9 is always wrong. On the contested entity 3, source 0's
        // claim must win even though the raw vote is tied.
        let claims = vec![
            vec![
                Claim {
                    value: "x".into(),
                    source: 0,
                },
                Claim {
                    value: "x".into(),
                    source: 1,
                },
                Claim {
                    value: "y".into(),
                    source: 9,
                },
            ],
            vec![
                Claim {
                    value: "u".into(),
                    source: 0,
                },
                Claim {
                    value: "u".into(),
                    source: 2,
                },
                Claim {
                    value: "w".into(),
                    source: 9,
                },
            ],
            vec![
                Claim {
                    value: "p".into(),
                    source: 0,
                },
                Claim {
                    value: "p".into(),
                    source: 3,
                },
                Claim {
                    value: "q".into(),
                    source: 9,
                },
            ],
            vec![
                Claim {
                    value: "good".into(),
                    source: 0,
                },
                Claim {
                    value: "bad".into(),
                    source: 9,
                },
            ],
        ];
        let res = reliability_truth_discovery(&claims, &ReliabilityConfig::default());
        assert_eq!(res[0].value.as_deref(), Some("x"));
        assert_eq!(res[3].value.as_deref(), Some("good"));
        assert!(res[3].confidence > 0.5);
    }

    #[test]
    fn reliability_discovery_handles_empty_entities() {
        let claims = vec![
            vec![],
            vec![Claim {
                value: "a".into(),
                source: 1,
            }],
        ];
        let res = reliability_truth_discovery(&claims, &ReliabilityConfig::default());
        assert_eq!(res[0].value, None);
        assert_eq!(res[1].value.as_deref(), Some("a"));
    }

    #[test]
    fn reliability_discovery_is_deterministic_on_exact_ties() {
        let claims = vec![vec![
            Claim {
                value: "b".into(),
                source: 1,
            },
            Claim {
                value: "a".into(),
                source: 2,
            },
        ]];
        let a = reliability_truth_discovery(&claims, &ReliabilityConfig::default());
        let b = reliability_truth_discovery(&claims, &ReliabilityConfig::default());
        assert_eq!(a, b);
        // Tie broken lexicographically for determinism.
        assert_eq!(a[0].value.as_deref(), Some("a"));
    }

    #[test]
    fn zero_iterations_is_clamped_to_one() {
        let claims = vec![vec![Claim {
            value: "v".into(),
            source: 0,
        }]];
        let config = ReliabilityConfig {
            max_iterations: 0,
            ..ReliabilityConfig::default()
        };
        let res = reliability_truth_discovery(&claims, &config);
        assert_eq!(res[0].value.as_deref(), Some("v"));
    }
}
