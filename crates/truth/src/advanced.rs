//! Additional truth-discovery algorithms beyond majority consensus.
//!
//! The paper (Section 9) positions its contribution as *orthogonal* to the
//! truth-discovery literature: standardizing variant values first improves
//! whatever conflict-resolution method runs afterwards. To let downstream
//! users (and the Table 8 style experiments) verify that claim against more
//! than plain majority consensus, this module implements two further
//! representatives of that literature:
//!
//! * [`weighted_voting`] — votes weighted by externally supplied source
//!   weights (the degenerate case of every weight being 1 is majority
//!   consensus without the tie-break abstention);
//! * [`accu_truth_discovery`] — an Accu-style iterative model in which each
//!   source has an accuracy, a claimed value's probability is derived from the
//!   accuracies of its supporters and detractors, and accuracies are
//!   re-estimated from the probabilities until a fixed point.

use crate::{Claim, Resolution};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Weighted voting: each claim contributes its source's weight; the value with
/// the largest total weight wins. Ties are broken towards the lexicographically
/// smaller value for determinism (unlike [`crate::majority_consensus`], which
/// abstains on ties — weighted voting is typically used when an answer is
/// always required). Missing sources default to weight 1.
pub fn weighted_voting(claims: &[Claim], weights: &HashMap<usize, f64>) -> Resolution {
    if claims.is_empty() {
        return Resolution {
            value: None,
            confidence: 0.0,
        };
    }
    let mut scores: HashMap<&str, f64> = HashMap::new();
    let mut total = 0.0;
    for claim in claims {
        let w = weights.get(&claim.source).copied().unwrap_or(1.0).max(0.0);
        *scores.entry(claim.value.as_str()).or_insert(0.0) += w;
        total += w;
    }
    let mut entries: Vec<(&str, f64)> = scores.into_iter().collect();
    entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(b.0)));
    match entries.first() {
        Some(&(value, score)) if total > 0.0 => Resolution {
            value: Some(value.to_string()),
            confidence: score / total,
        },
        _ => Resolution {
            value: None,
            confidence: 0.0,
        },
    }
}

/// Configuration of the Accu-style iterative truth discovery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuConfig {
    /// Initial accuracy assigned to every source.
    pub initial_accuracy: f64,
    /// The assumed number of plausible false values per attribute (`n` in the
    /// Accu model); larger values make disagreement less damning.
    pub n_false_values: f64,
    /// Maximum number of accuracy/probability iterations.
    pub max_iterations: usize,
    /// Stop when the largest accuracy change falls below this tolerance.
    pub tolerance: f64,
}

impl Default for AccuConfig {
    fn default() -> Self {
        AccuConfig {
            initial_accuracy: 0.8,
            n_false_values: 10.0,
            max_iterations: 25,
            tolerance: 1e-6,
        }
    }
}

/// Accu-style truth discovery over many entities at once (`claims[e]` are the
/// claims about entity `e`). Returns one [`Resolution`] per entity whose
/// confidence is the model's posterior probability of the chosen value.
///
/// The model follows Dong et al.'s Accu formulation (without copying
/// detection): a source with accuracy `A` supports its claimed value with
/// vote-count `ln(n·A / (1 − A))`; the probability of a value is the softmax
/// of the vote counts of the values claimed for that entity; and a source's
/// accuracy is re-estimated as the mean probability of the values it claims.
pub fn accu_truth_discovery(claims: &[Vec<Claim>], config: &AccuConfig) -> Vec<Resolution> {
    let mut sources: Vec<usize> = claims
        .iter()
        .flat_map(|c| c.iter().map(|claim| claim.source))
        .collect();
    sources.sort_unstable();
    sources.dedup();
    let source_index: HashMap<usize, usize> =
        sources.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let clamp = |a: f64| a.clamp(0.01, 0.99);
    let mut accuracy = vec![clamp(config.initial_accuracy); sources.len()];
    let n = config.n_false_values.max(1.0);

    let mut probabilities: Vec<HashMap<&str, f64>> = vec![HashMap::new(); claims.len()];
    for _ in 0..config.max_iterations.max(1) {
        // Value probabilities from source accuracies.
        for (e, entity_claims) in claims.iter().enumerate() {
            let mut votes: HashMap<&str, f64> = HashMap::new();
            for claim in entity_claims {
                let a = accuracy[source_index[&claim.source]];
                let vote = (n * a / (1.0 - a)).ln();
                *votes.entry(claim.value.as_str()).or_insert(0.0) += vote;
            }
            // Softmax over the observed values (stable: subtract the max).
            let max_vote = votes.values().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut probs: HashMap<&str, f64> = votes
                .iter()
                .map(|(&v, &c)| (v, (c - max_vote).exp()))
                .collect();
            let z: f64 = probs.values().sum();
            if z > 0.0 {
                for p in probs.values_mut() {
                    *p /= z;
                }
            }
            probabilities[e] = probs;
        }
        // Source accuracies from value probabilities.
        let mut sums = vec![0.0f64; sources.len()];
        let mut counts = vec![0usize; sources.len()];
        for (e, entity_claims) in claims.iter().enumerate() {
            for claim in entity_claims {
                let idx = source_index[&claim.source];
                sums[idx] += probabilities[e]
                    .get(claim.value.as_str())
                    .copied()
                    .unwrap_or(0.0);
                counts[idx] += 1;
            }
        }
        let mut max_delta = 0.0f64;
        for i in 0..sources.len() {
            let a = if counts[i] > 0 {
                clamp(sums[i] / counts[i] as f64)
            } else {
                clamp(config.initial_accuracy)
            };
            max_delta = max_delta.max((a - accuracy[i]).abs());
            accuracy[i] = a;
        }
        if max_delta < config.tolerance {
            break;
        }
    }

    claims
        .iter()
        .enumerate()
        .map(|(e, entity_claims)| {
            if entity_claims.is_empty() {
                return Resolution {
                    value: None,
                    confidence: 0.0,
                };
            }
            let mut entries: Vec<(&str, f64)> =
                probabilities[e].iter().map(|(&v, &p)| (v, p)).collect();
            entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(b.0)));
            match entries.first() {
                Some(&(v, p)) => Resolution {
                    value: Some(v.to_string()),
                    confidence: p,
                },
                None => Resolution {
                    value: None,
                    confidence: 0.0,
                },
            }
        })
        .collect()
}

/// The per-source accuracies the Accu model converged to, exposed separately
/// for diagnostics and tests. Returns `(source id, accuracy)` pairs sorted by
/// source id.
pub fn accu_source_accuracies(claims: &[Vec<Claim>], config: &AccuConfig) -> Vec<(usize, f64)> {
    // Re-run the fixed point; the claim sets handled here are small (one per
    // cluster-column), so the duplicated work is negligible and it keeps
    // `accu_truth_discovery`'s signature simple.
    let mut sources: Vec<usize> = claims
        .iter()
        .flat_map(|c| c.iter().map(|claim| claim.source))
        .collect();
    sources.sort_unstable();
    sources.dedup();
    if sources.is_empty() {
        return Vec::new();
    }
    let resolutions = accu_truth_discovery(claims, config);
    // Accuracy of a source = fraction of entities where its claim matches the
    // chosen value (the interpretable summary; the internal fixed-point value
    // is monotone in this).
    sources
        .iter()
        .map(|&s| {
            let mut agree = 0usize;
            let mut total = 0usize;
            for (e, entity_claims) in claims.iter().enumerate() {
                for claim in entity_claims.iter().filter(|c| c.source == s) {
                    total += 1;
                    if resolutions[e].value.as_deref() == Some(claim.value.as_str()) {
                        agree += 1;
                    }
                }
            }
            let acc = if total == 0 {
                0.0
            } else {
                agree as f64 / total as f64
            };
            (s, acc)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claim(value: &str, source: usize) -> Claim {
        Claim {
            value: value.to_string(),
            source,
        }
    }

    #[test]
    fn weighted_voting_follows_the_weights() {
        let claims = vec![claim("a", 0), claim("b", 1), claim("b", 2)];
        let equal = weighted_voting(&claims, &HashMap::new());
        assert_eq!(equal.value.as_deref(), Some("b"));
        let mut weights = HashMap::new();
        weights.insert(0usize, 5.0);
        let skewed = weighted_voting(&claims, &weights);
        assert_eq!(skewed.value.as_deref(), Some("a"));
        assert!(skewed.confidence > 0.5);
    }

    #[test]
    fn weighted_voting_ties_break_lexicographically() {
        let claims = vec![claim("b", 0), claim("a", 1)];
        let r = weighted_voting(&claims, &HashMap::new());
        assert_eq!(r.value.as_deref(), Some("a"));
        assert!((r.confidence - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_voting_empty_and_zero_weight() {
        assert_eq!(weighted_voting(&[], &HashMap::new()).value, None);
        let mut weights = HashMap::new();
        weights.insert(0usize, 0.0);
        weights.insert(1usize, 0.0);
        let claims = vec![claim("a", 0), claim("b", 1)];
        let r = weighted_voting(&claims, &weights);
        assert_eq!(r.value, None, "all-zero weights cannot elect a value");
    }

    #[test]
    fn accu_prefers_values_from_sources_that_are_usually_right() {
        // Sources 0-2 agree on entities 0-3; source 9 always disagrees. On the
        // contested entity 4 (one good source vs two copies of the bad value
        // from unknown-quality sources), the accurate source should win.
        let claims = vec![
            vec![claim("x", 0), claim("x", 1), claim("x", 2), claim("y", 9)],
            vec![claim("u", 0), claim("u", 1), claim("u", 2), claim("w", 9)],
            vec![claim("p", 0), claim("p", 1), claim("p", 2), claim("q", 9)],
            vec![claim("m", 0), claim("m", 1), claim("m", 2), claim("n", 9)],
            vec![claim("good", 0), claim("bad", 9), claim("bad", 9)],
        ];
        let res = accu_truth_discovery(&claims, &AccuConfig::default());
        assert_eq!(res[0].value.as_deref(), Some("x"));
        assert_eq!(res[4].value.as_deref(), Some("good"), "{res:?}");
        let accuracies = accu_source_accuracies(&claims, &AccuConfig::default());
        let acc_of = |s: usize| accuracies.iter().find(|(id, _)| *id == s).unwrap().1;
        assert!(acc_of(0) > acc_of(9));
    }

    #[test]
    fn accu_handles_empty_entities_and_singleton_claims() {
        let claims = vec![vec![], vec![claim("only", 3)]];
        let res = accu_truth_discovery(&claims, &AccuConfig::default());
        assert_eq!(res[0].value, None);
        assert_eq!(res[1].value.as_deref(), Some("only"));
        assert!(res[1].confidence > 0.99);
    }

    #[test]
    fn accu_is_deterministic() {
        let claims = vec![vec![claim("b", 1), claim("a", 2)]];
        let r1 = accu_truth_discovery(&claims, &AccuConfig::default());
        let r2 = accu_truth_discovery(&claims, &AccuConfig::default());
        assert_eq!(r1, r2);
        assert_eq!(
            r1[0].value.as_deref(),
            Some("a"),
            "exact ties break lexicographically"
        );
    }

    #[test]
    fn accu_confidences_are_probabilities() {
        let claims = vec![
            vec![claim("a", 0), claim("a", 1), claim("b", 2)],
            vec![claim("c", 0), claim("d", 1)],
        ];
        for r in accu_truth_discovery(&claims, &AccuConfig::default()) {
            assert!((0.0..=1.0).contains(&r.confidence), "{r:?}");
        }
    }

    #[test]
    fn accu_source_accuracies_empty_input() {
        assert!(accu_source_accuracies(&[], &AccuConfig::default()).is_empty());
    }

    #[test]
    fn degenerate_accuracy_configuration_is_clamped() {
        let claims = vec![vec![claim("a", 0), claim("b", 1)]];
        let config = AccuConfig {
            initial_accuracy: 1.5,
            ..AccuConfig::default()
        };
        // Must not panic or produce NaN.
        let res = accu_truth_discovery(&claims, &config);
        assert!(res[0].confidence.is_finite());
    }
}
