//! Property-based tests for the similarity measures and tokenizers: metric
//! axioms (where they hold), bounds, and symmetry for arbitrary inputs.

use ec_resolution::{
    damerau_levenshtein, jaccard, jaro, jaro_winkler, levenshtein, normalized_levenshtein,
    qgram_cosine, qgrams, words, SimilarityMeasure,
};
use proptest::prelude::*;

fn arb_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9 ,.()\\-']{0,20}").unwrap()
}

proptest! {
    #[test]
    fn levenshtein_is_a_metric(a in arb_string(), b in arb_string(), c in arb_string()) {
        // Identity of indiscernibles.
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b) == 0, a == b);
        // Symmetry.
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        // Triangle inequality.
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // Bounded by the longer length.
        prop_assert!(levenshtein(&a, &b) <= a.chars().count().max(b.chars().count()));
    }

    #[test]
    fn damerau_is_symmetric_and_bounded_by_levenshtein(a in arb_string(), b in arb_string()) {
        prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
        prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
        prop_assert_eq!(damerau_levenshtein(&a, &a), 0);
    }

    #[test]
    fn similarity_scores_are_bounded_and_symmetric(a in arb_string(), b in arb_string()) {
        for measure in [
            SimilarityMeasure::Levenshtein,
            SimilarityMeasure::DamerauLevenshtein,
            SimilarityMeasure::Jaro,
            SimilarityMeasure::JaroWinkler,
            SimilarityMeasure::Jaccard,
            SimilarityMeasure::QgramCosine(2),
            SimilarityMeasure::QgramCosine(3),
        ] {
            let ab = measure.score(&a, &b);
            let ba = measure.score(&b, &a);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&ab), "{measure:?} out of range: {ab}");
            prop_assert!((ab - ba).abs() < 1e-9, "{measure:?} not symmetric: {ab} vs {ba}");
            let aa = measure.score(&a, &a);
            prop_assert!((aa - 1.0).abs() < 1e-9, "{measure:?} self-similarity {aa}");
        }
    }

    #[test]
    fn normalized_levenshtein_agrees_with_raw_distance(a in arb_string(), b in arb_string()) {
        let max_len = a.chars().count().max(b.chars().count());
        let expected = if max_len == 0 {
            1.0
        } else {
            1.0 - levenshtein(&a, &b) as f64 / max_len as f64
        };
        prop_assert!((normalized_levenshtein(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn jaro_family_bounds(a in arb_string(), b in arb_string()) {
        let j = jaro(&a, &b);
        let jw = jaro_winkler(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&j));
        prop_assert!(jw + 1e-12 >= j, "winkler must never decrease jaro");
        prop_assert!(jw <= 1.0 + 1e-9);
    }

    #[test]
    fn jaccard_and_cosine_token_invariance(a in arb_string()) {
        // A string is fully similar to itself with extra surrounding spaces.
        let padded = format!("  {a}  ");
        prop_assert!((jaccard(&a, &padded) - 1.0).abs() < 1e-9);
        prop_assert!((qgram_cosine(&a, &padded, 2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn words_are_lowercase_alphanumeric(s in arb_string()) {
        for token in words(&s) {
            prop_assert!(!token.is_empty());
            prop_assert!(token.chars().all(|c| c.is_alphanumeric()));
            prop_assert!(!token.chars().any(|c| c.is_ascii_uppercase()));
        }
    }

    #[test]
    fn qgram_count_matches_padded_length(s in arb_string(), q in 1usize..5) {
        let grams = qgrams(&s, q);
        let norm_len = ec_resolution::normalize(&s).chars().count();
        if norm_len == 0 {
            prop_assert!(grams.is_empty());
        } else if q == 1 {
            prop_assert_eq!(grams.len(), norm_len);
        } else {
            prop_assert_eq!(grams.len(), norm_len + q - 1);
        }
        for g in &grams {
            prop_assert_eq!(g.chars().count(), q);
        }
    }
}
