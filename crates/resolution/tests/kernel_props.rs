//! Differential property tests: the rewritten bit-parallel kernels in
//! [`ec_resolution::similarity`] against the frozen textbook implementations
//! in [`ec_resolution::reference`].
//!
//! The rewrite's contract is *bitwise identity*, not approximate agreement:
//! every distance must be equal as `usize` and every similarity equal as the
//! exact `f64` bit pattern (`to_bits`), across ASCII, multi-byte Unicode,
//! empty strings, and inputs past the 64-character single-word Myers limit.
//! The threshold-aware entry point must abandon only when the exact score is
//! provably below the requested threshold.

use ec_resolution::prelude::*;
use ec_resolution::{reference, EARLY_ABANDON_MARGIN};
use proptest::prelude::*;

/// Every measure the matcher can be configured with.
const MEASURES: [SimilarityMeasure; 8] = [
    SimilarityMeasure::Levenshtein,
    SimilarityMeasure::DamerauLevenshtein,
    SimilarityMeasure::Jaro,
    SimilarityMeasure::JaroWinkler,
    SimilarityMeasure::Jaccard,
    SimilarityMeasure::QgramCosine(1),
    SimilarityMeasure::QgramCosine(2),
    SimilarityMeasure::QgramCosine(3),
];

/// Short ASCII strings, empty included.
fn arb_ascii() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9 ,.()\\-']{0,24}").unwrap()
}

/// ASCII strings long enough to exercise the blocked (multi-word) Myers
/// kernel, whose single-`u64` fast path stops at 64 characters.
fn arb_long_ascii() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9 ]{60,100}").unwrap()
}

/// Strings over a mixed alphabet of multi-byte code points (two-, three- and
/// four-byte UTF-8) plus a few ASCII characters, so the Unicode fallback and
/// the char/byte boundary logic are both exercised.
fn arb_unicode() -> impl Strategy<Value = String> {
    const ALPHABET: [char; 12] = [
        'α', 'β', 'γ', 'é', 'ü', 'ß', '中', '文', '字', '🦀', ' ', 'a',
    ];
    proptest::collection::vec(0usize..ALPHABET.len(), 0..20)
        .prop_map(|ixs| ixs.into_iter().map(|i| ALPHABET[i]).collect())
}

/// Asserts bitwise `f64` equality with a readable failure message.
macro_rules! assert_bits_eq {
    ($new:expr, $old:expr, $($ctx:tt)*) => {{
        let (n, o): (f64, f64) = ($new, $old);
        prop_assert!(
            n.to_bits() == o.to_bits(),
            "{}: new {} vs reference {}",
            format_args!($($ctx)*),
            n,
            o
        );
    }};
}

/// The shared body: every kernel and every measure must agree bitwise with
/// its reference on the pair `(a, b)` — and on the swapped pair, so symmetry
/// of the new kernels is checked against symmetry of the old.
fn check_pair(a: &str, b: &str) -> Result<(), String> {
    prop_assert_eq!(
        ec_resolution::levenshtein(a, b),
        reference::levenshtein(a, b)
    );
    prop_assert_eq!(
        ec_resolution::damerau_levenshtein(a, b),
        reference::damerau_levenshtein(a, b)
    );
    assert_bits_eq!(
        ec_resolution::normalized_levenshtein(a, b),
        reference::normalized_levenshtein(a, b),
        "normalized_levenshtein({a:?}, {b:?})"
    );
    assert_bits_eq!(
        ec_resolution::jaro(a, b),
        reference::jaro(a, b),
        "jaro({a:?}, {b:?})"
    );
    assert_bits_eq!(
        ec_resolution::jaro_winkler(a, b),
        reference::jaro_winkler(a, b),
        "jaro_winkler({a:?}, {b:?})"
    );
    assert_bits_eq!(
        ec_resolution::jaccard(a, b),
        reference::jaccard(a, b),
        "jaccard({a:?}, {b:?})"
    );
    for q in 1..=3 {
        assert_bits_eq!(
            ec_resolution::qgram_cosine(a, b, q),
            reference::qgram_cosine(a, b, q),
            "qgram_cosine({a:?}, {b:?}, {q})"
        );
    }
    for measure in MEASURES {
        assert_bits_eq!(
            measure.score(a, b),
            reference::score(measure, a, b),
            "{measure:?}.score({a:?}, {b:?})"
        );
        assert_bits_eq!(
            measure.score(b, a),
            reference::score(measure, b, a),
            "{measure:?}.score({b:?}, {a:?})"
        );
    }
    Ok(())
}

/// `score_at_least` must return the bitwise-exact score or prove the score
/// is below the threshold; it must never abandon a pair the exact kernel
/// would have accepted.
fn check_early_abandon(a: &str, b: &str) -> Result<(), String> {
    for measure in MEASURES {
        let exact = measure.score(a, b);
        for needed in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
            match measure.score_at_least(a, b, needed) {
                Some(got) => assert_bits_eq!(
                    got,
                    exact,
                    "{measure:?}.score_at_least({a:?}, {b:?}, {needed})"
                ),
                None => prop_assert!(
                    exact < needed - EARLY_ABANDON_MARGIN,
                    "{measure:?} abandoned ({a:?}, {b:?}) at {needed} but exact is {exact}"
                ),
            }
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn ascii_kernels_match_reference(a in arb_ascii(), b in arb_ascii()) {
        check_pair(&a, &b)?;
    }

    #[test]
    fn long_ascii_kernels_match_reference(a in arb_long_ascii(), b in arb_long_ascii()) {
        check_pair(&a, &b)?;
    }

    #[test]
    fn mixed_length_kernels_match_reference(a in arb_ascii(), b in arb_long_ascii()) {
        // One side short, one past the 64-char block boundary.
        check_pair(&a, &b)?;
    }

    #[test]
    fn unicode_kernels_match_reference(a in arb_unicode(), b in arb_unicode()) {
        check_pair(&a, &b)?;
    }

    #[test]
    fn ascii_unicode_cross_kernels_match_reference(a in arb_ascii(), b in arb_unicode()) {
        // Mixed pairs take the Unicode fallback; still must match bitwise.
        check_pair(&a, &b)?;
    }

    #[test]
    fn early_abandon_agrees_with_exact_ascii(a in arb_ascii(), b in arb_ascii()) {
        check_early_abandon(&a, &b)?;
    }

    #[test]
    fn early_abandon_agrees_with_exact_unicode(a in arb_unicode(), b in arb_unicode()) {
        check_early_abandon(&a, &b)?;
    }

    #[test]
    fn early_abandon_agrees_with_exact_skewed_lengths(
        a in arb_ascii(),
        b in arb_long_ascii(),
    ) {
        // Length-skewed pairs are exactly where the |Δlen| bounds trigger.
        check_early_abandon(&a, &b)?;
    }

    #[test]
    fn score_pair_is_bitwise_symmetric(a in arb_ascii(), b in arb_unicode(), c in arb_ascii()) {
        let resolver = Resolver::new(ResolverConfig::default());
        let r1 = RawRecord::new(0, [a.clone(), c.clone()]);
        let r2 = RawRecord::new(1, [b.clone(), a.clone()]);
        let ab = resolver.score_pair(&r1, &r2);
        let ba = resolver.score_pair(&r2, &r1);
        prop_assert!(
            ab.to_bits() == ba.to_bits(),
            "score_pair not symmetric: {} vs {}",
            ab,
            ba
        );
    }
}
