//! Candidate-pair generation (blocking).
//!
//! Comparing every pair of records is quadratic and dominates resolution cost
//! on anything beyond toy inputs. Blocking cheaply produces a superset of the
//! truly matching pairs; only those candidates are scored by the matcher.
//! Two standard schemes are provided:
//!
//! * **token blocking** — records sharing at least one word token in the
//!   blocking column(s) become a candidate pair;
//! * **sorted neighborhood** — records are sorted by a blocking key and every
//!   pair within a sliding window becomes a candidate.

use crate::tokenize::{normalize_into, words_into, TokenBuf};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of candidate-pair generation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockingConfig {
    /// Which columns contribute blocking tokens / keys. Empty means all.
    pub columns: Vec<usize>,
    /// Blocks larger than this are skipped by token blocking (they would
    /// generate a quadratic number of mostly-useless candidates; very frequent
    /// tokens such as "the" carry little signal).
    pub max_block_size: usize,
    /// Window size for sorted-neighborhood blocking.
    pub window: usize,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        BlockingConfig {
            columns: Vec::new(),
            max_block_size: 200,
            window: 8,
        }
    }
}

pub(crate) fn blocking_columns(config: &BlockingConfig, num_columns: usize) -> Vec<usize> {
    if config.columns.is_empty() {
        (0..num_columns).collect()
    } else {
        config
            .columns
            .iter()
            .copied()
            .filter(|&c| c < num_columns)
            .collect()
    }
}

/// Token blocking: every pair of records that share at least one word token in
/// a blocking column becomes a candidate. Pairs are returned deduplicated,
/// ordered, and with `a < b`.
///
/// `records[i]` is anything that exposes the field slice of record `i` —
/// `Vec<String>` or a borrowed [`crate::matcher::RawRecord`] — so callers
/// never have to clone fields just to run blocking. Tokenization goes through
/// one reused [`TokenBuf`] (distinct tokens per record, no per-token
/// allocation).
pub fn token_blocking_pairs<R: AsRef<[String]>>(
    records: &[R],
    config: &BlockingConfig,
) -> Vec<(usize, usize)> {
    if records.is_empty() {
        return Vec::new();
    }
    let cols = blocking_columns(config, records[0].as_ref().len());
    let mut blocks: HashMap<String, Vec<usize>> = HashMap::new();
    let mut buf = TokenBuf::new();
    for (id, record) in records.iter().enumerate() {
        let fields = record.as_ref();
        buf.clear();
        for &col in &cols {
            words_into(&fields[col], &mut buf);
        }
        let distinct = buf.sort_dedup_tokens();
        for i in 0..distinct {
            let token = buf.token(i);
            if let Some(ids) = blocks.get_mut(token) {
                ids.push(id);
            } else {
                blocks.insert(token.to_string(), vec![id]);
            }
        }
    }
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for ids in blocks.values() {
        if ids.len() < 2 || ids.len() > config.max_block_size {
            continue;
        }
        for (i, &a) in ids.iter().enumerate() {
            for &b in ids.iter().skip(i + 1) {
                pairs.push((a.min(b), a.max(b)));
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Sorted-neighborhood blocking: records are sorted by the concatenation of
/// their normalized blocking-column values, and every pair within a sliding
/// window of size `config.window` becomes a candidate. Pairs are returned
/// deduplicated, ordered, and with `a < b`.
pub fn sorted_neighborhood_pairs<R: AsRef<[String]>>(
    records: &[R],
    config: &BlockingConfig,
) -> Vec<(usize, usize)> {
    if records.len() < 2 || config.window < 2 {
        return Vec::new();
    }
    let cols = blocking_columns(config, records[0].as_ref().len());
    let mut scratch = String::new();
    let mut keyed: Vec<(String, usize)> = records
        .iter()
        .enumerate()
        .map(|(id, record)| {
            let fields = record.as_ref();
            let mut key = String::new();
            for (i, &c) in cols.iter().enumerate() {
                if i > 0 {
                    key.push('\u{1}');
                }
                normalize_into(&fields[c], &mut scratch);
                key.push_str(&scratch);
            }
            (key, id)
        })
        .collect();
    keyed.sort();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (i, (_, a)) in keyed.iter().enumerate() {
        for (_, b) in keyed.iter().skip(i + 1).take(config.window - 1) {
            pairs.push((*a.min(b), *a.max(b)));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<Vec<String>> {
        vec![
            vec!["Mary Lee".into(), "9 St, 02141 Wisconsin".into()],
            vec!["M. Lee".into(), "9th St, 02141 WI".into()],
            vec!["Lee, Mary".into(), "9 Street, 02141 WI".into()],
            vec!["James Smith".into(), "3rd E Ave, 33990 California".into()],
            vec!["Smith, James".into(), "5th St, 22701 California".into()],
            vec!["Unrelated Person".into(), "1 Nowhere Rd".into()],
        ]
    }

    #[test]
    fn token_blocking_links_records_sharing_tokens() {
        let pairs = token_blocking_pairs(&records(), &BlockingConfig::default());
        // The three Lee records all share the "lee" token.
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(0, 2)));
        assert!(pairs.contains(&(1, 2)));
        // The Smith records share "smith" and "california".
        assert!(pairs.contains(&(3, 4)));
        // The unrelated record shares no token with the Lees.
        assert!(!pairs.contains(&(0, 5)));
        // Output is sorted and deduplicated.
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pairs, sorted);
    }

    #[test]
    fn token_blocking_respects_column_selection() {
        let config = BlockingConfig {
            columns: vec![0],
            ..BlockingConfig::default()
        };
        let pairs = token_blocking_pairs(&records(), &config);
        // Columns restricted to the name: the Lee/Smith cross pairs that only
        // share address tokens ("st", "02141") disappear for record 4 vs 0.
        assert!(pairs.contains(&(0, 2)));
        assert!(
            !pairs.contains(&(1, 4)),
            "only shares 'st' in the address column"
        );
    }

    #[test]
    fn oversized_blocks_are_skipped() {
        let many: Vec<Vec<String>> = (0..50).map(|i| vec![format!("common token {i}")]).collect();
        let config = BlockingConfig {
            max_block_size: 10,
            ..BlockingConfig::default()
        };
        let pairs = token_blocking_pairs(&many, &config);
        // "common" and "token" appear in all 50 records and are skipped; the
        // only remaining shared tokens are the unique numbers, so no pairs.
        assert!(pairs.is_empty());
    }

    #[test]
    fn token_blocking_empty_input() {
        assert!(token_blocking_pairs::<Vec<String>>(&[], &BlockingConfig::default()).is_empty());
    }

    #[test]
    fn sorted_neighborhood_links_nearby_keys() {
        let pairs = sorted_neighborhood_pairs(&records(), &BlockingConfig::default());
        assert!(!pairs.is_empty());
        for &(a, b) in &pairs {
            assert!(a < b);
        }
    }

    #[test]
    fn sorted_neighborhood_window_bounds_candidates() {
        let recs = records();
        let narrow = sorted_neighborhood_pairs(
            &recs,
            &BlockingConfig {
                window: 2,
                ..Default::default()
            },
        );
        let wide = sorted_neighborhood_pairs(
            &recs,
            &BlockingConfig {
                window: 6,
                ..Default::default()
            },
        );
        assert!(narrow.len() <= wide.len());
        // With a window covering all records every pair is a candidate.
        assert_eq!(wide.len(), recs.len() * (recs.len() - 1) / 2);
    }

    #[test]
    fn sorted_neighborhood_degenerate_inputs() {
        assert!(
            sorted_neighborhood_pairs::<Vec<String>>(&[], &BlockingConfig::default()).is_empty()
        );
        let one = vec![vec!["a".to_string()]];
        assert!(sorted_neighborhood_pairs(&one, &BlockingConfig::default()).is_empty());
        let cfg = BlockingConfig {
            window: 1,
            ..Default::default()
        };
        assert!(sorted_neighborhood_pairs(&records(), &cfg).is_empty());
    }
}
