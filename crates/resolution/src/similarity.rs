//! String similarity measures used for record matching — production kernels.
//!
//! Every measure is normalized to `[0, 1]` where `1.0` means identical. The
//! edit-distance family additionally exposes the raw distances, which the
//! candidate-replacement alignment in `ec-replace` and the tests reuse.
//!
//! # Kernel design
//!
//! Pairwise scoring is the front door of the whole pipeline — every record
//! entering `resolve`, `pipeline`, `/ingest` or the delta resolver pays it —
//! so these kernels are written to be **allocation-free on the hot path** and
//! **bitwise identical** to the textbook implementations they replaced (kept
//! verbatim in [`crate::reference`] and pinned by the differential proptests
//! in `tests/kernel_props.rs`):
//!
//! * **ASCII byte-slice fast path.** When both inputs are ASCII the kernels
//!   work directly on `&[u8]` — no `Vec<char>` collection, and byte length
//!   *is* character count. Non-ASCII inputs fall back to `char` buffers
//!   borrowed from a per-thread scratch arena (filled, never reallocated in
//!   steady state).
//! * **Myers bit-parallel Levenshtein.** ASCII edit distance runs the Myers
//!   (1999) bit-vector algorithm: one `u64` word when the (shorter,
//!   common-affix-trimmed) pattern is ≤ 64 bytes, Hyyrö's blocked variant
//!   beyond. Common prefixes and suffixes are trimmed first — they never
//!   change the distance and typical variant pairs share long affixes.
//! * **Rolling-row Damerau.** The restricted Damerau–Levenshtein keeps three
//!   rolling rows instead of the full `(n+1)×(m+1)` matrix.
//! * **Scratch-buffer Jaro.** Match flags and the matched-character list are
//!   reused scratch; transpositions are counted with a single walk over the
//!   flags instead of materializing the second matched vector.
//! * **Sorted-slice token kernels.** Jaccard and q-gram cosine tokenize into
//!   reusable [`TokenBuf`]/gram arenas and intersect *sorted spans* by
//!   merge-join. All intermediate sums are integer-valued `f64`s (exactly
//!   representable), so the results equal the old hash-map implementations to
//!   the last bit.
//!
//! Per-thread scratch also counts kernel invocations by path; the matcher
//! drains them into the `ec_resolution_kernel_calls_total{path=…}` metric via
//! [`take_kernel_path_counts`].
//!
//! # Threshold-aware scoring
//!
//! [`SimilarityMeasure::score_at_least`] is the early-abandon entry point:
//! given the minimum score `needed` for the pair to still reach the match
//! threshold, it first evaluates a cheap per-measure upper bound — the
//! length-difference bound for the edit family, the matched-character bound
//! for Jaro, the distinct-token-count ratio for Jaccard — and skips the
//! expensive kernel entirely when even the bound cannot reach `needed`.
//! Abandonment is *sound by margin*: a measure is only skipped when its upper
//! bound is below `needed` by more than [`EARLY_ABANDON_MARGIN`], which
//! dwarfs any accumulated `f64` rounding, so an abandoned pair provably
//! scores below the threshold and decisions always agree with exact scoring.

use crate::tokenize::{normalize_into, words_into, TokenBuf};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Safety margin for early-abandon comparisons: a kernel is only skipped when
/// its upper bound misses the required score by more than this. The margin is
/// orders of magnitude above any `f64` rounding the bound arithmetic can
/// accumulate (~1e-15), so abandoned pairs are provably sub-threshold, while
/// near-threshold pairs simply fall through to exact scoring.
pub const EARLY_ABANDON_MARGIN: f64 = 1e-9;

/// Sentinel "no bound" for the internal bounded kernels.
const NO_BOUND: f64 = f64::NEG_INFINITY;

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Per-thread reusable working memory for every kernel. All buffers grow to
/// the high-water mark of the strings scored on this thread and are then
/// reused allocation-free.
struct Scratch {
    /// Unicode fallback: the two inputs as chars.
    ca: Vec<char>,
    cb: Vec<char>,
    /// Myers single-word pattern bitmasks, indexed by byte (always len 256;
    /// dirtied entries are re-zeroed after each call).
    peq: Vec<u64>,
    /// Blocked Myers pattern bitmasks (`byte * words + word` layout).
    peq_blocks: Vec<u64>,
    /// Blocked Myers vertical delta vectors.
    pv: Vec<u64>,
    mv: Vec<u64>,
    /// Dynamic-program rows (Levenshtein fallback / Damerau).
    row_prev2: Vec<usize>,
    row_prev: Vec<usize>,
    row_cur: Vec<usize>,
    /// Jaro match flags over `b` and matched characters of `a` in order.
    used: Vec<bool>,
    mat_u8: Vec<u8>,
    mat_char: Vec<char>,
    /// Token buffers for Jaccard.
    ta: TokenBuf,
    tb: TokenBuf,
    /// Normalized inputs for q-gram cosine.
    na: String,
    nb: String,
    /// Padded gram arenas (ASCII bytes / Unicode chars).
    gpa: Vec<u8>,
    gpb: Vec<u8>,
    gca: Vec<char>,
    gcb: Vec<char>,
    /// Gram sort indices and (gram-start, count) runs.
    idx: Vec<u32>,
    runa: Vec<(u32, u32)>,
    runb: Vec<(u32, u32)>,
    /// Kernel-path counters drained by [`take_kernel_path_counts`].
    ascii_calls: u64,
    unicode_calls: u64,
}

impl Scratch {
    fn new() -> Self {
        Scratch {
            ca: Vec::new(),
            cb: Vec::new(),
            peq: vec![0u64; 256],
            peq_blocks: Vec::new(),
            pv: Vec::new(),
            mv: Vec::new(),
            row_prev2: Vec::new(),
            row_prev: Vec::new(),
            row_cur: Vec::new(),
            used: Vec::new(),
            mat_u8: Vec::new(),
            mat_char: Vec::new(),
            ta: TokenBuf::new(),
            tb: TokenBuf::new(),
            na: String::new(),
            nb: String::new(),
            gpa: Vec::new(),
            gpb: Vec::new(),
            gca: Vec::new(),
            gcb: Vec::new(),
            idx: Vec::new(),
            runa: Vec::new(),
            runb: Vec::new(),
            ascii_calls: 0,
            unicode_calls: 0,
        }
    }
}

/// Drains this thread's kernel-path counters: `(ascii_calls, unicode_calls)`
/// since the last drain. The matcher flushes these into the
/// `ec_resolution_kernel_calls_total` metric after each scoring chunk so the
/// kernels themselves never touch an atomic.
pub fn take_kernel_path_counts() -> (u64, u64) {
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        (
            std::mem::take(&mut s.ascii_calls),
            std::mem::take(&mut s.unicode_calls),
        )
    })
}

/// Fills `buf` with the chars of `s`, reusing the allocation.
fn fill_chars(buf: &mut Vec<char>, s: &str) {
    buf.clear();
    buf.extend(s.chars());
}

/// Trims the common prefix and suffix of two sequences — neither changes the
/// Levenshtein distance, and variant strings typically share long affixes.
fn trim_common<'x, T: PartialEq>(a: &'x [T], b: &'x [T]) -> (&'x [T], &'x [T]) {
    let prefix = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    let (a, b) = (&a[prefix..], &b[prefix..]);
    let suffix = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    (&a[..a.len() - suffix], &b[..b.len() - suffix])
}

/// Myers (1999) single-word bit-parallel Levenshtein: `pat` is the pattern
/// (`1 ≤ |pat| ≤ 64`), `txt` the text. `peq` is the 256-entry scratch mask
/// table, zeroed on entry and re-zeroed before returning.
fn myers_64(peq: &mut [u64], pat: &[u8], txt: &[u8]) -> usize {
    debug_assert!(!pat.is_empty() && pat.len() <= 64);
    for (i, &c) in pat.iter().enumerate() {
        peq[c as usize] |= 1u64 << i;
    }
    let m = pat.len();
    let last = 1u64 << (m - 1);
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m;
    for &c in txt {
        let eq = peq[c as usize];
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let ph = mv | !(xh | pv);
        let mh = pv & xh;
        if ph & last != 0 {
            score += 1;
        }
        if mh & last != 0 {
            score -= 1;
        }
        let ph = (ph << 1) | 1;
        pv = (mh << 1) | !(xv | ph);
        mv = ph & xv;
    }
    for &c in pat {
        peq[c as usize] = 0;
    }
    score
}

/// Hyyrö's blocked Myers for patterns longer than 64 bytes: the pattern is
/// split into ⌈m/64⌉ words and the horizontal delta is carried across blocks
/// per text character. `peq_blocks` uses a `byte * words + word` layout and
/// only the rows dirtied by the pattern are re-zeroed afterwards.
fn myers_blocked(
    peq_blocks: &mut Vec<u64>,
    pv: &mut Vec<u64>,
    mv: &mut Vec<u64>,
    pat: &[u8],
    txt: &[u8],
) -> usize {
    let m = pat.len();
    let words = m.div_ceil(64);
    if peq_blocks.len() < 256 * words {
        peq_blocks.resize(256 * words, 0);
    }
    for (i, &c) in pat.iter().enumerate() {
        peq_blocks[c as usize * words + i / 64] |= 1u64 << (i % 64);
    }
    pv.clear();
    pv.resize(words, !0u64);
    mv.clear();
    mv.resize(words, 0);
    let mut score = m;
    let last = 1u64 << ((m - 1) % 64);
    for &c in txt {
        let row = c as usize * words;
        let mut hin: i32 = 1;
        for j in 0..words {
            let hb = if j + 1 == words { last } else { 1u64 << 63 };
            let mut eq = peq_blocks[row + j];
            if hin < 0 {
                eq |= 1;
            }
            let pvj = pv[j];
            let mvj = mv[j];
            let xv = eq | mvj;
            let xh = (((eq & pvj).wrapping_add(pvj)) ^ pvj) | eq;
            let ph = mvj | !(xh | pvj);
            let mh = pvj & xh;
            let mut hout = 0i32;
            if ph & hb != 0 {
                hout += 1;
            }
            if mh & hb != 0 {
                hout -= 1;
            }
            let ph = (ph << 1) | u64::from(hin > 0);
            pv[j] = ((mh << 1) | u64::from(hin < 0)) | !(xv | ph);
            mv[j] = ph & xv;
            if j + 1 == words {
                score = (score as i64 + i64::from(hout)) as usize;
            }
            hin = hout;
        }
    }
    for &c in pat {
        let row = c as usize * words;
        for w in 0..words {
            peq_blocks[row + w] = 0;
        }
    }
    score
}

/// ASCII Levenshtein: affix trim, then single-word or blocked Myers with the
/// shorter side as the pattern.
fn lev_ascii(s: &mut Scratch, a: &[u8], b: &[u8]) -> usize {
    let (a, b) = trim_common(a, b);
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let (pat, txt) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if pat.len() <= 64 {
        myers_64(&mut s.peq, pat, txt)
    } else {
        myers_blocked(&mut s.peq_blocks, &mut s.pv, &mut s.mv, pat, txt)
    }
}

/// The classic two-row Levenshtein program over scratch rows (Unicode
/// fallback) — same recurrence as the reference, so distances are equal by
/// construction.
fn lev_dp<T: PartialEq + Copy>(
    a: &[T],
    b: &[T],
    prev: &mut Vec<usize>,
    cur: &mut Vec<usize>,
) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let (outer, inner) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    prev.clear();
    prev.extend(0..=inner.len());
    cur.clear();
    cur.resize(inner.len() + 1, 0);
    for (i, &oc) in outer.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &ic) in inner.iter().enumerate() {
            let cost = usize::from(oc != ic);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(prev, cur);
    }
    prev[inner.len()]
}

fn lev_inner(s: &mut Scratch, a: &str, b: &str) -> usize {
    if a.is_ascii() && b.is_ascii() {
        s.ascii_calls += 1;
        lev_ascii(s, a.as_bytes(), b.as_bytes())
    } else {
        s.unicode_calls += 1;
        fill_chars(&mut s.ca, a);
        fill_chars(&mut s.cb, b);
        let (ca, cb) = trim_common(&s.ca, &s.cb);
        lev_dp(ca, cb, &mut s.row_prev, &mut s.row_cur)
    }
}

/// The Levenshtein (insert/delete/substitute) edit distance between two
/// strings, computed over Unicode scalar values. ASCII inputs run the Myers
/// bit-parallel kernel (single `u64` word up to 64 pattern bytes, blocked
/// beyond) after common-affix trimming; other inputs fall back to the two-row
/// dynamic program over reusable scratch rows.
pub fn levenshtein(a: &str, b: &str) -> usize {
    SCRATCH.with(|cell| lev_inner(&mut cell.borrow_mut(), a, b))
}

/// Rolling three-row restricted Damerau–Levenshtein (optimal string
/// alignment) — the full matrix of the reference implementation collapsed to
/// the three rows the recurrence actually reads.
fn osa_dp<T: PartialEq + Copy>(
    a: &[T],
    b: &[T],
    prev2: &mut Vec<usize>,
    prev: &mut Vec<usize>,
    cur: &mut Vec<usize>,
) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let n = b.len();
    prev.clear();
    prev.extend(0..=n);
    prev2.clear();
    prev2.resize(n + 1, 0);
    cur.clear();
    cur.resize(n + 1, 0);
    for i in 1..=a.len() {
        cur[0] = i;
        let ai = a[i - 1];
        for j in 1..=n {
            let cost = usize::from(ai != b[j - 1]);
            let mut d = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && ai == b[j - 2] && a[i - 2] == b[j - 1] {
                d = d.min(prev2[j - 2] + 1);
            }
            cur[j] = d;
        }
        std::mem::swap(prev2, prev);
        std::mem::swap(prev, cur);
    }
    prev[n]
}

fn osa_inner(s: &mut Scratch, a: &str, b: &str) -> usize {
    if a.is_ascii() && b.is_ascii() {
        s.ascii_calls += 1;
        osa_dp(
            a.as_bytes(),
            b.as_bytes(),
            &mut s.row_prev2,
            &mut s.row_prev,
            &mut s.row_cur,
        )
    } else {
        s.unicode_calls += 1;
        fill_chars(&mut s.ca, a);
        fill_chars(&mut s.cb, b);
        osa_dp(
            &s.ca,
            &s.cb,
            &mut s.row_prev2,
            &mut s.row_prev,
            &mut s.row_cur,
        )
    }
}

/// The restricted Damerau–Levenshtein distance (optimal string alignment):
/// Levenshtein plus transposition of two adjacent characters counted as one
/// edit. This is the distance the paper's Appendix A cites ([11]) as an
/// alternative alignment for fine-grained candidate generation.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    SCRATCH.with(|cell| osa_inner(&mut cell.borrow_mut(), a, b))
}

fn normalized_lev_inner(s: &mut Scratch, a: &str, b: &str) -> f64 {
    if a.is_ascii() && b.is_ascii() {
        s.ascii_calls += 1;
        let max_len = a.len().max(b.len());
        if max_len == 0 {
            return 1.0;
        }
        1.0 - lev_ascii(s, a.as_bytes(), b.as_bytes()) as f64 / max_len as f64
    } else {
        s.unicode_calls += 1;
        fill_chars(&mut s.ca, a);
        fill_chars(&mut s.cb, b);
        let max_len = s.ca.len().max(s.cb.len());
        if max_len == 0 {
            return 1.0;
        }
        let (ca, cb) = trim_common(&s.ca, &s.cb);
        1.0 - lev_dp(ca, cb, &mut s.row_prev, &mut s.row_cur) as f64 / max_len as f64
    }
}

/// Levenshtein similarity normalized by the longer string length:
/// `1 - dist / max(|a|, |b|)`. Two empty strings are identical (`1.0`).
/// Lengths and the distance are computed in one pass over each string (byte
/// length on the ASCII path, one char collection on the Unicode path).
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    SCRATCH.with(|cell| normalized_lev_inner(&mut cell.borrow_mut(), a, b))
}

fn normalized_osa_inner(s: &mut Scratch, a: &str, b: &str) -> f64 {
    if a.is_ascii() && b.is_ascii() {
        s.ascii_calls += 1;
        let max_len = a.len().max(b.len());
        if max_len == 0 {
            return 1.0;
        }
        let d = osa_dp(
            a.as_bytes(),
            b.as_bytes(),
            &mut s.row_prev2,
            &mut s.row_prev,
            &mut s.row_cur,
        );
        1.0 - d as f64 / max_len as f64
    } else {
        s.unicode_calls += 1;
        fill_chars(&mut s.ca, a);
        fill_chars(&mut s.cb, b);
        let max_len = s.ca.len().max(s.cb.len());
        if max_len == 0 {
            return 1.0;
        }
        let d = osa_dp(
            &s.ca,
            &s.cb,
            &mut s.row_prev2,
            &mut s.row_prev,
            &mut s.row_cur,
        );
        1.0 - d as f64 / max_len as f64
    }
}

/// Jaro over generic symbol slices: match flags and the matched-symbol list
/// are caller scratch; transpositions are counted by walking the flags
/// against the matched list instead of materializing `b`'s matches.
fn jaro_generic<T: PartialEq + Copy>(
    a: &[T],
    b: &[T],
    used: &mut Vec<bool>,
    matched: &mut Vec<T>,
) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    used.clear();
    used.resize(b.len(), false);
    matched.clear();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for (j, u) in used.iter_mut().enumerate().take(hi).skip(lo) {
            if !*u && b[j] == ca {
                *u = true;
                matched.push(ca);
                break;
            }
        }
    }
    let m = matched.len();
    if m == 0 {
        return 0.0;
    }
    let mut transpositions = 0usize;
    let mut k = 0usize;
    for (j, &bc) in b.iter().enumerate() {
        if used[j] {
            if bc != matched[k] {
                transpositions += 1;
            }
            k += 1;
        }
    }
    let transpositions = transpositions / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Bit-parallel Jaro for ASCII `b` of at most 64 bytes: the `peq` position
/// masks turn the per-character window scan into one AND plus a
/// trailing-zeros, and the match flags live in a single `u64`. Taking the
/// lowest available bit inside the window is exactly the generic kernel's
/// greedy first-unused scan, so matches, transpositions and the final
/// arithmetic are bit-identical to [`jaro_generic`].
fn jaro_ascii_64(a: &[u8], b: &[u8], peq: &mut [u64], matched: &mut Vec<u8>) -> f64 {
    debug_assert!(b.len() <= 64);
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    for (j, &c) in b.iter().enumerate() {
        peq[c as usize] |= 1u64 << j;
    }
    let ones = |n: usize| -> u64 {
        if n >= 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    };
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut used = 0u64;
    matched.clear();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        let avail = peq[ca as usize] & (ones(hi) ^ ones(lo)) & !used;
        if avail != 0 {
            used |= avail & avail.wrapping_neg();
            matched.push(ca);
        }
    }
    for &c in b {
        peq[c as usize] = 0;
    }
    let m = matched.len();
    if m == 0 {
        return 0.0;
    }
    let mut transpositions = 0usize;
    let mut rest = used;
    let mut k = 0usize;
    while rest != 0 {
        let j = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        if b[j] != matched[k] {
            transpositions += 1;
        }
        k += 1;
    }
    let transpositions = transpositions / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

fn jaro_inner(s: &mut Scratch, a: &str, b: &str) -> f64 {
    if a.is_ascii() && b.is_ascii() {
        s.ascii_calls += 1;
        if b.len() <= 64 {
            jaro_ascii_64(a.as_bytes(), b.as_bytes(), &mut s.peq, &mut s.mat_u8)
        } else {
            jaro_generic(a.as_bytes(), b.as_bytes(), &mut s.used, &mut s.mat_u8)
        }
    } else {
        s.unicode_calls += 1;
        fill_chars(&mut s.ca, a);
        fill_chars(&mut s.cb, b);
        jaro_generic(&s.ca, &s.cb, &mut s.used, &mut s.mat_char)
    }
}

/// The Jaro similarity between two strings, in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    SCRATCH.with(|cell| jaro_inner(&mut cell.borrow_mut(), a, b))
}

/// Shared prefix of up to four characters (the Winkler boost input).
fn winkler_prefix(a: &str, b: &str) -> usize {
    a.chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count()
}

fn jaro_winkler_inner(s: &mut Scratch, a: &str, b: &str) -> f64 {
    let j = jaro_inner(s, a, b);
    let prefix = winkler_prefix(a, b);
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// The Jaro–Winkler similarity: Jaro boosted by a shared prefix of up to four
/// characters with the standard scaling factor 0.1.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    SCRATCH.with(|cell| jaro_winkler_inner(&mut cell.borrow_mut(), a, b))
}

/// Bounded Jaccard kernel: tokenizes both sides into scratch, reduces to the
/// sorted distinct token sets, and — before the intersection merge — bails
/// with `None` when the distinct-count ratio (an upper bound on Jaccard,
/// since `|A∩B| ≤ min` and `|A∪B| ≥ max`) cannot reach `needed`.
fn jaccard_bounded_inner(s: &mut Scratch, a: &str, b: &str, needed: f64) -> Option<f64> {
    if a.is_ascii() && b.is_ascii() {
        s.ascii_calls += 1;
    } else {
        s.unicode_calls += 1;
    }
    s.ta.clear();
    words_into(a, &mut s.ta);
    s.tb.clear();
    words_into(b, &mut s.tb);
    if s.ta.is_empty() && s.tb.is_empty() {
        return Some(1.0);
    }
    let da = s.ta.sort_dedup_tokens();
    let db = s.tb.sort_dedup_tokens();
    if da == 0 || db == 0 {
        // One side tokenless: the intersection is empty, the union is not.
        return Some(0.0);
    }
    let bound = da.min(db) as f64 / da.max(db) as f64;
    if bound < needed - EARLY_ABANDON_MARGIN {
        return None;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < da && j < db {
        match s.ta.token(i).cmp(s.tb.token(j)) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = da + db - inter;
    Some(inter as f64 / union as f64)
}

/// Jaccard similarity of the word-token sets of the two strings. Empty token
/// sets on both sides are treated as identical.
pub fn jaccard(a: &str, b: &str) -> f64 {
    SCRATCH.with(|cell| {
        jaccard_bounded_inner(&mut cell.borrow_mut(), a, b, NO_BOUND)
            .expect("unbounded jaccard never abandons")
    })
}

/// Builds the `#`-padded gram arena (ASCII bytes).
fn pad_ascii(normalized: &str, q: usize, out: &mut Vec<u8>) {
    out.clear();
    out.resize(q - 1, b'#');
    out.extend_from_slice(normalized.as_bytes());
    out.resize(out.len() + q - 1, b'#');
}

/// Builds the `#`-padded gram arena (Unicode chars).
fn pad_chars(normalized: &str, q: usize, out: &mut Vec<char>) {
    out.clear();
    out.resize(q - 1, '#');
    out.extend(normalized.chars());
    out.resize(out.len() + q - 1, '#');
}

/// Sorts the q-gram start positions of `buf` by gram content and collapses
/// them into `(start, count)` runs — the sorted frequency vector without a
/// hash map.
fn gram_runs<T: Ord>(buf: &[T], q: usize, idx: &mut Vec<u32>, runs: &mut Vec<(u32, u32)>) {
    let n = buf.len() + 1 - q;
    idx.clear();
    idx.extend(0..n as u32);
    idx.sort_unstable_by(|&x, &y| {
        buf[x as usize..x as usize + q].cmp(&buf[y as usize..y as usize + q])
    });
    runs.clear();
    let mut i = 0usize;
    while i < n {
        let g = idx[i] as usize;
        let mut j = i + 1;
        while j < n && buf[idx[j] as usize..idx[j] as usize + q] == buf[g..g + q] {
            j += 1;
        }
        runs.push((g as u32, (j - i) as u32));
        i = j;
    }
}

/// Cosine from two sorted `(start, count)` run lists: merge-join dot product
/// over integer-valued `f64`s — exactly the sums the hash-map reference
/// computes, in a deterministic order.
fn cosine_from_runs<T: Ord>(
    bufa: &[T],
    bufb: &[T],
    q: usize,
    runa: &[(u32, u32)],
    runb: &[(u32, u32)],
) -> f64 {
    // -0.0 is `Iterator::sum::<f64>()`'s fold identity: with zero common
    // grams the reference's `.sum()` yields -0.0, and the final `dot / denom`
    // must reproduce that bit pattern exactly.
    let mut dot = -0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < runa.len() && j < runb.len() {
        let ga = &bufa[runa[i].0 as usize..runa[i].0 as usize + q];
        let gb = &bufb[runb[j].0 as usize..runb[j].0 as usize + q];
        match ga.cmp(gb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += f64::from(runa[i].1) * f64::from(runb[j].1);
                i += 1;
                j += 1;
            }
        }
    }
    let norm = |runs: &[(u32, u32)]| {
        runs.iter()
            .map(|&(_, c)| f64::from(c) * f64::from(c))
            .sum::<f64>()
            .sqrt()
    };
    let denom = norm(runa) * norm(runb);
    if denom == 0.0 {
        0.0
    } else {
        dot / denom
    }
}

fn qgram_inner(s: &mut Scratch, a: &str, b: &str, q: usize) -> f64 {
    let q = q.max(1);
    normalize_into(a, &mut s.na);
    normalize_into(b, &mut s.nb);
    // With padding, the gram list is empty exactly when the normalized
    // string is (for any q ≥ 1) — mirroring the reference construction.
    if s.na.is_empty() && s.nb.is_empty() {
        return 1.0;
    }
    if s.na.is_empty() || s.nb.is_empty() {
        return 0.0;
    }
    if s.na.is_ascii() && s.nb.is_ascii() {
        s.ascii_calls += 1;
        pad_ascii(&s.na, q, &mut s.gpa);
        pad_ascii(&s.nb, q, &mut s.gpb);
        gram_runs(&s.gpa, q, &mut s.idx, &mut s.runa);
        gram_runs(&s.gpb, q, &mut s.idx, &mut s.runb);
        cosine_from_runs(&s.gpa, &s.gpb, q, &s.runa, &s.runb)
    } else {
        s.unicode_calls += 1;
        pad_chars(&s.na, q, &mut s.gca);
        pad_chars(&s.nb, q, &mut s.gcb);
        gram_runs(&s.gca, q, &mut s.idx, &mut s.runa);
        gram_runs(&s.gcb, q, &mut s.idx, &mut s.runb);
        cosine_from_runs(&s.gca, &s.gcb, q, &s.runa, &s.runb)
    }
}

/// Cosine similarity of q-gram frequency vectors (default construction for
/// string similarity joins). Empty q-gram sets on both sides are identical.
pub fn qgram_cosine(a: &str, b: &str, q: usize) -> f64 {
    SCRATCH.with(|cell| qgram_inner(&mut cell.borrow_mut(), a, b, q))
}

/// Character counts of both strings: byte lengths on the ASCII path (no
/// scan), one counting pass otherwise.
fn char_lens(a: &str, b: &str) -> (usize, usize) {
    if a.is_ascii() && b.is_ascii() {
        (a.len(), b.len())
    } else {
        (a.chars().count(), b.chars().count())
    }
}

/// Upper bound on Jaro from the character counts alone: at most `min(la,lb)`
/// characters can match, so `jaro ≤ (1 + min/max + 1) / 3`.
fn jaro_upper_bound(la: usize, lb: usize) -> f64 {
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    (2.0 + la.min(lb) as f64 / la.max(lb) as f64) / 3.0
}

/// A choice of similarity measure, selectable per column in a
/// [`crate::matcher::ColumnRule`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimilarityMeasure {
    /// [`normalized_levenshtein`].
    Levenshtein,
    /// Normalized restricted Damerau–Levenshtein.
    DamerauLevenshtein,
    /// [`jaro`].
    Jaro,
    /// [`jaro_winkler`].
    JaroWinkler,
    /// [`jaccard`] over word tokens.
    Jaccard,
    /// [`qgram_cosine`] with the given `q`.
    QgramCosine(usize),
}

fn score_inner(measure: SimilarityMeasure, s: &mut Scratch, a: &str, b: &str) -> f64 {
    match measure {
        SimilarityMeasure::Levenshtein => normalized_lev_inner(s, a, b),
        SimilarityMeasure::DamerauLevenshtein => normalized_osa_inner(s, a, b),
        SimilarityMeasure::Jaro => jaro_inner(s, a, b),
        SimilarityMeasure::JaroWinkler => jaro_winkler_inner(s, a, b),
        SimilarityMeasure::Jaccard => {
            jaccard_bounded_inner(s, a, b, NO_BOUND).expect("unbounded jaccard never abandons")
        }
        SimilarityMeasure::QgramCosine(q) => qgram_inner(s, a, b, q),
    }
}

fn score_at_least_inner(
    measure: SimilarityMeasure,
    s: &mut Scratch,
    a: &str,
    b: &str,
    needed: f64,
) -> Option<f64> {
    if needed <= 0.0 {
        // Every measure is non-negative: no bound can exclude the pair.
        return Some(score_inner(measure, s, a, b));
    }
    match measure {
        SimilarityMeasure::Levenshtein | SimilarityMeasure::DamerauLevenshtein => {
            let (la, lb) = char_lens(a, b);
            let max_len = la.max(lb);
            let bound = if max_len == 0 {
                1.0
            } else {
                1.0 - la.abs_diff(lb) as f64 / max_len as f64
            };
            if bound < needed - EARLY_ABANDON_MARGIN {
                return None;
            }
            Some(score_inner(measure, s, a, b))
        }
        SimilarityMeasure::Jaro => {
            let (la, lb) = char_lens(a, b);
            if jaro_upper_bound(la, lb) < needed - EARLY_ABANDON_MARGIN {
                return None;
            }
            Some(jaro_inner(s, a, b))
        }
        SimilarityMeasure::JaroWinkler => {
            let (la, lb) = char_lens(a, b);
            let bj = jaro_upper_bound(la, lb);
            // jw(j, p) is increasing in both j and the shared prefix p.
            let bound = bj + winkler_prefix(a, b) as f64 * 0.1 * (1.0 - bj);
            if bound < needed - EARLY_ABANDON_MARGIN {
                return None;
            }
            Some(jaro_winkler_inner(s, a, b))
        }
        SimilarityMeasure::Jaccard => jaccard_bounded_inner(s, a, b, needed),
        SimilarityMeasure::QgramCosine(q) => {
            // Cheap emptiness gate: the normalized string is empty exactly
            // when the input is all whitespace, and one-sided emptiness
            // scores 0.
            let ea = a.chars().all(char::is_whitespace);
            let eb = b.chars().all(char::is_whitespace);
            if ea != eb {
                if 0.0 < needed - EARLY_ABANDON_MARGIN {
                    return None;
                }
                return Some(0.0);
            }
            Some(qgram_inner(s, a, b, q))
        }
    }
}

impl SimilarityMeasure {
    /// Evaluates the measure on two strings, returning a score in `[0, 1]`.
    pub fn score(&self, a: &str, b: &str) -> f64 {
        SCRATCH.with(|cell| score_inner(*self, &mut cell.borrow_mut(), a, b))
    }

    /// Threshold-aware scoring: returns the exact score (bitwise identical
    /// to [`SimilarityMeasure::score`]) unless a cheap per-measure upper
    /// bound proves the score cannot reach `needed`, in which case the
    /// expensive kernel is skipped and `None` is returned.
    ///
    /// `None` is only returned when the exact score is *provably* below
    /// `needed` (by more than [`EARLY_ABANDON_MARGIN`]), so callers that only
    /// compare against a threshold get decisions identical to exact scoring.
    /// Callers that need the score itself must use
    /// [`SimilarityMeasure::score`].
    pub fn score_at_least(&self, a: &str, b: &str, needed: f64) -> Option<f64> {
        SCRATCH.with(|cell| score_at_least_inner(*self, &mut cell.borrow_mut(), a, b, needed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_matches_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_long_strings_hit_the_blocked_kernel() {
        // Patterns beyond 64 bytes exercise the multi-word Myers path; the
        // affix trim must not hide it, so the strings differ at both ends.
        let a = format!("x{}y", "a".repeat(100));
        let b = format!("z{}w", "a".repeat(90));
        assert_eq!(levenshtein(&a, &b), crate::reference::levenshtein(&a, &b));
        let a = "ab".repeat(70);
        let b = "ba".repeat(70);
        assert_eq!(levenshtein(&a, &b), crate::reference::levenshtein(&a, &b));
    }

    #[test]
    fn levenshtein_unicode_falls_back_correctly() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
        assert_eq!(levenshtein("naïve", "naive"), 1);
        assert_eq!(
            levenshtein("żółć", "zolc"),
            crate::reference::levenshtein("żółć", "zolc")
        );
    }

    #[test]
    fn damerau_counts_transpositions_as_one_edit() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(damerau_levenshtein("Street", "Stret"), 1);
        assert_eq!(damerau_levenshtein("", "ab"), 2);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn damerau_is_never_larger_than_levenshtein() {
        let cases = [
            ("kitten", "sitting"),
            ("Mary Lee", "Lee, Mary"),
            ("9th", "9"),
        ];
        for (a, b) in cases {
            assert!(damerau_levenshtein(a, b) <= levenshtein(a, b), "{a} vs {b}");
        }
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let s = normalized_levenshtein("Mary Lee", "M. Lee");
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("MARTHA", "MARHTA") - 0.944444).abs() < 1e-4);
        assert!((jaro("DIXON", "DICKSONX") - 0.766667).abs() < 1e-4);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_shared_prefixes() {
        let j = jaro("MARTHA", "MARHTA");
        let jw = jaro_winkler("MARTHA", "MARHTA");
        assert!(jw > j);
        assert!((jw - 0.961111).abs() < 1e-4);
        // No shared prefix: no boost.
        assert_eq!(jaro_winkler("abc", "xbc"), jaro("abc", "xbc"));
    }

    #[test]
    fn jaccard_over_word_tokens_ignores_order_and_punctuation() {
        assert_eq!(jaccard("Mary Lee", "Lee, Mary"), 1.0);
        assert_eq!(jaccard("", ""), 1.0);
        assert_eq!(jaccard("a b", "c d"), 0.0);
        let s = jaccard("9th Street, 02141 WI", "9th St, 02141 WI");
        assert!(s > 0.4 && s < 1.0);
    }

    #[test]
    fn qgram_cosine_behaves() {
        assert_eq!(qgram_cosine("", "", 3), 1.0);
        assert_eq!(qgram_cosine("abc", "", 3), 0.0);
        assert!((qgram_cosine("abc", "abc", 2) - 1.0).abs() < 1e-12);
        let close = qgram_cosine("Avenue", "Avenu", 2);
        let far = qgram_cosine("Avenue", "Street", 2);
        assert!(close > far);
    }

    #[test]
    fn measure_enum_dispatches() {
        for m in [
            SimilarityMeasure::Levenshtein,
            SimilarityMeasure::DamerauLevenshtein,
            SimilarityMeasure::Jaro,
            SimilarityMeasure::JaroWinkler,
            SimilarityMeasure::Jaccard,
            SimilarityMeasure::QgramCosine(2),
        ] {
            assert!(
                (m.score("Mary Lee", "Mary Lee") - 1.0).abs() < 1e-12,
                "{m:?}"
            );
            let s = m.score("Mary Lee", "totally different");
            assert!((0.0..1.0).contains(&s), "{m:?} gave {s}");
        }
    }

    #[test]
    fn kernels_match_the_reference_bitwise_on_spot_checks() {
        let cases = [
            ("Mary Lee", "Lee, Mary"),
            ("9th Street, 02141 WI", "9 St, 02141 Wisconsin"),
            ("", "nonempty"),
            ("same", "same"),
            ("Ünïcode tøkens", "Unicode tokens"),
            ("日本語のテキスト", "日本語テキスト"),
        ];
        for (a, b) in cases {
            assert_eq!(levenshtein(a, b), crate::reference::levenshtein(a, b));
            assert_eq!(
                damerau_levenshtein(a, b),
                crate::reference::damerau_levenshtein(a, b)
            );
            for m in [
                SimilarityMeasure::Levenshtein,
                SimilarityMeasure::DamerauLevenshtein,
                SimilarityMeasure::Jaro,
                SimilarityMeasure::JaroWinkler,
                SimilarityMeasure::Jaccard,
                SimilarityMeasure::QgramCosine(1),
                SimilarityMeasure::QgramCosine(2),
                SimilarityMeasure::QgramCosine(3),
            ] {
                assert_eq!(
                    m.score(a, b).to_bits(),
                    crate::reference::score(m, a, b).to_bits(),
                    "{m:?} on {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn score_at_least_returns_exact_scores_or_sound_abandons() {
        let cases = [
            ("Mary Lee", "Lee, Mary"),
            ("completely", "different words here"),
            ("a", "abcdefghijklmnop"),
            ("", ""),
            ("", "x"),
        ];
        for m in [
            SimilarityMeasure::Levenshtein,
            SimilarityMeasure::DamerauLevenshtein,
            SimilarityMeasure::Jaro,
            SimilarityMeasure::JaroWinkler,
            SimilarityMeasure::Jaccard,
            SimilarityMeasure::QgramCosine(2),
        ] {
            for (a, b) in cases {
                let exact = m.score(a, b);
                for needed in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
                    match m.score_at_least(a, b, needed) {
                        Some(s) => assert_eq!(
                            s.to_bits(),
                            exact.to_bits(),
                            "{m:?} {a:?}/{b:?} needed {needed}"
                        ),
                        None => assert!(
                            exact < needed,
                            "{m:?} abandoned {a:?}/{b:?} at {needed} but exact is {exact}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn abandons_actually_happen_on_length_skewed_pairs() {
        // A 1-char vs 40-char pair can't reach 0.9 normalized Levenshtein.
        let m = SimilarityMeasure::Levenshtein;
        assert!(m.score_at_least("x", &"y".repeat(40), 0.9).is_none());
        // Token-count skew: 1 token vs 6 tokens can't reach Jaccard 0.8.
        let m = SimilarityMeasure::Jaccard;
        assert!(m.score_at_least("one", "a b c d e f", 0.8).is_none());
    }

    #[test]
    fn kernel_path_counters_track_ascii_and_unicode() {
        let _ = take_kernel_path_counts();
        let _ = levenshtein("ascii only", "ascii still");
        let _ = jaro("café", "cafe");
        let (ascii, unicode) = take_kernel_path_counts();
        assert!(ascii >= 1, "ascii path not counted");
        assert!(unicode >= 1, "unicode path not counted");
        let (a2, u2) = take_kernel_path_counts();
        assert_eq!((a2, u2), (0, 0), "drain resets");
    }
}
