//! String similarity measures used for record matching.
//!
//! Every measure is normalized to `[0, 1]` where `1.0` means identical. The
//! edit-distance family additionally exposes the raw distances, which the
//! candidate-replacement alignment in `ec-replace` and the tests reuse.

use crate::tokenize::{qgrams, words};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The Levenshtein (insert/delete/substitute) edit distance between two
/// strings, computed over Unicode scalar values with the classic two-row
/// dynamic program (`O(|a|·|b|)` time, `O(min)` space).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Keep the shorter string in the inner dimension.
    let (outer, inner) = if a.len() >= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    let mut prev: Vec<usize> = (0..=inner.len()).collect();
    let mut cur = vec![0usize; inner.len() + 1];
    for (i, &oc) in outer.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &ic) in inner.iter().enumerate() {
            let cost = usize::from(oc != ic);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[inner.len()]
}

/// The restricted Damerau–Levenshtein distance (optimal string alignment):
/// Levenshtein plus transposition of two adjacent characters counted as one
/// edit. This is the distance the paper's Appendix A cites ([11]) as an
/// alternative alignment for fine-grained candidate generation.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let cols = b.len() + 1;
    let mut dist = vec![0usize; (a.len() + 1) * cols];
    let idx = |i: usize, j: usize| i * cols + j;
    for i in 0..=a.len() {
        dist[idx(i, 0)] = i;
    }
    for j in 0..=b.len() {
        dist[idx(0, j)] = j;
    }
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut d = (dist[idx(i - 1, j)] + 1)
                .min(dist[idx(i, j - 1)] + 1)
                .min(dist[idx(i - 1, j - 1)] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                d = d.min(dist[idx(i - 2, j - 2)] + 1);
            }
            dist[idx(i, j)] = d;
        }
    }
    dist[idx(a.len(), b.len())]
}

/// Levenshtein similarity normalized by the longer string length:
/// `1 - dist / max(|a|, |b|)`. Two empty strings are identical (`1.0`).
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// The Jaro similarity between two strings, in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter(|(_, &used)| used)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// The Jaro–Winkler similarity: Jaro boosted by a shared prefix of up to four
/// characters with the standard scaling factor 0.1.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Jaccard similarity of the word-token sets of the two strings. Empty token
/// sets on both sides are treated as identical.
pub fn jaccard(a: &str, b: &str) -> f64 {
    let ta = words(a);
    let tb = words(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let sa: std::collections::HashSet<&str> = ta.iter().map(String::as_str).collect();
    let sb: std::collections::HashSet<&str> = tb.iter().map(String::as_str).collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Cosine similarity of q-gram frequency vectors (default construction for
/// string similarity joins). Empty q-gram sets on both sides are identical.
pub fn qgram_cosine(a: &str, b: &str, q: usize) -> f64 {
    let ga = qgrams(a, q);
    let gb = qgrams(b, q);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    fn count(grams: &[String]) -> HashMap<&str, f64> {
        let mut m: HashMap<&str, f64> = HashMap::new();
        for g in grams {
            *m.entry(g.as_str()).or_insert(0.0) += 1.0;
        }
        m
    }
    let ca = count(&ga);
    let cb = count(&gb);
    let dot: f64 = ca
        .iter()
        .filter_map(|(g, x)| cb.get(g).map(|y| x * y))
        .sum();
    let norm = |m: &HashMap<&str, f64>| m.values().map(|x| x * x).sum::<f64>().sqrt();
    let denom = norm(&ca) * norm(&cb);
    if denom == 0.0 {
        0.0
    } else {
        dot / denom
    }
}

/// A choice of similarity measure, selectable per column in a
/// [`crate::matcher::ColumnRule`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimilarityMeasure {
    /// [`normalized_levenshtein`].
    Levenshtein,
    /// Normalized restricted Damerau–Levenshtein.
    DamerauLevenshtein,
    /// [`jaro`].
    Jaro,
    /// [`jaro_winkler`].
    JaroWinkler,
    /// [`jaccard`] over word tokens.
    Jaccard,
    /// [`qgram_cosine`] with the given `q`.
    QgramCosine(usize),
}

impl SimilarityMeasure {
    /// Evaluates the measure on two strings, returning a score in `[0, 1]`.
    pub fn score(&self, a: &str, b: &str) -> f64 {
        match *self {
            SimilarityMeasure::Levenshtein => normalized_levenshtein(a, b),
            SimilarityMeasure::DamerauLevenshtein => {
                let max_len = a.chars().count().max(b.chars().count());
                if max_len == 0 {
                    1.0
                } else {
                    1.0 - damerau_levenshtein(a, b) as f64 / max_len as f64
                }
            }
            SimilarityMeasure::Jaro => jaro(a, b),
            SimilarityMeasure::JaroWinkler => jaro_winkler(a, b),
            SimilarityMeasure::Jaccard => jaccard(a, b),
            SimilarityMeasure::QgramCosine(q) => qgram_cosine(a, b, q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_matches_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn damerau_counts_transpositions_as_one_edit() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(damerau_levenshtein("Street", "Stret"), 1);
        assert_eq!(damerau_levenshtein("", "ab"), 2);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn damerau_is_never_larger_than_levenshtein() {
        let cases = [
            ("kitten", "sitting"),
            ("Mary Lee", "Lee, Mary"),
            ("9th", "9"),
        ];
        for (a, b) in cases {
            assert!(damerau_levenshtein(a, b) <= levenshtein(a, b), "{a} vs {b}");
        }
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let s = normalized_levenshtein("Mary Lee", "M. Lee");
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("MARTHA", "MARHTA") - 0.944444).abs() < 1e-4);
        assert!((jaro("DIXON", "DICKSONX") - 0.766667).abs() < 1e-4);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_shared_prefixes() {
        let j = jaro("MARTHA", "MARHTA");
        let jw = jaro_winkler("MARTHA", "MARHTA");
        assert!(jw > j);
        assert!((jw - 0.961111).abs() < 1e-4);
        // No shared prefix: no boost.
        assert_eq!(jaro_winkler("abc", "xbc"), jaro("abc", "xbc"));
    }

    #[test]
    fn jaccard_over_word_tokens_ignores_order_and_punctuation() {
        assert_eq!(jaccard("Mary Lee", "Lee, Mary"), 1.0);
        assert_eq!(jaccard("", ""), 1.0);
        assert_eq!(jaccard("a b", "c d"), 0.0);
        let s = jaccard("9th Street, 02141 WI", "9th St, 02141 WI");
        assert!(s > 0.4 && s < 1.0);
    }

    #[test]
    fn qgram_cosine_behaves() {
        assert_eq!(qgram_cosine("", "", 3), 1.0);
        assert_eq!(qgram_cosine("abc", "", 3), 0.0);
        assert!((qgram_cosine("abc", "abc", 2) - 1.0).abs() < 1e-12);
        let close = qgram_cosine("Avenue", "Avenu", 2);
        let far = qgram_cosine("Avenue", "Street", 2);
        assert!(close > far);
    }

    #[test]
    fn measure_enum_dispatches() {
        for m in [
            SimilarityMeasure::Levenshtein,
            SimilarityMeasure::DamerauLevenshtein,
            SimilarityMeasure::Jaro,
            SimilarityMeasure::JaroWinkler,
            SimilarityMeasure::Jaccard,
            SimilarityMeasure::QgramCosine(2),
        ] {
            assert!(
                (m.score("Mary Lee", "Mary Lee") - 1.0).abs() < 1e-12,
                "{m:?}"
            );
            let s = m.score("Mary Lee", "totally different");
            assert!((0.0..1.0).contains(&s), "{m:?} gave {s}");
        }
    }
}
