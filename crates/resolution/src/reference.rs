//! The pre-rewrite similarity kernels, kept **verbatim** as differential
//! references.
//!
//! [`crate::similarity`] was rewritten as bit-parallel, allocation-free
//! kernels (Myers Levenshtein, scratch-buffer Jaro, sorted-slice token
//! intersections). Every rewritten kernel must return **bitwise identical**
//! results to the textbook implementations it replaced — integer distances
//! equal, `f64` scores equal to the last bit — because resolution output
//! (cluster membership, `MatchDecision.score`, the delta resolver's pair
//! cache) is pinned byte-identical across PRs. This module preserves the old
//! implementations exactly as they were so that `tests/kernel_props.rs` and
//! the `resolution_rate` benchmark can compare against them, the same way the
//! CSR index rewrite kept its linear reference (`crates/index/tests/
//! csr_props.rs`).
//!
//! Nothing here is used on any production path. Do not "improve" this module:
//! its value is that it does not change.

use std::collections::HashMap;

/// The word tokenizer as the old `jaccard` consumed it (identical to
/// [`crate::tokenize::words`], duplicated so the reference is frozen even if
/// the live tokenizer evolves).
pub fn words(s: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            current.push(ch.to_ascii_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// The q-gram tokenizer as the old `qgram_cosine` consumed it (identical to
/// [`crate::tokenize::qgrams`], duplicated so the reference is frozen).
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    let q = q.max(1);
    let normalized = crate::tokenize::normalize(s);
    if normalized.is_empty() {
        return Vec::new();
    }
    let chars: Vec<char> = if q == 1 {
        normalized.chars().collect()
    } else {
        let pad = std::iter::repeat('#').take(q - 1);
        pad.clone().chain(normalized.chars()).chain(pad).collect()
    };
    if chars.len() < q {
        return Vec::new();
    }
    chars
        .windows(q)
        .map(|w| w.iter().collect::<String>())
        .collect()
}

/// The classic two-row dynamic program over `Vec<char>` collections.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Keep the shorter string in the inner dimension.
    let (outer, inner) = if a.len() >= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    let mut prev: Vec<usize> = (0..=inner.len()).collect();
    let mut cur = vec![0usize; inner.len() + 1];
    for (i, &oc) in outer.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &ic) in inner.iter().enumerate() {
            let cost = usize::from(oc != ic);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[inner.len()]
}

/// The full-matrix restricted Damerau–Levenshtein (optimal string alignment).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let cols = b.len() + 1;
    let mut dist = vec![0usize; (a.len() + 1) * cols];
    let idx = |i: usize, j: usize| i * cols + j;
    for i in 0..=a.len() {
        dist[idx(i, 0)] = i;
    }
    for j in 0..=b.len() {
        dist[idx(0, j)] = j;
    }
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut d = (dist[idx(i - 1, j)] + 1)
                .min(dist[idx(i, j - 1)] + 1)
                .min(dist[idx(i - 1, j - 1)] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                d = d.min(dist[idx(i - 2, j - 2)] + 1);
            }
            dist[idx(i, j)] = d;
        }
    }
    dist[idx(a.len(), b.len())]
}

/// The old normalized Levenshtein: walks both strings for the char counts and
/// then again inside [`levenshtein`].
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// The old normalized Damerau, exactly as `SimilarityMeasure::score`'s
/// Damerau branch computed it inline.
pub fn normalized_damerau_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        1.0
    } else {
        1.0 - damerau_levenshtein(a, b) as f64 / max_len as f64
    }
}

/// The allocating Jaro: per-call `Vec<char>` collections, a fresh `b_used`
/// flag vector, and materialized matched-character vectors on both sides.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter(|(_, &used)| used)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// The old Jaro–Winkler on top of the old [`jaro`].
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// The old hash-set Jaccard over owned word-token vectors.
pub fn jaccard(a: &str, b: &str) -> f64 {
    let ta = words(a);
    let tb = words(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let sa: std::collections::HashSet<&str> = ta.iter().map(String::as_str).collect();
    let sb: std::collections::HashSet<&str> = tb.iter().map(String::as_str).collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// The old q-gram cosine over two per-call `HashMap` frequency vectors.
pub fn qgram_cosine(a: &str, b: &str, q: usize) -> f64 {
    let ga = qgrams(a, q);
    let gb = qgrams(b, q);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    fn count(grams: &[String]) -> HashMap<&str, f64> {
        let mut m: HashMap<&str, f64> = HashMap::new();
        for g in grams {
            *m.entry(g.as_str()).or_insert(0.0) += 1.0;
        }
        m
    }
    let ca = count(&ga);
    let cb = count(&gb);
    let dot: f64 = ca
        .iter()
        .filter_map(|(g, x)| cb.get(g).map(|y| x * y))
        .sum();
    let norm = |m: &HashMap<&str, f64>| m.values().map(|x| x * x).sum::<f64>().sqrt();
    let denom = norm(&ca) * norm(&cb);
    if denom == 0.0 {
        0.0
    } else {
        dot / denom
    }
}

/// Dispatches a [`crate::similarity::SimilarityMeasure`] onto the reference
/// kernels, exactly as the old `SimilarityMeasure::score` did.
pub fn score(measure: crate::similarity::SimilarityMeasure, a: &str, b: &str) -> f64 {
    use crate::similarity::SimilarityMeasure as M;
    match measure {
        M::Levenshtein => normalized_levenshtein(a, b),
        M::DamerauLevenshtein => normalized_damerau_levenshtein(a, b),
        M::Jaro => jaro(a, b),
        M::JaroWinkler => jaro_winkler(a, b),
        M::Jaccard => jaccard(a, b),
        M::QgramCosine(q) => qgram_cosine(a, b, q),
    }
}
