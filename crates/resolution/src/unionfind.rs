//! A disjoint-set forest (union–find) with union by rank and path compression.
//!
//! Record matching produces pairwise "these two records are duplicates"
//! decisions; the transitive closure of those decisions is the clustering the
//! consolidation pipeline consumes. Union–find computes that closure in
//! near-linear time.

/// A disjoint-set forest over `0..len` elements.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len).collect(),
            rank: vec![0; len],
            components: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Appends one new singleton element, returning its index. This is how
    /// the streaming resolver grows the forest record-by-record; the result
    /// is indistinguishable from constructing `UnionFind::new` at the final
    /// size upfront.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        self.rank.push(0);
        self.components += 1;
        id
    }

    /// The representative of `x`'s set, with path compression.
    ///
    /// # Panics
    /// Panics when `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` when they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Materializes the sets as a vector of element-index groups. Groups are
    /// ordered by their smallest member and each group is sorted, so the
    /// output is deterministic regardless of union order.
    pub fn into_groups(mut self) -> Vec<Vec<usize>> {
        let len = self.len();
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..len {
            let root = self.find(x);
            by_root.entry(root).or_default().push(x);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_start_disconnected() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_components(), 4);
        assert!(!uf.connected(0, 1));
        assert!(uf.connected(2, 2));
    }

    #[test]
    fn union_merges_and_is_idempotent() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(1, 2));
        assert!(uf.connected(0, 2));
        assert_eq!(uf.num_components(), 3);
    }

    #[test]
    fn groups_are_deterministic_and_complete() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 3);
        uf.union(1, 2);
        uf.union(3, 1);
        let groups = uf.into_groups();
        assert_eq!(groups, vec![vec![0], vec![1, 2, 3, 5], vec![4]]);
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_components(), 0);
        assert!(uf.into_groups().is_empty());
    }

    proptest! {
        /// Transitivity: after an arbitrary sequence of unions, connectivity is
        /// an equivalence relation and the groups partition the elements.
        #[test]
        fn prop_groups_partition_elements(
            n in 1usize..40,
            edges in proptest::collection::vec((0usize..40, 0usize..40), 0..60)
        ) {
            let mut uf = UnionFind::new(n);
            for (a, b) in edges {
                uf.union(a % n, b % n);
            }
            let components = uf.num_components();
            let groups = uf.clone().into_groups();
            prop_assert_eq!(groups.len(), components);
            let mut seen = vec![false; n];
            for g in &groups {
                for &x in g {
                    prop_assert!(!seen[x], "element {} appears twice", x);
                    seen[x] = true;
                }
            }
            prop_assert!(seen.into_iter().all(|s| s));
            // Every pair inside a group is connected; the group leaders are not.
            for g in &groups {
                for w in g.windows(2) {
                    prop_assert!(uf.connected(w[0], w[1]));
                }
            }
            for pair in groups.windows(2) {
                prop_assert!(!uf.connected(pair[0][0], pair[1][0]));
            }
        }
    }
}
