//! String normalization and tokenization used by blocking and similarity.
//!
//! Entity resolution compares records that come from different sources with
//! different casing and punctuation conventions. A light normalization pass
//! (lowercasing, collapsing whitespace, stripping punctuation at token
//! boundaries) makes the similarity measures in [`crate::similarity`] behave
//! the way users expect without hiding the variant formats that entity
//! consolidation later learns to standardize — consolidation always works on
//! the *original* observed values, only resolution looks at normalized ones.
//!
//! Tokenization sits on the hot path (every blocking pass and every
//! Jaccard/q-gram score tokenizes), so next to the owned-`Vec<String>`
//! convenience functions ([`words`], [`qgrams`]) this module exposes
//! *scratch-based* variants: [`words_into`] appends token spans into a
//! reusable [`TokenBuf`] arena and [`normalize_into`] writes into a caller
//! buffer, so steady-state tokenization performs no allocation at all.

/// Normalizes a string for matching: lowercases ASCII letters, maps every
/// whitespace run to a single space, and trims leading/trailing whitespace.
/// Punctuation is preserved (it is often a meaningful part of a value, e.g.
/// "J. Smith"), but callers that want it gone can use [`words`], which splits
/// on non-alphanumeric characters.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    normalize_into(s, &mut out);
    out
}

/// [`normalize`] into a caller-owned buffer: `out` is cleared and filled with
/// the normalized text, reusing its allocation.
pub fn normalize_into(s: &str, out: &mut String) {
    out.clear();
    let mut in_space = true; // swallow leading whitespace
    for ch in s.chars() {
        if ch.is_whitespace() {
            if !in_space {
                out.push(' ');
                in_space = true;
            }
        } else {
            out.push(ch.to_ascii_lowercase());
            in_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
}

/// A reusable token buffer: tokens live as byte spans into one arena string,
/// so tokenizing a value performs no per-token allocation and re-tokenizing
/// with the same buffer performs none at all once the arena has grown.
///
/// Filled by [`words_into`]; [`TokenBuf::sort_dedup_tokens`] turns the token
/// list into the sorted distinct token *set* in place, which is the shape the
/// allocation-free Jaccard kernel and token blocking consume.
#[derive(Debug, Clone, Default)]
pub struct TokenBuf {
    arena: String,
    spans: Vec<(u32, u32)>,
}

impl TokenBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        TokenBuf::default()
    }

    /// Drops all tokens, keeping the allocations.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.spans.clear();
    }

    /// Number of tokens currently held.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no token is held.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The `i`-th token.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    pub fn token(&self, i: usize) -> &str {
        let (start, end) = self.spans[i];
        &self.arena[start as usize..end as usize]
    }

    /// Iterates over the tokens in order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.spans
            .iter()
            .map(|&(start, end)| &self.arena[start as usize..end as usize])
    }

    /// Sorts the token spans lexicographically by token content and removes
    /// duplicates, leaving the distinct token set in sorted order. Returns
    /// the distinct count. The arena is untouched — only spans move.
    pub fn sort_dedup_tokens(&mut self) -> usize {
        let arena = &self.arena;
        self.spans.sort_unstable_by(|&(a0, a1), &(b0, b1)| {
            arena[a0 as usize..a1 as usize].cmp(&arena[b0 as usize..b1 as usize])
        });
        self.spans.dedup_by(|&mut (a0, a1), &mut (b0, b1)| {
            arena[a0 as usize..a1 as usize] == arena[b0 as usize..b1 as usize]
        });
        self.spans.len()
    }

    fn push_span(&mut self, start: usize) {
        let end = self.arena.len();
        if end > start {
            self.spans.push((start as u32, end as u32));
        }
    }
}

/// Appends the word tokens of `s` to `buf` (which is **not** cleared — clear
/// it first for a fresh tokenization, or keep appending to accumulate the
/// tokens of several columns, as blocking does). Token content is identical
/// to [`words`]: maximal alphanumeric runs, ASCII-lowercased.
pub fn words_into(s: &str, buf: &mut TokenBuf) {
    let mut start = buf.arena.len();
    let mut in_token = false;
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            if !in_token {
                start = buf.arena.len();
                in_token = true;
            }
            buf.arena.push(ch.to_ascii_lowercase());
        } else if in_token {
            buf.push_span(start);
            in_token = false;
        }
    }
    if in_token {
        buf.push_span(start);
    }
}

/// Splits a string into lowercase alphanumeric word tokens. Every maximal run
/// of alphanumeric characters becomes one token; everything else is a
/// separator. An empty input yields an empty vector.
///
/// This is the owned-`Vec<String>` convenience wrapper around [`words_into`];
/// hot paths use the scratch variant directly.
pub fn words(s: &str) -> Vec<String> {
    let mut buf = TokenBuf::new();
    words_into(s, &mut buf);
    buf.iter().map(str::to_string).collect()
}

/// Character q-grams of the normalized string, padded with `q - 1` leading and
/// trailing `#` markers so that prefixes and suffixes contribute q-grams too
/// (the standard construction for q-gram similarity joins). `q` is clamped to
/// at least 1; a `q` of 1 yields the characters themselves without padding.
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    let q = q.max(1);
    let normalized = normalize(s);
    if normalized.is_empty() {
        return Vec::new();
    }
    let chars: Vec<char> = if q == 1 {
        normalized.chars().collect()
    } else {
        let pad = std::iter::repeat('#').take(q - 1);
        pad.clone().chain(normalized.chars()).chain(pad).collect()
    };
    if chars.len() < q {
        return Vec::new();
    }
    chars
        .windows(q)
        .map(|w| w.iter().collect::<String>())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_lowercases_and_collapses_whitespace() {
        assert_eq!(normalize("  Mary\t Lee  "), "mary lee");
        assert_eq!(normalize("J.  Smith"), "j. smith");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("   "), "");
    }

    #[test]
    fn normalize_preserves_punctuation_and_digits() {
        assert_eq!(normalize("9th St, 02141 WI"), "9th st, 02141 wi");
    }

    #[test]
    fn normalize_into_reuses_the_buffer() {
        let mut buf = String::new();
        normalize_into("  Mary\t Lee  ", &mut buf);
        assert_eq!(buf, "mary lee");
        normalize_into("J.  Smith", &mut buf);
        assert_eq!(buf, "j. smith");
        normalize_into("   ", &mut buf);
        assert_eq!(buf, "");
    }

    #[test]
    fn words_split_on_non_alphanumerics() {
        assert_eq!(words("Lee, Mary"), vec!["lee", "mary"]);
        assert_eq!(
            words("3rd E Avenue, 33990 CA"),
            vec!["3rd", "e", "avenue", "33990", "ca"]
        );
        assert_eq!(words("---"), Vec::<String>::new());
        assert_eq!(words(""), Vec::<String>::new());
    }

    #[test]
    fn words_into_accumulates_and_matches_words() {
        let mut buf = TokenBuf::new();
        words_into("Lee, Mary", &mut buf);
        assert_eq!(buf.iter().collect::<Vec<_>>(), vec!["lee", "mary"]);
        // Appending accumulates (the multi-column blocking shape).
        words_into("9th St", &mut buf);
        assert_eq!(
            buf.iter().collect::<Vec<_>>(),
            vec!["lee", "mary", "9th", "st"]
        );
        buf.clear();
        assert!(buf.is_empty());
        words_into("Ünïcode tøkens", &mut buf);
        assert_eq!(
            buf.iter().collect::<Vec<_>>(),
            words("Ünïcode tøkens").iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn sort_dedup_tokens_leaves_the_sorted_distinct_set() {
        let mut buf = TokenBuf::new();
        words_into("b a c a b", &mut buf);
        assert_eq!(buf.sort_dedup_tokens(), 3);
        assert_eq!(buf.iter().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        // Idempotent.
        assert_eq!(buf.sort_dedup_tokens(), 3);
    }

    #[test]
    fn qgrams_are_padded() {
        let grams = qgrams("ab", 2);
        assert_eq!(grams, vec!["#a", "ab", "b#"]);
    }

    #[test]
    fn qgrams_of_one_are_characters() {
        assert_eq!(qgrams("Lee", 1), vec!["l", "e", "e"]);
    }

    #[test]
    fn qgrams_of_empty_string() {
        assert_eq!(qgrams("", 3), Vec::<String>::new());
    }

    #[test]
    fn qgram_zero_is_clamped() {
        assert_eq!(qgrams("ab", 0), qgrams("ab", 1));
    }

    #[test]
    fn qgrams_normalize_first() {
        assert_eq!(qgrams("AB", 2), qgrams("ab", 2));
    }
}
