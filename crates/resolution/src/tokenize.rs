//! String normalization and tokenization used by blocking and similarity.
//!
//! Entity resolution compares records that come from different sources with
//! different casing and punctuation conventions. A light normalization pass
//! (lowercasing, collapsing whitespace, stripping punctuation at token
//! boundaries) makes the similarity measures in [`crate::similarity`] behave
//! the way users expect without hiding the variant formats that entity
//! consolidation later learns to standardize — consolidation always works on
//! the *original* observed values, only resolution looks at normalized ones.

/// Normalizes a string for matching: lowercases ASCII letters, maps every
/// whitespace run to a single space, and trims leading/trailing whitespace.
/// Punctuation is preserved (it is often a meaningful part of a value, e.g.
/// "J. Smith"), but callers that want it gone can use [`words`], which splits
/// on non-alphanumeric characters.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_space = true; // swallow leading whitespace
    for ch in s.chars() {
        if ch.is_whitespace() {
            if !in_space {
                out.push(' ');
                in_space = true;
            }
        } else {
            out.push(ch.to_ascii_lowercase());
            in_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Splits a string into lowercase alphanumeric word tokens. Every maximal run
/// of alphanumeric characters becomes one token; everything else is a
/// separator. An empty input yields an empty vector.
pub fn words(s: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            current.push(ch.to_ascii_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Character q-grams of the normalized string, padded with `q - 1` leading and
/// trailing `#` markers so that prefixes and suffixes contribute q-grams too
/// (the standard construction for q-gram similarity joins). `q` is clamped to
/// at least 1; a `q` of 1 yields the characters themselves without padding.
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    let q = q.max(1);
    let normalized = normalize(s);
    if normalized.is_empty() {
        return Vec::new();
    }
    let chars: Vec<char> = if q == 1 {
        normalized.chars().collect()
    } else {
        let pad = std::iter::repeat('#').take(q - 1);
        pad.clone().chain(normalized.chars()).chain(pad).collect()
    };
    if chars.len() < q {
        return Vec::new();
    }
    chars
        .windows(q)
        .map(|w| w.iter().collect::<String>())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_lowercases_and_collapses_whitespace() {
        assert_eq!(normalize("  Mary\t Lee  "), "mary lee");
        assert_eq!(normalize("J.  Smith"), "j. smith");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("   "), "");
    }

    #[test]
    fn normalize_preserves_punctuation_and_digits() {
        assert_eq!(normalize("9th St, 02141 WI"), "9th st, 02141 wi");
    }

    #[test]
    fn words_split_on_non_alphanumerics() {
        assert_eq!(words("Lee, Mary"), vec!["lee", "mary"]);
        assert_eq!(
            words("3rd E Avenue, 33990 CA"),
            vec!["3rd", "e", "avenue", "33990", "ca"]
        );
        assert_eq!(words("---"), Vec::<String>::new());
        assert_eq!(words(""), Vec::<String>::new());
    }

    #[test]
    fn qgrams_are_padded() {
        let grams = qgrams("ab", 2);
        assert_eq!(grams, vec!["#a", "ab", "b#"]);
    }

    #[test]
    fn qgrams_of_one_are_characters() {
        assert_eq!(qgrams("Lee", 1), vec!["l", "e", "e"]);
    }

    #[test]
    fn qgrams_of_empty_string() {
        assert_eq!(qgrams("", 3), Vec::<String>::new());
    }

    #[test]
    fn qgram_zero_is_clamped() {
        assert_eq!(qgrams("ab", 0), qgrams("ab", 1));
    }

    #[test]
    fn qgrams_normalize_first() {
        assert_eq!(qgrams("AB", 2), qgrams("ab", 2));
    }
}
