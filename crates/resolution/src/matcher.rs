//! Record-pair matching and the end-to-end resolver.
//!
//! A [`Resolver`] turns a flat collection of [`RawRecord`]s into clusters of
//! duplicates: blocking proposes candidate pairs, each pair is scored by a
//! weighted combination of per-column similarity measures, pairs at or above
//! the match threshold are unioned, and the connected components become the
//! clusters. [`Resolver::resolve_to_dataset`] additionally packages the result
//! as an [`ec_data::Dataset`] so the consolidation pipeline can run directly
//! on resolver output.
//!
//! # Scoring architecture
//!
//! The per-pair work is compiled out of the hot loop: [`CompiledRules`]
//! resolves a config's effective rules and weight sums once per resolve (per
//! column arity), pair scoring shards across the shared worker pool in
//! contiguous chunks merged in candidate order (the same pattern as
//! `ec-replace`'s candidate generation), and the threshold-only paths
//! ([`Resolver::resolve`], `StreamingResolver::finish`) use early-abandon
//! scoring ([`CompiledRules::decide_score`]) that skips similarity kernels
//! when a cheap upper bound proves the pair cannot reach the threshold.
//! Every path is **bit-identical** to sequential exact scoring: exact scores
//! are returned wherever a score is observable ([`MatchDecision::score`], the
//! delta resolver's cache), and abandoned pairs are provably sub-threshold
//! (see [`crate::similarity::SimilarityMeasure::score_at_least`]).

use crate::blocking::{sorted_neighborhood_pairs, token_blocking_pairs, BlockingConfig};
use crate::similarity::{take_kernel_path_counts, SimilarityMeasure};
use crate::unionfind::UnionFind;
use ec_data::{Cell, Cluster, Dataset, Row};
use ec_graph::{Parallelism, PoolTask};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// An unclustered input record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawRecord {
    /// The data source the record came from (kept through to the dataset so
    /// that source-reliability truth discovery can use it).
    pub source: usize,
    /// One value per column.
    pub fields: Vec<String>,
}

impl RawRecord {
    /// Creates a record from anything iterable over string-likes.
    pub fn new<I, S>(source: usize, fields: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        RawRecord {
            source,
            fields: fields.into_iter().map(Into::into).collect(),
        }
    }
}

impl AsRef<[String]> for RawRecord {
    /// The field slice — lets blocking run directly over borrowed records
    /// instead of cloning every field vector.
    fn as_ref(&self) -> &[String] {
        &self.fields
    }
}

/// How one column contributes to the pairwise match score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColumnRule {
    /// The column index the rule applies to.
    pub column: usize,
    /// The similarity measure to evaluate.
    pub measure: SimilarityMeasure,
    /// The weight of this column in the overall score. Weights are normalized
    /// over the rules of a config, so only their ratios matter.
    pub weight: f64,
}

/// Which blocking scheme proposes candidate pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockingScheme {
    /// Token blocking (records sharing a word token become candidates).
    Token,
    /// Sorted-neighborhood blocking (sliding window over sorted keys).
    SortedNeighborhood,
    /// The union of both schemes' candidates.
    Both,
}

/// Configuration of the resolver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolverConfig {
    /// Per-column scoring rules. When empty, every column is scored with
    /// Jaro–Winkler at equal weight.
    pub rules: Vec<ColumnRule>,
    /// A candidate pair whose weighted score reaches this threshold is
    /// declared a match.
    pub threshold: f64,
    /// Candidate generation scheme.
    pub scheme: BlockingScheme,
    /// Blocking parameters.
    pub blocking: BlockingConfig,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            rules: Vec::new(),
            threshold: 0.75,
            scheme: BlockingScheme::Both,
            blocking: BlockingConfig::default(),
        }
    }
}

/// The outcome of scoring one candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchDecision {
    /// First record index (always less than `b`).
    pub a: usize,
    /// Second record index.
    pub b: usize,
    /// The weighted similarity score in `[0, 1]`.
    pub score: f64,
    /// Whether the score reached the threshold.
    pub is_match: bool,
}

/// A config's scoring rules compiled for one column arity: the effective rule
/// list, the total weight, and per-rule suffix weight sums. Hoists what the
/// old per-pair path re-derived (and re-allocated) for every single pair, and
/// carries the bookkeeping the early-abandon loop needs.
#[derive(Debug, Clone)]
pub struct CompiledRules {
    rules: Vec<ColumnRule>,
    total_weight: f64,
    /// `suffix_weight[i]` — the summed weight of the rules *after* `i`, i.e.
    /// the maximum score mass still ahead once rule `i` is being evaluated.
    /// Feeds only abandon bounds, never a returned score.
    suffix_weight: Vec<f64>,
}

impl CompiledRules {
    /// Compiles `config`'s effective rules for records with `num_columns`
    /// columns: an empty rule list means Jaro–Winkler on every column at
    /// equal weight; otherwise rules on missing columns or with non-positive
    /// weight are dropped.
    pub fn compile(config: &ResolverConfig, num_columns: usize) -> Self {
        let rules: Vec<ColumnRule> = if config.rules.is_empty() {
            (0..num_columns)
                .map(|column| ColumnRule {
                    column,
                    measure: SimilarityMeasure::JaroWinkler,
                    weight: 1.0,
                })
                .collect()
        } else {
            config
                .rules
                .iter()
                .copied()
                .filter(|r| r.column < num_columns && r.weight > 0.0)
                .collect()
        };
        let total_weight: f64 = rules.iter().map(|r| r.weight).sum();
        let mut suffix_weight = vec![0.0f64; rules.len()];
        let mut ahead = 0.0f64;
        for i in (0..rules.len()).rev() {
            suffix_weight[i] = ahead;
            ahead += rules[i].weight;
        }
        CompiledRules {
            rules,
            total_weight,
            suffix_weight,
        }
    }

    /// The exact weighted score of a pair — the same additions in the same
    /// order as the pre-compilation scorer, so results are bit-identical.
    pub fn score(&self, a: &RawRecord, b: &RawRecord) -> f64 {
        if self.total_weight == 0.0 {
            return 0.0;
        }
        self.rules
            .iter()
            .map(|rule| {
                rule.weight
                    * rule
                        .measure
                        .score(&a.fields[rule.column], &b.fields[rule.column])
            })
            .sum::<f64>()
            / self.total_weight
    }

    /// Threshold-aware scoring with early abandon. Returns the exact score
    /// (bitwise identical to [`CompiledRules::score`]) unless some rule's
    /// similarity provably cannot lift the weighted total to `threshold` even
    /// with every remaining rule at 1.0 — then scoring stops, `abandoned` is
    /// bumped, and `f64::NEG_INFINITY` is returned in place of the (provably
    /// sub-threshold) score. `returned >= threshold` therefore always equals
    /// the exact decision; only callers that never observe sub-threshold
    /// scores may use this.
    pub fn decide_score(
        &self,
        a: &RawRecord,
        b: &RawRecord,
        threshold: f64,
        abandoned: &mut u64,
    ) -> f64 {
        if self.total_weight == 0.0 {
            return 0.0;
        }
        let target = threshold * self.total_weight;
        // -0.0 is `Iterator::sum::<f64>()`'s fold identity; starting there
        // keeps `acc` bitwise equal to the `.sum()` in `score` even when
        // every term is a negative zero (e.g. disjoint-gram cosine).
        let mut acc = -0.0f64;
        for (i, rule) in self.rules.iter().enumerate() {
            // The score rule i must reach assuming every later rule scores a
            // perfect 1.0. `score_at_least` only abandons when its measure
            // bound misses this by more than the FP safety margin.
            let needed = (target - acc - self.suffix_weight[i]) / rule.weight;
            match rule.measure.score_at_least(
                &a.fields[rule.column],
                &b.fields[rule.column],
                needed,
            ) {
                Some(s) => acc += rule.weight * s,
                None => {
                    *abandoned += 1;
                    return f64::NEG_INFINITY;
                }
            }
        }
        acc / self.total_weight
    }
}

/// Lazily compiles rules per column arity. Records almost always share one
/// arity (one compile per resolve); mixed-arity inputs still score exactly as
/// the old per-pair rule derivation did, because the effective rules depend
/// only on `min(|a|, |b|)`.
struct RuleCache<'c> {
    config: &'c ResolverConfig,
    compiled: Vec<Option<CompiledRules>>,
}

impl<'c> RuleCache<'c> {
    fn new(config: &'c ResolverConfig) -> Self {
        RuleCache {
            config,
            compiled: Vec::new(),
        }
    }

    fn get(&mut self, num_columns: usize) -> &CompiledRules {
        if self.compiled.len() <= num_columns {
            self.compiled.resize_with(num_columns + 1, || None);
        }
        self.compiled[num_columns]
            .get_or_insert_with(|| CompiledRules::compile(self.config, num_columns))
    }
}

/// Record-index types the sharded scorer accepts (`usize` from batch
/// blocking, `u32` from the streaming state).
pub(crate) trait PairIx: Copy + Send + Sync + 'static {
    fn ix(self) -> usize;
}

impl PairIx for usize {
    fn ix(self) -> usize {
        self
    }
}

impl PairIx for u32 {
    fn ix(self) -> usize {
        self as usize
    }
}

/// Minimum candidate count before scoring shards across the pool — below
/// this, chunk bookkeeping (and the one-time record copy the `'static` pool
/// tasks need) costs more than it saves.
const MIN_PARALLEL_PAIRS: usize = 512;

/// Flushes this thread's kernel-path counters plus a chunk's abandoned-pair
/// count into the global metrics registry. Called once per scored chunk so
/// the kernels themselves never touch an atomic; registration is
/// unconditional (`add(0)` is a no-op) so the series exist as soon as any
/// scoring has run.
fn flush_kernel_metrics(abandoned: u64) {
    const CALLS_HELP: &str = "Similarity kernel invocations by string path";
    let (ascii, unicode) = take_kernel_path_counts();
    ec_obs::counter_with(
        "ec_resolution_kernel_calls_total",
        CALLS_HELP,
        &[("path", "ascii")],
    )
    .add(ascii);
    ec_obs::counter_with(
        "ec_resolution_kernel_calls_total",
        CALLS_HELP,
        &[("path", "unicode")],
    )
    .add(unicode);
    ec_obs::counter(
        "ec_resolution_pairs_abandoned_total",
        "Candidate pairs skipped by threshold early-abandon before exact scoring",
    )
    .add(abandoned);
}

/// Scores one contiguous chunk of pairs on the calling thread. With
/// `threshold: None` every returned value is the exact pair score; with
/// `Some(t)` pairs may be early-abandoned to `f64::NEG_INFINITY` (provably
/// `< t`), and values `>= t` are always exact.
fn score_chunk<I: PairIx>(
    config: &ResolverConfig,
    records: &[RawRecord],
    pairs: &[(I, I)],
    threshold: Option<f64>,
) -> Vec<f64> {
    let mut cache = RuleCache::new(config);
    let mut abandoned = 0u64;
    let out = pairs
        .iter()
        .map(|&(a, b)| {
            let (ra, rb) = (&records[a.ix()], &records[b.ix()]);
            let compiled = cache.get(ra.fields.len().min(rb.fields.len()));
            match threshold {
                None => compiled.score(ra, rb),
                Some(t) => compiled.decide_score(ra, rb, t, &mut abandoned),
            }
        })
        .collect();
    flush_kernel_metrics(abandoned);
    out
}

/// Shards `pairs` into contiguous chunks over the worker pool and merges the
/// per-chunk scores in order — the same in-order merge pattern as
/// `ec-replace`'s candidate generation, so the output is bit-identical to the
/// sequential loop at any thread count.
fn score_pairs_pooled<I: PairIx>(
    config: &ResolverConfig,
    parallelism: Parallelism,
    records: &Arc<Vec<RawRecord>>,
    pairs: Vec<(I, I)>,
    threshold: Option<f64>,
) -> Vec<f64> {
    let shards = parallelism.shards(pairs.len());
    let chunk = pairs.len().div_ceil(shards);
    let pairs = Arc::new(pairs);
    let config = Arc::new(config.clone());
    let tasks: Vec<PoolTask<Vec<f64>>> = (0..shards)
        .map(|s| {
            let records = Arc::clone(records);
            let pairs = Arc::clone(&pairs);
            let config = Arc::clone(&config);
            Box::new(move || {
                let lo = s * chunk;
                let hi = ((s + 1) * chunk).min(pairs.len());
                score_chunk(&config, &records, &pairs[lo..hi], threshold)
            }) as PoolTask<Vec<f64>>
        })
        .collect();
    parallelism.run_tasks(tasks).into_iter().flatten().collect()
}

/// Pair scoring over borrowed records: small or sequential workloads run in
/// place; larger ones move one copy of the records behind an `Arc` (the pool
/// needs `'static` tasks) and shard.
fn score_pairs_slice<I: PairIx>(
    config: &ResolverConfig,
    parallelism: Parallelism,
    records: &[RawRecord],
    pairs: &[(I, I)],
    threshold: Option<f64>,
) -> Vec<f64> {
    if pairs.len() < MIN_PARALLEL_PAIRS || parallelism.shards(pairs.len()) <= 1 {
        return score_chunk(config, records, pairs, threshold);
    }
    let records = Arc::new(records.to_vec());
    score_pairs_pooled(config, parallelism, &records, pairs.to_vec(), threshold)
}

/// Pair scoring over records already behind an `Arc` (the streaming state) —
/// no record copy on any path.
pub(crate) fn score_pairs_arc<I: PairIx>(
    config: &ResolverConfig,
    parallelism: Parallelism,
    records: &Arc<Vec<RawRecord>>,
    pairs: &[(I, I)],
    threshold: Option<f64>,
) -> Vec<f64> {
    if pairs.len() < MIN_PARALLEL_PAIRS || parallelism.shards(pairs.len()) <= 1 {
        return score_chunk(config, records, pairs, threshold);
    }
    score_pairs_pooled(config, parallelism, records, pairs.to_vec(), threshold)
}

/// The entity resolver.
#[derive(Debug, Clone)]
pub struct Resolver {
    config: ResolverConfig,
    parallelism: Parallelism,
}

impl Resolver {
    /// Creates a resolver with the given configuration.
    pub fn new(config: ResolverConfig) -> Self {
        Resolver {
            config,
            parallelism: Parallelism::AUTO,
        }
    }

    /// Sets how many threads pair scoring may shard across. Results are
    /// bit-identical for every value; the knob only trades wall-clock time
    /// for cores.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The scoring parallelism in use.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The configuration in use.
    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    /// Scores one record pair with the configured rules.
    pub fn score_pair(&self, a: &RawRecord, b: &RawRecord) -> f64 {
        CompiledRules::compile(&self.config, a.fields.len().min(b.fields.len())).score(a, b)
    }

    /// Generates the candidate pairs of `records` (sorted, deduplicated).
    fn candidates(&self, records: &[RawRecord]) -> Vec<(usize, usize)> {
        let _span = ec_obs::span!("resolution.blocking", records.len());
        let mut candidates = match self.config.scheme {
            BlockingScheme::Token => token_blocking_pairs(records, &self.config.blocking),
            BlockingScheme::SortedNeighborhood => {
                sorted_neighborhood_pairs(records, &self.config.blocking)
            }
            BlockingScheme::Both => {
                let mut pairs = token_blocking_pairs(records, &self.config.blocking);
                pairs.extend(sorted_neighborhood_pairs(records, &self.config.blocking));
                pairs.sort_unstable();
                pairs.dedup();
                pairs
            }
        };
        candidates.sort_unstable();
        candidates
    }

    /// Generates candidate pairs and scores each one. Decisions are returned
    /// in candidate order (sorted by record indices) and every score is
    /// exact — this entry point reports scores, so it never early-abandons.
    pub fn match_pairs(&self, records: &[RawRecord]) -> Vec<MatchDecision> {
        if records.len() < 2 {
            return Vec::new();
        }
        let candidates = self.candidates(records);
        let _span = ec_obs::span!("resolution.scoring", candidates.len());
        let scores = score_pairs_slice(&self.config, self.parallelism, records, &candidates, None);
        candidates
            .into_iter()
            .zip(scores)
            .map(|((a, b), score)| MatchDecision {
                a,
                b,
                score,
                is_match: score >= self.config.threshold,
            })
            .collect()
    }

    /// Resolves the records into clusters of record indices (the transitive
    /// closure of the pairwise match decisions). Singleton clusters are kept:
    /// a record that matches nothing is still an entity.
    ///
    /// Only the match/no-match decision of each pair is observable here, so
    /// scoring early-abandons pairs that provably cannot reach the threshold;
    /// the clusters are identical to thresholding [`Resolver::match_pairs`].
    pub fn resolve(&self, records: &[RawRecord]) -> Vec<Vec<usize>> {
        if records.len() < 2 {
            return UnionFind::new(records.len()).into_groups();
        }
        let candidates = self.candidates(records);
        let _span = ec_obs::span!("resolution.scoring", candidates.len());
        let threshold = self.config.threshold;
        let scores = score_pairs_slice(
            &self.config,
            self.parallelism,
            records,
            &candidates,
            Some(threshold),
        );
        let mut uf = UnionFind::new(records.len());
        for (&(a, b), score) in candidates.iter().zip(&scores) {
            if *score >= threshold {
                uf.union(a, b);
            }
        }
        uf.into_groups()
    }

    /// Resolves the records and packages the clusters as an
    /// [`ec_data::Dataset`]. `truths`, when provided, supplies the latent true
    /// value of each record's columns (used only for evaluation); otherwise
    /// each cell's truth is set to its observed value.
    ///
    /// # Panics
    /// Panics when `truths` is provided with a length different from
    /// `records`.
    pub fn resolve_to_dataset(
        &self,
        name: &str,
        columns: Vec<String>,
        records: &[RawRecord],
        truths: Option<&[Vec<String>]>,
    ) -> Dataset {
        if let Some(t) = truths {
            assert_eq!(t.len(), records.len(), "one truth row per record required");
        }
        let clusters = self.resolve(records);
        clusters_to_dataset(name, columns, records, clusters, truths)
    }

    /// Streaming entry point: consumes a [`RecordStream`] record-at-a-time,
    /// building blocks and the union-find incrementally (see
    /// [`crate::streaming::StreamingResolver`]), and packages the clusters as
    /// a [`Dataset`] exactly as [`Resolver::resolve_to_dataset`] (with each
    /// cell's truth set to its observed value) would. The produced dataset is
    /// bit-identical to collecting the stream and calling the batch entry
    /// point; only the peak memory differs — the input document is never
    /// materialized and per-block state is bounded by the blocking
    /// configuration's `max_block_size`.
    pub fn resolve_stream<S: ec_data::RecordStream + ?Sized>(
        &self,
        name: &str,
        stream: &mut S,
    ) -> Result<Dataset, ec_data::DatasetIoError> {
        let columns = stream.columns().to_vec();
        let mut builder = crate::streaming::StreamingResolver::new(self);
        while let Some(record) = stream.next_record() {
            let record = record?;
            builder.push(RawRecord {
                source: record.source,
                fields: record.fields,
            });
        }
        Ok(builder.finish(name, columns))
    }
}

/// Packages resolved clusters of record indices as a [`Dataset`] — shared by
/// the batch and streaming entry points so both produce identical output. The
/// golden record of a cluster is unknown at resolution time; the per-column
/// majority of truths serves as the best available label.
pub(crate) fn clusters_to_dataset(
    name: &str,
    columns: Vec<String>,
    records: &[RawRecord],
    clusters: Vec<Vec<usize>>,
    truths: Option<&[Vec<String>]>,
) -> Dataset {
    let mut dataset = Dataset::new(name, columns);
    for member_ids in clusters {
        let rows: Vec<Row> = member_ids
            .iter()
            .map(|&id| {
                let record = &records[id];
                let cells: Vec<Cell> = record
                    .fields
                    .iter()
                    .enumerate()
                    .map(|(col, observed)| Cell {
                        observed: observed.clone(),
                        truth: truths
                            .map(|t| t[id][col].clone())
                            .unwrap_or_else(|| observed.clone()),
                    })
                    .collect();
                Row {
                    source: record.source,
                    cells,
                }
            })
            .collect();
        let num_cols = rows.first().map(|r| r.cells.len()).unwrap_or(0);
        let golden = ec_data::majority_golden(&rows, num_cols);
        dataset.clusters.push(Cluster { rows, golden });
    }
    dataset
}

impl Default for Resolver {
    fn default() -> Self {
        Resolver::new(ResolverConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lee_smith_records() -> Vec<RawRecord> {
        vec![
            RawRecord::new(0, ["Mary Lee", "9 St, 02141 Wisconsin"]),
            RawRecord::new(1, ["M. Lee", "9th St, 02141 WI"]),
            RawRecord::new(2, ["Lee, Mary", "9 Street, 02141 WI"]),
            RawRecord::new(0, ["Smith, James", "5th St, 22701 California"]),
            RawRecord::new(1, ["James Smith", "3rd E Ave, 33990 California"]),
            RawRecord::new(2, ["J. Smith", "3 E Avenue, 33990 CA"]),
            RawRecord::new(0, ["Alice Wonder", "42 Rabbit Hole Ln"]),
        ]
    }

    #[test]
    fn resolver_reconstructs_the_paper_table1_clusters() {
        let config = ResolverConfig {
            rules: vec![
                ColumnRule {
                    column: 0,
                    measure: SimilarityMeasure::Jaccard,
                    weight: 1.0,
                },
                ColumnRule {
                    column: 1,
                    measure: SimilarityMeasure::QgramCosine(2),
                    weight: 1.0,
                },
            ],
            threshold: 0.5,
            ..ResolverConfig::default()
        };
        let clusters = Resolver::new(config).resolve(&lee_smith_records());
        // The Lee records (0,1,2) and Smith records (3,4,5) cluster; Alice is a singleton.
        let lee = clusters.iter().find(|c| c.contains(&0)).unwrap();
        assert!(
            lee.contains(&2),
            "Lee, Mary should join Mary Lee: {clusters:?}"
        );
        let smith = clusters.iter().find(|c| c.contains(&4)).unwrap();
        assert!(
            smith.contains(&3),
            "Smith, James should join James Smith: {clusters:?}"
        );
        assert!(
            clusters.iter().any(|c| c == &vec![6]),
            "Alice must stay a singleton"
        );
        assert!(!lee.contains(&4), "Lees and Smiths must not merge");
    }

    #[test]
    fn score_pair_is_symmetric_and_bounded() {
        // Exact (bitwise) symmetry is load-bearing: the delta resolver's
        // pair-score cache canonicalizes its key by value order, so one
        // cached score must serve both argument orders bit-identically.
        let resolver = Resolver::default();
        let records = lee_smith_records();
        for a in &records {
            for b in &records {
                let s1 = resolver.score_pair(a, b);
                let s2 = resolver.score_pair(b, a);
                assert_eq!(s1, s2, "{:?} vs {:?}", a.fields, b.fields);
                assert!((0.0..=1.0).contains(&s1));
            }
        }
        assert!((resolver.score_pair(&records[0], &records[0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_one_keeps_everything_apart() {
        let config = ResolverConfig {
            threshold: 1.01,
            ..ResolverConfig::default()
        };
        let clusters = Resolver::new(config).resolve(&lee_smith_records());
        assert_eq!(clusters.len(), lee_smith_records().len());
    }

    #[test]
    fn empty_and_single_record_inputs() {
        let resolver = Resolver::default();
        assert!(resolver.resolve(&[]).is_empty());
        assert!(resolver.match_pairs(&[]).is_empty());
        let one = vec![RawRecord::new(0, ["only"])];
        assert_eq!(resolver.resolve(&one), vec![vec![0]]);
    }

    #[test]
    fn match_decisions_report_scores_and_candidates_only() {
        let resolver = Resolver::default();
        let decisions = resolver.match_pairs(&lee_smith_records());
        assert!(!decisions.is_empty());
        for d in &decisions {
            assert!(d.a < d.b);
            assert!((0.0..=1.0).contains(&d.score));
            assert_eq!(d.is_match, d.score >= resolver.config().threshold);
        }
    }

    #[test]
    fn resolve_to_dataset_round_trips_sources_and_truths() {
        let records = lee_smith_records();
        let truths: Vec<Vec<String>> = records
            .iter()
            .map(|r| {
                let name = if r.fields[0].contains("Lee") {
                    "Mary Lee"
                } else if r.fields[0].contains("Smith") {
                    "James Smith"
                } else {
                    "Alice Wonder"
                };
                vec![name.to_string(), r.fields[1].clone()]
            })
            .collect();
        let config = ResolverConfig {
            rules: vec![ColumnRule {
                column: 0,
                measure: SimilarityMeasure::Jaccard,
                weight: 1.0,
            }],
            threshold: 0.45,
            ..ResolverConfig::default()
        };
        let dataset = Resolver::new(config).resolve_to_dataset(
            "resolved",
            vec!["Name".to_string(), "Address".to_string()],
            &records,
            Some(&truths),
        );
        assert_eq!(dataset.num_records(), records.len());
        assert_eq!(dataset.columns.len(), 2);
        // Ground truth flows through to the cells and the cluster goldens.
        let lee_cluster = dataset
            .clusters
            .iter()
            .find(|c| c.rows.iter().any(|r| r.cells[0].observed == "Mary Lee"))
            .unwrap();
        assert!(lee_cluster
            .rows
            .iter()
            .all(|r| r.cells[0].truth == "Mary Lee"));
        assert_eq!(lee_cluster.golden[0], "Mary Lee");
    }

    #[test]
    fn resolve_to_dataset_without_truths_uses_observed_values() {
        let records = vec![RawRecord::new(3, ["a"]), RawRecord::new(4, ["b"])];
        let dataset =
            Resolver::default().resolve_to_dataset("plain", vec!["x".to_string()], &records, None);
        for cluster in &dataset.clusters {
            for row in &cluster.rows {
                assert_eq!(row.cells[0].observed, row.cells[0].truth);
            }
        }
        let sources: Vec<usize> = dataset
            .clusters
            .iter()
            .flat_map(|c| c.rows.iter().map(|r| r.source))
            .collect();
        assert!(sources.contains(&3) && sources.contains(&4));
    }

    #[test]
    #[should_panic(expected = "one truth row per record")]
    fn mismatched_truths_panic() {
        let records = vec![RawRecord::new(0, ["a"])];
        Resolver::default().resolve_to_dataset("bad", vec!["x".to_string()], &records, Some(&[]));
    }

    #[test]
    fn sharded_scoring_is_bit_identical_to_sequential() {
        // Enough overlapping records that the candidate count clears
        // MIN_PARALLEL_PAIRS and sharding actually engages.
        let records: Vec<RawRecord> = (0..120)
            .map(|i| {
                RawRecord::new(
                    i % 3,
                    [
                        format!("shared name{}", i % 40),
                        format!("addr {} st", i % 7),
                    ],
                )
            })
            .collect();
        let config = ResolverConfig {
            threshold: 0.6,
            ..ResolverConfig::default()
        };
        let seq = Resolver::new(config.clone()).with_parallelism(Parallelism::SEQUENTIAL);
        let par = Resolver::new(config).with_parallelism(Parallelism::fixed(4));
        let a = seq.match_pairs(&records);
        let b = par.match_pairs(&records);
        assert!(
            a.len() >= MIN_PARALLEL_PAIRS,
            "workload must engage sharding"
        );
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.a, x.b), (y.a, y.b));
            assert_eq!(x.score.to_bits(), y.score.to_bits());
            assert_eq!(x.is_match, y.is_match);
        }
        assert_eq!(seq.resolve(&records), par.resolve(&records));
    }

    #[test]
    fn decide_score_agrees_with_exact_threshold_decisions() {
        let records = lee_smith_records();
        for threshold in [0.3, 0.5, 0.75, 0.9] {
            let config = ResolverConfig {
                threshold,
                ..ResolverConfig::default()
            };
            let compiled = CompiledRules::compile(&config, 2);
            let mut abandoned = 0;
            for a in &records {
                for b in &records {
                    let exact = compiled.score(a, b);
                    let decided = compiled.decide_score(a, b, threshold, &mut abandoned);
                    if decided.is_finite() {
                        assert_eq!(decided.to_bits(), exact.to_bits());
                    } else {
                        assert!(exact < threshold, "abandoned pair scored {exact}");
                    }
                    assert_eq!(decided >= threshold, exact >= threshold);
                }
            }
        }
    }

    #[test]
    fn resolve_with_early_abandon_matches_thresholded_match_pairs() {
        // Pairs with wildly different lengths provoke actual abandons; the
        // clusters must still equal the exact-scoring path's.
        let mut records = lee_smith_records();
        records.push(RawRecord::new(0, ["M", "9"]));
        records.push(RawRecord::new(
            1,
            ["Mary Lee Extraordinarily Long Name Variant", "9th St"],
        ));
        let resolver = Resolver::new(ResolverConfig {
            threshold: 0.9,
            ..ResolverConfig::default()
        });
        let mut uf = UnionFind::new(records.len());
        for d in resolver.match_pairs(&records) {
            if d.is_match {
                uf.union(d.a, d.b);
            }
        }
        assert_eq!(resolver.resolve(&records), uf.into_groups());
    }

    #[test]
    fn blocking_scheme_variants_all_work() {
        let records = lee_smith_records();
        for scheme in [
            BlockingScheme::Token,
            BlockingScheme::SortedNeighborhood,
            BlockingScheme::Both,
        ] {
            let config = ResolverConfig {
                scheme,
                ..ResolverConfig::default()
            };
            let clusters = Resolver::new(config).resolve(&records);
            let total: usize = clusters.iter().map(Vec::len).sum();
            assert_eq!(total, records.len(), "{scheme:?} must cover every record");
        }
    }
}
