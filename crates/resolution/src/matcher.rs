//! Record-pair matching and the end-to-end resolver.
//!
//! A [`Resolver`] turns a flat collection of [`RawRecord`]s into clusters of
//! duplicates: blocking proposes candidate pairs, each pair is scored by a
//! weighted combination of per-column similarity measures, pairs at or above
//! the match threshold are unioned, and the connected components become the
//! clusters. [`Resolver::resolve_to_dataset`] additionally packages the result
//! as an [`ec_data::Dataset`] so the consolidation pipeline can run directly
//! on resolver output.

use crate::blocking::{sorted_neighborhood_pairs, token_blocking_pairs, BlockingConfig};
use crate::similarity::SimilarityMeasure;
use crate::unionfind::UnionFind;
use ec_data::{Cell, Cluster, Dataset, Row};
use serde::{Deserialize, Serialize};

/// An unclustered input record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawRecord {
    /// The data source the record came from (kept through to the dataset so
    /// that source-reliability truth discovery can use it).
    pub source: usize,
    /// One value per column.
    pub fields: Vec<String>,
}

impl RawRecord {
    /// Creates a record from anything iterable over string-likes.
    pub fn new<I, S>(source: usize, fields: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        RawRecord {
            source,
            fields: fields.into_iter().map(Into::into).collect(),
        }
    }
}

/// How one column contributes to the pairwise match score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColumnRule {
    /// The column index the rule applies to.
    pub column: usize,
    /// The similarity measure to evaluate.
    pub measure: SimilarityMeasure,
    /// The weight of this column in the overall score. Weights are normalized
    /// over the rules of a config, so only their ratios matter.
    pub weight: f64,
}

/// Which blocking scheme proposes candidate pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockingScheme {
    /// Token blocking (records sharing a word token become candidates).
    Token,
    /// Sorted-neighborhood blocking (sliding window over sorted keys).
    SortedNeighborhood,
    /// The union of both schemes' candidates.
    Both,
}

/// Configuration of the resolver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolverConfig {
    /// Per-column scoring rules. When empty, every column is scored with
    /// Jaro–Winkler at equal weight.
    pub rules: Vec<ColumnRule>,
    /// A candidate pair whose weighted score reaches this threshold is
    /// declared a match.
    pub threshold: f64,
    /// Candidate generation scheme.
    pub scheme: BlockingScheme,
    /// Blocking parameters.
    pub blocking: BlockingConfig,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            rules: Vec::new(),
            threshold: 0.75,
            scheme: BlockingScheme::Both,
            blocking: BlockingConfig::default(),
        }
    }
}

/// The outcome of scoring one candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchDecision {
    /// First record index (always less than `b`).
    pub a: usize,
    /// Second record index.
    pub b: usize,
    /// The weighted similarity score in `[0, 1]`.
    pub score: f64,
    /// Whether the score reached the threshold.
    pub is_match: bool,
}

/// The entity resolver.
#[derive(Debug, Clone)]
pub struct Resolver {
    config: ResolverConfig,
}

impl Resolver {
    /// Creates a resolver with the given configuration.
    pub fn new(config: ResolverConfig) -> Self {
        Resolver { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    fn effective_rules(&self, num_columns: usize) -> Vec<ColumnRule> {
        if self.config.rules.is_empty() {
            (0..num_columns)
                .map(|column| ColumnRule {
                    column,
                    measure: SimilarityMeasure::JaroWinkler,
                    weight: 1.0,
                })
                .collect()
        } else {
            self.config
                .rules
                .iter()
                .copied()
                .filter(|r| r.column < num_columns && r.weight > 0.0)
                .collect()
        }
    }

    /// Scores one record pair with the configured rules.
    pub fn score_pair(&self, a: &RawRecord, b: &RawRecord) -> f64 {
        let rules = self.effective_rules(a.fields.len().min(b.fields.len()));
        let total_weight: f64 = rules.iter().map(|r| r.weight).sum();
        if total_weight == 0.0 {
            return 0.0;
        }
        rules
            .iter()
            .map(|rule| {
                rule.weight
                    * rule
                        .measure
                        .score(&a.fields[rule.column], &b.fields[rule.column])
            })
            .sum::<f64>()
            / total_weight
    }

    /// Generates candidate pairs and scores each one. Decisions are returned
    /// in candidate order (sorted by record indices).
    pub fn match_pairs(&self, records: &[RawRecord]) -> Vec<MatchDecision> {
        if records.len() < 2 {
            return Vec::new();
        }
        let fields: Vec<Vec<String>> = records.iter().map(|r| r.fields.clone()).collect();
        let mut candidates = {
            let _span = ec_obs::span!("resolution.blocking", records.len());
            match self.config.scheme {
                BlockingScheme::Token => token_blocking_pairs(&fields, &self.config.blocking),
                BlockingScheme::SortedNeighborhood => {
                    sorted_neighborhood_pairs(&fields, &self.config.blocking)
                }
                BlockingScheme::Both => {
                    let mut pairs = token_blocking_pairs(&fields, &self.config.blocking);
                    pairs.extend(sorted_neighborhood_pairs(&fields, &self.config.blocking));
                    pairs.sort_unstable();
                    pairs.dedup();
                    pairs
                }
            }
        };
        candidates.sort_unstable();
        let _span = ec_obs::span!("resolution.scoring", candidates.len());
        candidates
            .into_iter()
            .map(|(a, b)| {
                let score = self.score_pair(&records[a], &records[b]);
                MatchDecision {
                    a,
                    b,
                    score,
                    is_match: score >= self.config.threshold,
                }
            })
            .collect()
    }

    /// Resolves the records into clusters of record indices (the transitive
    /// closure of the pairwise match decisions). Singleton clusters are kept:
    /// a record that matches nothing is still an entity.
    pub fn resolve(&self, records: &[RawRecord]) -> Vec<Vec<usize>> {
        let mut uf = UnionFind::new(records.len());
        for decision in self.match_pairs(records) {
            if decision.is_match {
                uf.union(decision.a, decision.b);
            }
        }
        uf.into_groups()
    }

    /// Resolves the records and packages the clusters as an
    /// [`ec_data::Dataset`]. `truths`, when provided, supplies the latent true
    /// value of each record's columns (used only for evaluation); otherwise
    /// each cell's truth is set to its observed value.
    ///
    /// # Panics
    /// Panics when `truths` is provided with a length different from
    /// `records`.
    pub fn resolve_to_dataset(
        &self,
        name: &str,
        columns: Vec<String>,
        records: &[RawRecord],
        truths: Option<&[Vec<String>]>,
    ) -> Dataset {
        if let Some(t) = truths {
            assert_eq!(t.len(), records.len(), "one truth row per record required");
        }
        let clusters = self.resolve(records);
        clusters_to_dataset(name, columns, records, clusters, truths)
    }

    /// Streaming entry point: consumes a [`RecordStream`] record-at-a-time,
    /// building blocks and the union-find incrementally (see
    /// [`crate::streaming::StreamingResolver`]), and packages the clusters as
    /// a [`Dataset`] exactly as [`Resolver::resolve_to_dataset`] (with each
    /// cell's truth set to its observed value) would. The produced dataset is
    /// bit-identical to collecting the stream and calling the batch entry
    /// point; only the peak memory differs — the input document is never
    /// materialized and per-block state is bounded by the blocking
    /// configuration's `max_block_size`.
    pub fn resolve_stream<S: ec_data::RecordStream + ?Sized>(
        &self,
        name: &str,
        stream: &mut S,
    ) -> Result<Dataset, ec_data::DatasetIoError> {
        let columns = stream.columns().to_vec();
        let mut builder = crate::streaming::StreamingResolver::new(self);
        while let Some(record) = stream.next_record() {
            let record = record?;
            builder.push(RawRecord {
                source: record.source,
                fields: record.fields,
            });
        }
        Ok(builder.finish(name, columns))
    }
}

/// Packages resolved clusters of record indices as a [`Dataset`] — shared by
/// the batch and streaming entry points so both produce identical output. The
/// golden record of a cluster is unknown at resolution time; the per-column
/// majority of truths serves as the best available label.
pub(crate) fn clusters_to_dataset(
    name: &str,
    columns: Vec<String>,
    records: &[RawRecord],
    clusters: Vec<Vec<usize>>,
    truths: Option<&[Vec<String>]>,
) -> Dataset {
    let mut dataset = Dataset::new(name, columns);
    for member_ids in clusters {
        let rows: Vec<Row> = member_ids
            .iter()
            .map(|&id| {
                let record = &records[id];
                let cells: Vec<Cell> = record
                    .fields
                    .iter()
                    .enumerate()
                    .map(|(col, observed)| Cell {
                        observed: observed.clone(),
                        truth: truths
                            .map(|t| t[id][col].clone())
                            .unwrap_or_else(|| observed.clone()),
                    })
                    .collect();
                Row {
                    source: record.source,
                    cells,
                }
            })
            .collect();
        let num_cols = rows.first().map(|r| r.cells.len()).unwrap_or(0);
        let golden = ec_data::majority_golden(&rows, num_cols);
        dataset.clusters.push(Cluster { rows, golden });
    }
    dataset
}

impl Default for Resolver {
    fn default() -> Self {
        Resolver::new(ResolverConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lee_smith_records() -> Vec<RawRecord> {
        vec![
            RawRecord::new(0, ["Mary Lee", "9 St, 02141 Wisconsin"]),
            RawRecord::new(1, ["M. Lee", "9th St, 02141 WI"]),
            RawRecord::new(2, ["Lee, Mary", "9 Street, 02141 WI"]),
            RawRecord::new(0, ["Smith, James", "5th St, 22701 California"]),
            RawRecord::new(1, ["James Smith", "3rd E Ave, 33990 California"]),
            RawRecord::new(2, ["J. Smith", "3 E Avenue, 33990 CA"]),
            RawRecord::new(0, ["Alice Wonder", "42 Rabbit Hole Ln"]),
        ]
    }

    #[test]
    fn resolver_reconstructs_the_paper_table1_clusters() {
        let config = ResolverConfig {
            rules: vec![
                ColumnRule {
                    column: 0,
                    measure: SimilarityMeasure::Jaccard,
                    weight: 1.0,
                },
                ColumnRule {
                    column: 1,
                    measure: SimilarityMeasure::QgramCosine(2),
                    weight: 1.0,
                },
            ],
            threshold: 0.5,
            ..ResolverConfig::default()
        };
        let clusters = Resolver::new(config).resolve(&lee_smith_records());
        // The Lee records (0,1,2) and Smith records (3,4,5) cluster; Alice is a singleton.
        let lee = clusters.iter().find(|c| c.contains(&0)).unwrap();
        assert!(
            lee.contains(&2),
            "Lee, Mary should join Mary Lee: {clusters:?}"
        );
        let smith = clusters.iter().find(|c| c.contains(&4)).unwrap();
        assert!(
            smith.contains(&3),
            "Smith, James should join James Smith: {clusters:?}"
        );
        assert!(
            clusters.iter().any(|c| c == &vec![6]),
            "Alice must stay a singleton"
        );
        assert!(!lee.contains(&4), "Lees and Smiths must not merge");
    }

    #[test]
    fn score_pair_is_symmetric_and_bounded() {
        // Exact (bitwise) symmetry is load-bearing: the delta resolver's
        // pair-score cache canonicalizes its key by value order, so one
        // cached score must serve both argument orders bit-identically.
        let resolver = Resolver::default();
        let records = lee_smith_records();
        for a in &records {
            for b in &records {
                let s1 = resolver.score_pair(a, b);
                let s2 = resolver.score_pair(b, a);
                assert_eq!(s1, s2, "{:?} vs {:?}", a.fields, b.fields);
                assert!((0.0..=1.0).contains(&s1));
            }
        }
        assert!((resolver.score_pair(&records[0], &records[0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_one_keeps_everything_apart() {
        let config = ResolverConfig {
            threshold: 1.01,
            ..ResolverConfig::default()
        };
        let clusters = Resolver::new(config).resolve(&lee_smith_records());
        assert_eq!(clusters.len(), lee_smith_records().len());
    }

    #[test]
    fn empty_and_single_record_inputs() {
        let resolver = Resolver::default();
        assert!(resolver.resolve(&[]).is_empty());
        assert!(resolver.match_pairs(&[]).is_empty());
        let one = vec![RawRecord::new(0, ["only"])];
        assert_eq!(resolver.resolve(&one), vec![vec![0]]);
    }

    #[test]
    fn match_decisions_report_scores_and_candidates_only() {
        let resolver = Resolver::default();
        let decisions = resolver.match_pairs(&lee_smith_records());
        assert!(!decisions.is_empty());
        for d in &decisions {
            assert!(d.a < d.b);
            assert!((0.0..=1.0).contains(&d.score));
            assert_eq!(d.is_match, d.score >= resolver.config().threshold);
        }
    }

    #[test]
    fn resolve_to_dataset_round_trips_sources_and_truths() {
        let records = lee_smith_records();
        let truths: Vec<Vec<String>> = records
            .iter()
            .map(|r| {
                let name = if r.fields[0].contains("Lee") {
                    "Mary Lee"
                } else if r.fields[0].contains("Smith") {
                    "James Smith"
                } else {
                    "Alice Wonder"
                };
                vec![name.to_string(), r.fields[1].clone()]
            })
            .collect();
        let config = ResolverConfig {
            rules: vec![ColumnRule {
                column: 0,
                measure: SimilarityMeasure::Jaccard,
                weight: 1.0,
            }],
            threshold: 0.45,
            ..ResolverConfig::default()
        };
        let dataset = Resolver::new(config).resolve_to_dataset(
            "resolved",
            vec!["Name".to_string(), "Address".to_string()],
            &records,
            Some(&truths),
        );
        assert_eq!(dataset.num_records(), records.len());
        assert_eq!(dataset.columns.len(), 2);
        // Ground truth flows through to the cells and the cluster goldens.
        let lee_cluster = dataset
            .clusters
            .iter()
            .find(|c| c.rows.iter().any(|r| r.cells[0].observed == "Mary Lee"))
            .unwrap();
        assert!(lee_cluster
            .rows
            .iter()
            .all(|r| r.cells[0].truth == "Mary Lee"));
        assert_eq!(lee_cluster.golden[0], "Mary Lee");
    }

    #[test]
    fn resolve_to_dataset_without_truths_uses_observed_values() {
        let records = vec![RawRecord::new(3, ["a"]), RawRecord::new(4, ["b"])];
        let dataset =
            Resolver::default().resolve_to_dataset("plain", vec!["x".to_string()], &records, None);
        for cluster in &dataset.clusters {
            for row in &cluster.rows {
                assert_eq!(row.cells[0].observed, row.cells[0].truth);
            }
        }
        let sources: Vec<usize> = dataset
            .clusters
            .iter()
            .flat_map(|c| c.rows.iter().map(|r| r.source))
            .collect();
        assert!(sources.contains(&3) && sources.contains(&4));
    }

    #[test]
    #[should_panic(expected = "one truth row per record")]
    fn mismatched_truths_panic() {
        let records = vec![RawRecord::new(0, ["a"])];
        Resolver::default().resolve_to_dataset("bad", vec!["x".to_string()], &records, Some(&[]));
    }

    #[test]
    fn blocking_scheme_variants_all_work() {
        let records = lee_smith_records();
        for scheme in [
            BlockingScheme::Token,
            BlockingScheme::SortedNeighborhood,
            BlockingScheme::Both,
        ] {
            let config = ResolverConfig {
                scheme,
                ..ResolverConfig::default()
            };
            let clusters = Resolver::new(config).resolve(&records);
            let total: usize = clusters.iter().map(Vec::len).sum();
            assert_eq!(total, records.len(), "{scheme:?} must cover every record");
        }
    }
}
