//! Incremental (record-at-a-time) resolution state.
//!
//! The batch entry points ([`Resolver::resolve`],
//! [`Resolver::resolve_to_dataset`]) need the whole record collection in hand
//! before blocking can even start. [`StreamingResolver`] is the ingestion
//! half of resolution turned inside out: records are [`StreamingResolver::push`]ed
//! one at a time — as a CSV reader produces them — and every per-record
//! structure grows incrementally:
//!
//! * **token blocks** are updated with the new record's tokens, with *bounded
//!   per-block memory*: a block that exceeds the configured `max_block_size`
//!   is replaced by an `Oversized` tombstone and its id list is dropped (the
//!   batch path would skip such a block anyway, but only after buffering all
//!   of its ids);
//! * **sorted-neighborhood keys** are appended (one small key per record);
//! * the **union-find** forest grows by one singleton per record.
//!
//! [`StreamingResolver::finish`] then scores exactly the candidate pairs the
//! batch path would have produced and returns a bit-identical
//! [`ec_data::Dataset`]. (Scoring must wait for the end of the stream: whether
//! a token block survives the size cap is only known once every record has
//! arrived, so emitting pairs eagerly could union records the batch path
//! never compares.)

use crate::blocking::blocking_columns;
use crate::matcher::{
    clusters_to_dataset, score_pairs_arc, BlockingScheme, RawRecord, Resolver, ResolverConfig,
};
use crate::tokenize::{normalize_into, words_into, TokenBuf};
use crate::unionfind::UnionFind;
use ec_data::Dataset;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A fast, deterministic hasher for the delta resolver's small fixed-width
/// keys (FxHash-style multiply-fold). The std SipHash default is measurable
/// overhead when a snapshot performs one lookup per candidate pair; scores
/// are values, not untrusted input, so HashDoS hardening buys nothing here.
#[derive(Default)]
struct PairHasher(u64);

impl std::hash::Hasher for PairHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0 ^ u64::from(n)).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

/// [`std::hash::BuildHasher`] for [`PairHasher`] (stateless, deterministic).
#[derive(Clone, Default)]
struct PairHashBuilder;

impl std::hash::BuildHasher for PairHashBuilder {
    type Hasher = PairHasher;

    fn build_hasher(&self) -> PairHasher {
        PairHasher(0xcbf2_9ce4_8422_2325)
    }
}

/// One token block: the ids of the records containing the token, or a
/// tombstone once the block outgrew the configured cap.
enum TokenBlock {
    Ids(Vec<u32>),
    Oversized,
}

/// The per-record incremental blocking state shared by the one-shot
/// [`StreamingResolver`] and the cross-batch [`DeltaResolver`]: the records,
/// the growing union-find forest, and the token blocks / sorted-neighborhood
/// keys every pushed record updates.
struct StreamingState {
    /// The records live behind an `Arc` so that scoring can shard `'static`
    /// tasks over them without copying; while a single owner is pushing,
    /// `Arc::make_mut` mutates in place with no clone.
    records: Arc<Vec<RawRecord>>,
    uf: UnionFind,
    /// Which columns contribute blocking tokens/keys; locked in by the first
    /// record's column count (as in the batch path).
    cols: Vec<usize>,
    token_blocks: HashMap<String, TokenBlock>,
    sn_keys: Vec<(String, u32)>,
    /// Reusable tokenization scratch for [`StreamingState::push`].
    token_buf: TokenBuf,
    key_scratch: String,
}

impl StreamingState {
    fn new() -> Self {
        StreamingState {
            records: Arc::new(Vec::new()),
            uf: UnionFind::new(0),
            cols: Vec::new(),
            token_blocks: HashMap::new(),
            sn_keys: Vec::new(),
            token_buf: TokenBuf::new(),
            key_scratch: String::new(),
        }
    }

    /// Ingests one record, updating blocks and the union-find incrementally.
    fn push(&mut self, config: &ResolverConfig, record: RawRecord) {
        let id = self.uf.push() as u32;
        if self.records.is_empty() {
            self.cols = blocking_columns(&config.blocking, record.fields.len());
        }
        let scheme = config.scheme;
        if matches!(scheme, BlockingScheme::Token | BlockingScheme::Both) {
            let buf = &mut self.token_buf;
            buf.clear();
            for &col in &self.cols {
                words_into(&record.fields[col], buf);
            }
            let distinct = buf.sort_dedup_tokens();
            for t in 0..distinct {
                let token = buf.token(t);
                if let Some(block) = self.token_blocks.get_mut(token) {
                    if let TokenBlock::Ids(ids) = block {
                        ids.push(id);
                        if ids.len() > config.blocking.max_block_size {
                            // Bounded per-block memory: drop the id list.
                            *block = TokenBlock::Oversized;
                        }
                    }
                } else {
                    // A brand-new block only outlives its first record when
                    // the cap allows a block of one.
                    let block = if config.blocking.max_block_size < 1 {
                        TokenBlock::Oversized
                    } else {
                        TokenBlock::Ids(vec![id])
                    };
                    self.token_blocks.insert(token.to_string(), block);
                }
            }
        }
        if matches!(
            scheme,
            BlockingScheme::SortedNeighborhood | BlockingScheme::Both
        ) {
            let mut key = String::new();
            for (i, &c) in self.cols.iter().enumerate() {
                if i > 0 {
                    key.push('\u{1}');
                }
                normalize_into(&record.fields[c], &mut self.key_scratch);
                key.push_str(&self.key_scratch);
            }
            self.sn_keys.push((key, id));
        }
        Arc::make_mut(&mut self.records).push(record);
    }

    /// The candidate pairs of the ingested records — exactly the set the
    /// batch blocking functions would produce, deduplicated, ordered, and
    /// with `a < b`. Sorts `sn_keys` in place (sound: sorting is idempotent
    /// and later pushes append keys that the next call re-sorts) so no
    /// O(records) copy is made at the peak-memory moment.
    fn candidate_pairs(&mut self, config: &ResolverConfig) -> Vec<(u32, u32)> {
        if self.records.len() < 2 {
            return Vec::new();
        }
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        if matches!(config.scheme, BlockingScheme::Token | BlockingScheme::Both) {
            for block in self.token_blocks.values() {
                let TokenBlock::Ids(ids) = block else {
                    continue;
                };
                if ids.len() < 2 {
                    continue;
                }
                // Ids within a block are appended in push order, so they are
                // already ascending — `(a, b)` is canonical without min/max.
                for (i, &a) in ids.iter().enumerate() {
                    for &b in ids.iter().skip(i + 1) {
                        pairs.push((a, b));
                    }
                }
            }
        }
        if matches!(
            config.scheme,
            BlockingScheme::SortedNeighborhood | BlockingScheme::Both
        ) && config.blocking.window >= 2
        {
            self.sn_keys.sort();
            for (i, (_, a)) in self.sn_keys.iter().enumerate() {
                for (_, b) in self
                    .sn_keys
                    .iter()
                    .skip(i + 1)
                    .take(config.blocking.window - 1)
                {
                    pairs.push(((*a).min(*b), (*a).max(*b)));
                }
            }
        }
        // Sort-and-dedup beats a hash set here: the pair list is regenerated
        // on every snapshot, and most blocks emit runs of nearly-sorted pairs.
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

/// Incremental resolution state; see the module docs.
pub struct StreamingResolver<'a> {
    resolver: &'a Resolver,
    state: StreamingState,
}

impl<'a> StreamingResolver<'a> {
    /// Creates empty state for `resolver`'s configuration.
    pub fn new(resolver: &'a Resolver) -> Self {
        StreamingResolver {
            resolver,
            state: StreamingState::new(),
        }
    }

    /// Number of records ingested so far.
    pub fn len(&self) -> usize {
        self.state.records.len()
    }

    /// True when no record has been ingested.
    pub fn is_empty(&self) -> bool {
        self.state.records.is_empty()
    }

    /// Ingests one record, updating blocks and the union-find incrementally.
    pub fn push(&mut self, record: RawRecord) {
        self.state.push(self.resolver.config(), record);
    }

    /// Scores the candidate pairs, closes the clustering transitively, and
    /// packages the result as a [`Dataset`] (each cell's truth is its
    /// observed value, as in [`Resolver::resolve_to_dataset`] without
    /// truths). Bit-identical to the batch path on the same records.
    ///
    /// Scores are unobservable here — only the clustering escapes — so pair
    /// scoring early-abandons sub-threshold pairs and shards across the
    /// worker pool, both of which leave the decisions (and so the dataset)
    /// unchanged.
    pub fn finish(mut self, name: &str, columns: Vec<String>) -> Dataset {
        let pairs = {
            let _span = ec_obs::span!("resolution.blocking");
            self.state.candidate_pairs(self.resolver.config())
        };
        let _span = ec_obs::span!("resolution.scoring", pairs.len());
        let threshold = self.resolver.config().threshold;
        let scores = score_pairs_arc(
            self.resolver.config(),
            self.resolver.parallelism(),
            &self.state.records,
            &pairs,
            Some(threshold),
        );
        let mut uf = self.state.uf;
        for (&(a, b), score) in pairs.iter().zip(&scores) {
            if *score >= threshold {
                uf.union(a as usize, b as usize);
            }
        }
        let clusters = uf.into_groups();
        clusters_to_dataset(name, columns, &self.state.records, clusters, None)
    }
}

/// Cross-batch incremental resolution: the delta ingest path's resolver.
///
/// A [`DeltaResolver`] owns its [`Resolver`] and keeps the streaming state
/// alive *between* batches, so each batch only pays for pushing its own
/// records. [`DeltaResolver::snapshot`] then produces the clustering of
/// everything pushed so far, **bit-identical** to
/// [`Resolver::resolve_stream`] over the concatenated input:
///
/// * the candidate-pair set is regenerated from the live block state on every
///   snapshot — it is *non-monotone* (a token block can outgrow the cap and
///   tombstone pairs away; a sorted-neighborhood window shifts as records
///   insert between old neighbors), so pairs unioned in an earlier snapshot
///   may legitimately vanish, and the union-find for a snapshot is rebuilt
///   from the current pair set rather than carried over;
/// * what *is* carried over is the expensive part: pair **scores**, cached by
///   the two records' value contents ([`Resolver::score_pair`] is a pure,
///   exactly symmetric function of the field strings — record ids would never
///   hit, since new records get new ids; the cache key is order-canonicalized
///   so both argument orders share one entry). At fraction-novel = 0 every
///   regenerated pair hits the cache and a snapshot performs no
///   string-similarity work at all.
pub struct DeltaResolver {
    resolver: Resolver,
    state: StreamingState,
    /// Distinct field vectors, interned: the content key of a record.
    value_ids: HashMap<Vec<String>, u32>,
    /// The value id of each pushed record.
    record_values: Vec<u32>,
    /// `(min(value_id[a], value_id[b]), max(…))` → score. The key is
    /// canonicalized because every [`crate::similarity::SimilarityMeasure`]
    /// is exactly symmetric (integer edit distances; Jaro match and
    /// transposition counts are order-independent and the combining formulas
    /// only rely on commutativity of `+`), so one cached score serves both
    /// argument orders bit-identically — without this, re-ingesting seen
    /// values in a new interleaving re-scores every reversed pair.
    pair_cache: HashMap<(u32, u32), f64, PairHashBuilder>,
    scored_pairs: u64,
}

impl DeltaResolver {
    /// Creates empty state for `config`.
    pub fn new(config: ResolverConfig) -> Self {
        DeltaResolver {
            resolver: Resolver::new(config),
            state: StreamingState::new(),
            value_ids: HashMap::new(),
            record_values: Vec::new(),
            pair_cache: HashMap::default(),
            scored_pairs: 0,
        }
    }

    /// Sets the pair-scoring parallelism (see
    /// [`Resolver::with_parallelism`]). Snapshots are bit-identical at any
    /// setting; only wall-clock time changes.
    pub fn with_parallelism(mut self, parallelism: ec_graph::Parallelism) -> Self {
        self.resolver = self.resolver.with_parallelism(parallelism);
        self
    }

    /// The underlying resolver.
    pub fn resolver(&self) -> &Resolver {
        &self.resolver
    }

    /// Number of records ingested so far (across all batches).
    pub fn len(&self) -> usize {
        self.state.records.len()
    }

    /// True when no record has been ingested.
    pub fn is_empty(&self) -> bool {
        self.state.records.is_empty()
    }

    /// Pair scores computed so far (cache misses); the complement of the
    /// fast-path ratio the delta pipeline reports.
    pub fn scored_pairs(&self) -> u64 {
        self.scored_pairs
    }

    /// Ingests one record.
    pub fn push(&mut self, record: RawRecord) {
        let next = self.value_ids.len() as u32;
        let vid = *self.value_ids.entry(record.fields.clone()).or_insert(next);
        self.record_values.push(vid);
        self.state.push(self.resolver.config(), record);
    }

    /// The clustering of everything pushed so far, packaged as a [`Dataset`]
    /// — bit-identical to [`Resolver::resolve_stream`] over the same records.
    ///
    /// The cache stores **exact** scores (they are observable across
    /// snapshots), so misses are never early-abandoned; they are, however,
    /// scored in parallel: a sequential pass collects the first-occurrence
    /// cache misses in pair order, the misses are exact-scored sharded over
    /// the pool, and the results are inserted back in the same order —
    /// cache contents, `scored_pairs`, and the clustering all end up
    /// identical to the old one-pass loop.
    pub fn snapshot(&mut self, name: &str, columns: Vec<String>) -> Dataset {
        let pairs = {
            let _span = ec_obs::span!("resolution.blocking");
            self.state.candidate_pairs(self.resolver.config())
        };
        let _span = ec_obs::span!("resolution.scoring", pairs.len());
        let threshold = self.resolver.config().threshold;
        let record_values = &self.record_values;
        // Phase 1: the distinct missing value-pair keys, first occurrence
        // wins (exactly the pair `or_insert_with` would have scored).
        let mut miss_keys: Vec<(u32, u32)> = Vec::new();
        let mut miss_pairs: Vec<(u32, u32)> = Vec::new();
        let mut miss_seen: HashSet<(u32, u32), PairHashBuilder> = HashSet::default();
        for &(a, b) in &pairs {
            let (va, vb) = (record_values[a as usize], record_values[b as usize]);
            let key = (va.min(vb), va.max(vb));
            if !self.pair_cache.contains_key(&key) && miss_seen.insert(key) {
                miss_keys.push(key);
                miss_pairs.push((a, b));
            }
        }
        // Phase 2: exact scores for the misses, sharded over the pool.
        let scores = score_pairs_arc(
            self.resolver.config(),
            self.resolver.parallelism(),
            &self.state.records,
            &miss_pairs,
            None,
        );
        // Phase 3: fill the cache in order, then union every pair from it.
        self.scored_pairs += miss_keys.len() as u64;
        for (key, score) in miss_keys.into_iter().zip(scores) {
            self.pair_cache.insert(key, score);
        }
        let mut uf = UnionFind::new(self.state.records.len());
        for &(a, b) in &pairs {
            let (va, vb) = (record_values[a as usize], record_values[b as usize]);
            let key = (va.min(vb), va.max(vb));
            if self.pair_cache[&key] >= threshold {
                uf.union(a as usize, b as usize);
            }
        }
        let clusters = uf.into_groups();
        clusters_to_dataset(name, columns, &self.state.records, clusters, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::BlockingConfig;
    use crate::matcher::ResolverConfig;
    use ec_data::{FlatRecord, RecordStream, VecRecordStream};

    fn sample_records() -> Vec<RawRecord> {
        vec![
            RawRecord::new(0, ["Mary Lee", "9 St, 02141 Wisconsin"]),
            RawRecord::new(1, ["M. Lee", "9th St, 02141 WI"]),
            RawRecord::new(2, ["Lee, Mary", "9 Street, 02141 WI"]),
            RawRecord::new(0, ["Smith, James", "5th St, 22701 California"]),
            RawRecord::new(1, ["James Smith", "3rd E Ave, 33990 California"]),
            RawRecord::new(2, ["J. Smith", "3 E Avenue, 33990 CA"]),
            RawRecord::new(0, ["Alice Wonder", "42 Rabbit Hole Ln"]),
        ]
    }

    fn stream_of(records: &[RawRecord]) -> VecRecordStream {
        VecRecordStream::new(
            vec!["Name".to_string(), "Address".to_string()],
            records
                .iter()
                .map(|r| FlatRecord {
                    source: r.source,
                    fields: r.fields.clone(),
                })
                .collect(),
        )
    }

    #[test]
    fn streaming_matches_batch_for_every_scheme() {
        let records = sample_records();
        for scheme in [
            BlockingScheme::Token,
            BlockingScheme::SortedNeighborhood,
            BlockingScheme::Both,
        ] {
            let resolver = Resolver::new(ResolverConfig {
                scheme,
                threshold: 0.5,
                ..ResolverConfig::default()
            });
            let batch = resolver.resolve_to_dataset(
                "r",
                vec!["Name".to_string(), "Address".to_string()],
                &records,
                None,
            );
            let streamed = resolver
                .resolve_stream("r", &mut stream_of(&records))
                .unwrap();
            assert_eq!(batch, streamed, "{scheme:?}");
        }
    }

    #[test]
    fn streaming_matches_batch_when_blocks_overflow() {
        // Every record shares the "common" token; with a tiny cap that block
        // is dropped in both paths, leaving only the distinctive tokens.
        let records: Vec<RawRecord> = (0..12)
            .map(|i| RawRecord::new(i % 3, [format!("common name{}", i / 2)]))
            .collect();
        let resolver = Resolver::new(ResolverConfig {
            scheme: BlockingScheme::Token,
            blocking: BlockingConfig {
                max_block_size: 4,
                ..BlockingConfig::default()
            },
            ..ResolverConfig::default()
        });
        let mut stream = VecRecordStream::new(
            vec!["Name".to_string()],
            records
                .iter()
                .map(|r| FlatRecord {
                    source: r.source,
                    fields: r.fields.clone(),
                })
                .collect(),
        );
        let streamed = resolver.resolve_stream("r", &mut stream).unwrap();
        let batch = resolver.resolve_to_dataset("r", vec!["Name".to_string()], &records, None);
        assert_eq!(batch, streamed);
        assert!(streamed.clusters.len() > 1, "the common token was dropped");
    }

    #[test]
    fn oversized_blocks_hold_bounded_state() {
        let resolver = Resolver::new(ResolverConfig {
            scheme: BlockingScheme::Token,
            blocking: BlockingConfig {
                max_block_size: 3,
                ..BlockingConfig::default()
            },
            ..ResolverConfig::default()
        });
        let mut builder = StreamingResolver::new(&resolver);
        for i in 0..100 {
            builder.push(RawRecord::new(0, [format!("shared unique{i}")]));
        }
        let oversized = builder
            .state
            .token_blocks
            .values()
            .filter(|b| matches!(b, TokenBlock::Oversized))
            .count();
        assert_eq!(oversized, 1, "the 'shared' block was tombstoned");
        for block in builder.state.token_blocks.values() {
            if let TokenBlock::Ids(ids) = block {
                assert!(ids.len() <= 3);
            }
        }
        assert_eq!(builder.len(), 100);
    }

    #[test]
    fn empty_and_singleton_streams() {
        let resolver = Resolver::default();
        let mut empty = VecRecordStream::new(vec!["x".to_string()], Vec::new());
        let dataset = resolver.resolve_stream("e", &mut empty).unwrap();
        assert!(dataset.clusters.is_empty());
        assert_eq!(dataset.columns, vec!["x"]);

        let mut one = VecRecordStream::new(
            vec!["x".to_string()],
            vec![FlatRecord {
                source: 3,
                fields: vec!["only".to_string()],
            }],
        );
        let dataset = resolver.resolve_stream("s", &mut one).unwrap();
        assert_eq!(dataset.clusters.len(), 1);
        assert_eq!(dataset.clusters[0].rows[0].source, 3);
    }

    #[test]
    fn delta_snapshots_match_one_shot_resolution_at_every_batch_boundary() {
        let records = sample_records();
        let columns = vec!["Name".to_string(), "Address".to_string()];
        for scheme in [
            BlockingScheme::Token,
            BlockingScheme::SortedNeighborhood,
            BlockingScheme::Both,
        ] {
            let config = ResolverConfig {
                scheme,
                threshold: 0.5,
                ..ResolverConfig::default()
            };
            let resolver = Resolver::new(config.clone());
            let mut delta = DeltaResolver::new(config);
            for split in [2usize, 5, records.len()] {
                while delta.len() < split {
                    delta.push(records[delta.len()].clone());
                }
                let snapshot = delta.snapshot("r", columns.clone());
                let one_shot = resolver
                    .resolve_stream("r", &mut stream_of(&records[..split]))
                    .unwrap();
                assert_eq!(snapshot, one_shot, "{scheme:?} split={split}");
            }
        }
    }

    #[test]
    fn delta_snapshots_survive_block_overflow_between_batches() {
        // The "common" block is healthy after the first batch (pairs unioned)
        // and tombstoned after the second: the snapshot must forget those
        // pairs exactly as a one-shot run over the union would.
        let records: Vec<RawRecord> = (0..12)
            .map(|i| RawRecord::new(i % 3, [format!("common name{}", i / 2)]))
            .collect();
        let config = ResolverConfig {
            scheme: BlockingScheme::Token,
            blocking: BlockingConfig {
                max_block_size: 4,
                ..BlockingConfig::default()
            },
            ..ResolverConfig::default()
        };
        let name_stream = |records: &[RawRecord]| {
            VecRecordStream::new(
                vec!["Name".to_string()],
                records
                    .iter()
                    .map(|r| FlatRecord {
                        source: r.source,
                        fields: r.fields.clone(),
                    })
                    .collect(),
            )
        };
        let resolver = Resolver::new(config.clone());
        let mut delta = DeltaResolver::new(config);
        for r in &records[..4] {
            delta.push(r.clone());
        }
        let early = delta.snapshot("r", vec!["Name".to_string()]);
        assert_eq!(
            early,
            resolver
                .resolve_stream("r", &mut name_stream(&records[..4]))
                .unwrap()
        );
        for r in &records[4..] {
            delta.push(r.clone());
        }
        let late = delta.snapshot("r", vec!["Name".to_string()]);
        assert_eq!(
            late,
            resolver
                .resolve_stream("r", &mut name_stream(&records))
                .unwrap()
        );
        assert!(late.clusters.len() > 1, "the common token was dropped");
    }

    #[test]
    fn delta_pair_cache_hits_on_repeated_values() {
        let records = sample_records();
        let mut delta = DeltaResolver::new(ResolverConfig {
            threshold: 0.5,
            ..ResolverConfig::default()
        });
        for r in &records {
            delta.push(r.clone());
        }
        let first = delta.snapshot("r", vec!["Name".to_string(), "Address".to_string()]);
        let scored_once = delta.scored_pairs();
        assert!(scored_once > 0);
        // Re-pushing the same values: the first repetition only scores the
        // genuinely new value pairings (each value against its own duplicate
        // — the cache key is order-canonicalized, so reversed interleavings
        // of *distinct* values all hit). By the second repetition every
        // candidate pair is between warm value contents and the snapshot
        // performs no similarity work at all.
        for r in &records {
            delta.push(r.clone());
        }
        let second = delta.snapshot("r", vec!["Name".to_string(), "Address".to_string()]);
        let scored_twice = delta.scored_pairs();
        assert!(
            scored_twice <= scored_once + records.len() as u64,
            "only self-value pairs may still be cold"
        );
        for r in &records {
            delta.push(r.clone());
        }
        let third = delta.snapshot("r", vec!["Name".to_string(), "Address".to_string()]);
        assert_eq!(
            delta.scored_pairs(),
            scored_twice,
            "all pairs hit the cache"
        );
        assert_eq!(second.stats(0).num_records, 2 * first.stats(0).num_records);
        assert_eq!(third.stats(0).num_records, 3 * first.stats(0).num_records);
    }

    #[test]
    fn stream_errors_propagate() {
        // A flat CSV with a bad source value: the error reaches the caller.
        let text = "source,Name\n0,ok\nbogus,nope\n";
        let mut stream = ec_data::FlatCsvReader::new(text.as_bytes()).unwrap();
        let err = Resolver::default().resolve_stream("r", &mut stream);
        assert!(err.is_err());
        let _ = stream.next_record(); // stream is exhausted after the error
    }
}
