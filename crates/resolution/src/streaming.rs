//! Incremental (record-at-a-time) resolution state.
//!
//! The batch entry points ([`Resolver::resolve`],
//! [`Resolver::resolve_to_dataset`]) need the whole record collection in hand
//! before blocking can even start. [`StreamingResolver`] is the ingestion
//! half of resolution turned inside out: records are [`StreamingResolver::push`]ed
//! one at a time — as a CSV reader produces them — and every per-record
//! structure grows incrementally:
//!
//! * **token blocks** are updated with the new record's tokens, with *bounded
//!   per-block memory*: a block that exceeds the configured `max_block_size`
//!   is replaced by an `Oversized` tombstone and its id list is dropped (the
//!   batch path would skip such a block anyway, but only after buffering all
//!   of its ids);
//! * **sorted-neighborhood keys** are appended (one small key per record);
//! * the **union-find** forest grows by one singleton per record.
//!
//! [`StreamingResolver::finish`] then scores exactly the candidate pairs the
//! batch path would have produced and returns a bit-identical
//! [`ec_data::Dataset`]. (Scoring must wait for the end of the stream: whether
//! a token block survives the size cap is only known once every record has
//! arrived, so emitting pairs eagerly could union records the batch path
//! never compares.)

use crate::blocking::blocking_columns;
use crate::matcher::{clusters_to_dataset, BlockingScheme, RawRecord, Resolver};
use crate::tokenize::{normalize, words};
use crate::unionfind::UnionFind;
use ec_data::Dataset;
use std::collections::{HashMap, HashSet};

/// One token block: the ids of the records containing the token, or a
/// tombstone once the block outgrew the configured cap.
enum TokenBlock {
    Ids(Vec<u32>),
    Oversized,
}

/// Incremental resolution state; see the module docs.
pub struct StreamingResolver<'a> {
    resolver: &'a Resolver,
    records: Vec<RawRecord>,
    uf: UnionFind,
    /// Which columns contribute blocking tokens/keys; locked in by the first
    /// record's column count (as in the batch path).
    cols: Vec<usize>,
    token_blocks: HashMap<String, TokenBlock>,
    sn_keys: Vec<(String, u32)>,
}

impl<'a> StreamingResolver<'a> {
    /// Creates empty state for `resolver`'s configuration.
    pub fn new(resolver: &'a Resolver) -> Self {
        StreamingResolver {
            resolver,
            records: Vec::new(),
            uf: UnionFind::new(0),
            cols: Vec::new(),
            token_blocks: HashMap::new(),
            sn_keys: Vec::new(),
        }
    }

    /// Number of records ingested so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no record has been ingested.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Ingests one record, updating blocks and the union-find incrementally.
    pub fn push(&mut self, record: RawRecord) {
        let config = self.resolver.config();
        let id = self.uf.push() as u32;
        if self.records.is_empty() {
            self.cols = blocking_columns(&config.blocking, record.fields.len());
        }
        let scheme = config.scheme;
        if matches!(scheme, BlockingScheme::Token | BlockingScheme::Both) {
            let mut seen: HashSet<String> = HashSet::new();
            for &col in &self.cols {
                for token in words(&record.fields[col]) {
                    if !seen.insert(token.clone()) {
                        continue;
                    }
                    let block = self
                        .token_blocks
                        .entry(token)
                        .or_insert_with(|| TokenBlock::Ids(Vec::new()));
                    if let TokenBlock::Ids(ids) = block {
                        ids.push(id);
                        if ids.len() > config.blocking.max_block_size {
                            // Bounded per-block memory: drop the id list.
                            *block = TokenBlock::Oversized;
                        }
                    }
                }
            }
        }
        if matches!(
            scheme,
            BlockingScheme::SortedNeighborhood | BlockingScheme::Both
        ) {
            let key = self
                .cols
                .iter()
                .map(|&c| normalize(&record.fields[c]))
                .collect::<Vec<_>>()
                .join("\u{1}");
            self.sn_keys.push((key, id));
        }
        self.records.push(record);
    }

    /// The candidate pairs of the ingested records — exactly the set the
    /// batch blocking functions would produce, deduplicated, ordered, and
    /// with `a < b`. Sorts `sn_keys` in place (sound: the keys are only ever
    /// consumed here, at the end of the stream) so no O(records) copy is made
    /// at the peak-memory moment.
    fn candidate_pairs(&mut self) -> Vec<(usize, usize)> {
        if self.records.len() < 2 {
            return Vec::new();
        }
        let config = self.resolver.config();
        let mut pairs: HashSet<(usize, usize)> = HashSet::new();
        if matches!(config.scheme, BlockingScheme::Token | BlockingScheme::Both) {
            for block in self.token_blocks.values() {
                let TokenBlock::Ids(ids) = block else {
                    continue;
                };
                if ids.len() < 2 {
                    continue;
                }
                for (i, &a) in ids.iter().enumerate() {
                    for &b in ids.iter().skip(i + 1) {
                        let (a, b) = (a as usize, b as usize);
                        pairs.insert((a.min(b), a.max(b)));
                    }
                }
            }
        }
        if matches!(
            config.scheme,
            BlockingScheme::SortedNeighborhood | BlockingScheme::Both
        ) && config.blocking.window >= 2
        {
            self.sn_keys.sort();
            for (i, (_, a)) in self.sn_keys.iter().enumerate() {
                for (_, b) in self
                    .sn_keys
                    .iter()
                    .skip(i + 1)
                    .take(config.blocking.window - 1)
                {
                    let (a, b) = (*a as usize, *b as usize);
                    pairs.insert((a.min(b), a.max(b)));
                }
            }
        }
        let mut out: Vec<(usize, usize)> = pairs.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Scores the candidate pairs, closes the clustering transitively, and
    /// packages the result as a [`Dataset`] (each cell's truth is its
    /// observed value, as in [`Resolver::resolve_to_dataset`] without
    /// truths). Bit-identical to the batch path on the same records.
    pub fn finish(mut self, name: &str, columns: Vec<String>) -> Dataset {
        let pairs = self.candidate_pairs();
        let threshold = self.resolver.config().threshold;
        let mut uf = self.uf;
        for (a, b) in pairs {
            if self.resolver.score_pair(&self.records[a], &self.records[b]) >= threshold {
                uf.union(a, b);
            }
        }
        let clusters = uf.into_groups();
        clusters_to_dataset(name, columns, &self.records, clusters, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::BlockingConfig;
    use crate::matcher::ResolverConfig;
    use ec_data::{FlatRecord, RecordStream, VecRecordStream};

    fn sample_records() -> Vec<RawRecord> {
        vec![
            RawRecord::new(0, ["Mary Lee", "9 St, 02141 Wisconsin"]),
            RawRecord::new(1, ["M. Lee", "9th St, 02141 WI"]),
            RawRecord::new(2, ["Lee, Mary", "9 Street, 02141 WI"]),
            RawRecord::new(0, ["Smith, James", "5th St, 22701 California"]),
            RawRecord::new(1, ["James Smith", "3rd E Ave, 33990 California"]),
            RawRecord::new(2, ["J. Smith", "3 E Avenue, 33990 CA"]),
            RawRecord::new(0, ["Alice Wonder", "42 Rabbit Hole Ln"]),
        ]
    }

    fn stream_of(records: &[RawRecord]) -> VecRecordStream {
        VecRecordStream::new(
            vec!["Name".to_string(), "Address".to_string()],
            records
                .iter()
                .map(|r| FlatRecord {
                    source: r.source,
                    fields: r.fields.clone(),
                })
                .collect(),
        )
    }

    #[test]
    fn streaming_matches_batch_for_every_scheme() {
        let records = sample_records();
        for scheme in [
            BlockingScheme::Token,
            BlockingScheme::SortedNeighborhood,
            BlockingScheme::Both,
        ] {
            let resolver = Resolver::new(ResolverConfig {
                scheme,
                threshold: 0.5,
                ..ResolverConfig::default()
            });
            let batch = resolver.resolve_to_dataset(
                "r",
                vec!["Name".to_string(), "Address".to_string()],
                &records,
                None,
            );
            let streamed = resolver
                .resolve_stream("r", &mut stream_of(&records))
                .unwrap();
            assert_eq!(batch, streamed, "{scheme:?}");
        }
    }

    #[test]
    fn streaming_matches_batch_when_blocks_overflow() {
        // Every record shares the "common" token; with a tiny cap that block
        // is dropped in both paths, leaving only the distinctive tokens.
        let records: Vec<RawRecord> = (0..12)
            .map(|i| RawRecord::new(i % 3, [format!("common name{}", i / 2)]))
            .collect();
        let resolver = Resolver::new(ResolverConfig {
            scheme: BlockingScheme::Token,
            blocking: BlockingConfig {
                max_block_size: 4,
                ..BlockingConfig::default()
            },
            ..ResolverConfig::default()
        });
        let mut stream = VecRecordStream::new(
            vec!["Name".to_string()],
            records
                .iter()
                .map(|r| FlatRecord {
                    source: r.source,
                    fields: r.fields.clone(),
                })
                .collect(),
        );
        let streamed = resolver.resolve_stream("r", &mut stream).unwrap();
        let batch = resolver.resolve_to_dataset("r", vec!["Name".to_string()], &records, None);
        assert_eq!(batch, streamed);
        assert!(streamed.clusters.len() > 1, "the common token was dropped");
    }

    #[test]
    fn oversized_blocks_hold_bounded_state() {
        let resolver = Resolver::new(ResolverConfig {
            scheme: BlockingScheme::Token,
            blocking: BlockingConfig {
                max_block_size: 3,
                ..BlockingConfig::default()
            },
            ..ResolverConfig::default()
        });
        let mut builder = StreamingResolver::new(&resolver);
        for i in 0..100 {
            builder.push(RawRecord::new(0, [format!("shared unique{i}")]));
        }
        let oversized = builder
            .token_blocks
            .values()
            .filter(|b| matches!(b, TokenBlock::Oversized))
            .count();
        assert_eq!(oversized, 1, "the 'shared' block was tombstoned");
        for block in builder.token_blocks.values() {
            if let TokenBlock::Ids(ids) = block {
                assert!(ids.len() <= 3);
            }
        }
        assert_eq!(builder.len(), 100);
    }

    #[test]
    fn empty_and_singleton_streams() {
        let resolver = Resolver::default();
        let mut empty = VecRecordStream::new(vec!["x".to_string()], Vec::new());
        let dataset = resolver.resolve_stream("e", &mut empty).unwrap();
        assert!(dataset.clusters.is_empty());
        assert_eq!(dataset.columns, vec!["x"]);

        let mut one = VecRecordStream::new(
            vec!["x".to_string()],
            vec![FlatRecord {
                source: 3,
                fields: vec!["only".to_string()],
            }],
        );
        let dataset = resolver.resolve_stream("s", &mut one).unwrap();
        assert_eq!(dataset.clusters.len(), 1);
        assert_eq!(dataset.clusters[0].rows[0].source, 3);
    }

    #[test]
    fn stream_errors_propagate() {
        // A flat CSV with a bad source value: the error reaches the caller.
        let text = "source,Name\n0,ok\nbogus,nope\n";
        let mut stream = ec_data::FlatCsvReader::new(text.as_bytes()).unwrap();
        let err = Resolver::default().resolve_stream("r", &mut stream);
        assert!(err.is_err());
        let _ = stream.next_record(); // stream is exhausted after the error
    }
}
