//! # ec-resolution — entity resolution substrate
//!
//! The paper's pipeline *consumes* the output of entity resolution: "Entity
//! consolidation takes as input a collection of clusters, where each cluster
//! contains a set of duplicate records" (Section 1). The authors point to
//! systems such as Tamr, Magellan and DataCivilizer for producing those
//! clusters. So that this repository is usable end-to-end on raw (unclustered)
//! records, this crate implements that substrate from scratch:
//!
//! * [`tokenize`] — normalization, word and q-gram tokenizers, plus the
//!   scratch-based variants ([`tokenize::TokenBuf`], [`tokenize::words_into`])
//!   the hot paths use;
//! * [`similarity`] — edit distance, Damerau–Levenshtein, Jaro / Jaro–Winkler,
//!   Jaccard and q-gram cosine similarity, implemented as allocation-free
//!   bit-parallel kernels with threshold-aware early-abandon entry points;
//! * [`reference`] — the pre-rewrite textbook kernels, frozen verbatim as
//!   differential test references and benchmark baselines;
//! * [`blocking`] — token blocking and sorted-neighborhood candidate
//!   generation so that resolution does not need to compare all `O(n²)` pairs;
//! * [`unionfind`] — a disjoint-set forest used to turn matching pairs into
//!   clusters;
//! * [`matcher`] — the record-pair matcher (per-column similarity measures,
//!   weights, and a match threshold) and the [`matcher::Resolver`] that ties
//!   everything together and emits an [`ec_data::Dataset`] ready for the
//!   consolidation pipeline;
//! * [`streaming`] — the record-at-a-time ingestion path:
//!   [`matcher::Resolver::resolve_stream`] consumes an
//!   [`ec_data::RecordStream`] and builds blocks and the union-find
//!   incrementally with bounded per-block memory, producing output
//!   bit-identical to the batch path.
//!
//! The design mirrors the classical match–cluster architecture surveyed by
//! Elmagarmid et al. (cited as [18] in the paper): candidate generation via
//! blocking, pairwise similarity scoring, thresholding, and transitive
//! closure.
//!
//! ```
//! use ec_resolution::prelude::*;
//!
//! let records = vec![
//!     RawRecord::new(0, ["Mary Lee", "9 St, 02141 Wisconsin"]),
//!     RawRecord::new(1, ["M. Lee", "9th St, 02141 WI"]),
//!     RawRecord::new(2, ["James Smith", "3rd E Ave, 33990 California"]),
//!     RawRecord::new(0, ["Smith, James", "5th St, 22701 California"]),
//! ];
//! let resolver = Resolver::new(ResolverConfig::default());
//! let clusters = resolver.resolve(&records);
//! assert!(!clusters.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod matcher;
pub mod reference;
pub mod similarity;
pub mod streaming;
pub mod tokenize;
pub mod unionfind;

pub use blocking::{sorted_neighborhood_pairs, token_blocking_pairs, BlockingConfig};
pub use ec_graph::Parallelism;
pub use matcher::{
    BlockingScheme, ColumnRule, CompiledRules, MatchDecision, RawRecord, Resolver, ResolverConfig,
};
pub use similarity::{
    damerau_levenshtein, jaccard, jaro, jaro_winkler, levenshtein, normalized_levenshtein,
    qgram_cosine, take_kernel_path_counts, SimilarityMeasure, EARLY_ABANDON_MARGIN,
};
pub use streaming::{DeltaResolver, StreamingResolver};
pub use tokenize::{normalize, normalize_into, qgrams, words, words_into, TokenBuf};
pub use unionfind::UnionFind;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use crate::blocking::BlockingConfig;
    pub use crate::matcher::{ColumnRule, RawRecord, Resolver, ResolverConfig};
    pub use crate::similarity::SimilarityMeasure;
    pub use crate::streaming::{DeltaResolver, StreamingResolver};
}
