//! The accept loop and per-connection request loop, shared by the
//! single-node [`Server`](crate::Server) and the [`Router`](crate::Router).
//!
//! Both services speak the same HTTP/1.1 subset with the same keep-alive,
//! drain and timeout rules; they differ only in *what* a request does
//! ([`Service::dispatch`]) and *where* a connection job runs
//! ([`Service::execute`]): the server handles connections as detached jobs
//! on the CPU-sized shared worker pool (handlers *are* the CPU work), while
//! the router — whose handlers mostly block on backend sockets — spawns a
//! plain thread per connection so relay I/O can never starve the pool the
//! backends compute on.
//!
//! The loop also enforces the connection cap: when a service reports a
//! [`Service::max_connections`] bound and that many connection jobs are
//! already active, new connections are rejected inline on the accept thread
//! with `503` + `Retry-After` — bounded, observable backpressure instead of
//! an unbounded queue of parked jobs.

use crate::http::{self, Persistence, Request};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a connection may sit idle mid-request before the handler gives
/// up on it.
pub(crate) const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// How long a connection may sit idle between requests (and how long a new
/// connection gets to produce its first byte) before it is closed. Idle
/// waiting happens on a parked watcher thread, not on a worker — see
/// [`KEEPALIVE_GRACE`].
pub(crate) const HEAD_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// How long a connection job waits *on its worker* for the next request
/// before parking the connection and releasing the worker. A client driving
/// the connection in a tight loop answers well within this grace, so hot
/// connections never pay the park/resume round-trip; a connection that has
/// gone quiet stops pinning a worker after one grace period. Without this
/// cutoff, a handful of idle keep-alive connections monopolize the
/// CPU-sized pool for up to [`HEAD_READ_TIMEOUT`] each — on small machines
/// that starves every other connection (and the health probes watching the
/// process).
pub(crate) const KEEPALIVE_GRACE: Duration = Duration::from_millis(1);

/// How many requests one connection may serve per executor turn before its
/// job re-queues itself. A connection hot enough to always have the next
/// request waiting would otherwise never leave its serve loop — on a small
/// worker pool that starves every other connection (most damagingly the
/// health probes, whose timeout then reads as a dead backend). Bounding the
/// turn keeps the amortized re-queue cost negligible while capping how long
/// any connection can monopolize a worker.
const MAX_REQUESTS_PER_TURN: usize = 8;

/// Cap on how many unread request-body bytes are drained before closing.
/// Draining avoids a TCP RST racing the response out of the client's
/// receive buffer when a handler rejects a request without reading its
/// body; the cap bounds the work a garbage request can cause.
pub(crate) const DRAIN_CAP: u64 = 64 * 1024 * 1024;

/// The `Retry-After` seconds advertised on connection-cap rejections.
const RETRY_AFTER_SECS: u32 = 1;

/// A handler failure that still has a clean HTTP answer.
pub(crate) struct HttpFailure {
    pub(crate) status: u16,
    pub(crate) message: String,
}

impl HttpFailure {
    pub(crate) fn new(status: u16, message: impl Into<String>) -> Self {
        HttpFailure {
            status,
            message: message.into(),
        }
    }
}

pub(crate) type HandlerResult = Result<(), HttpFailure>;

/// The streamed request body handed to [`Service::dispatch`].
pub(crate) type BodyReader<'a> = http::LimitedReader<&'a mut BufReader<TcpStream>>;

/// Stop/statistics state every service embeds; the connection loop reads the
/// stop flag and counts requests and active connections through it.
pub(crate) struct Lifecycle {
    pub(crate) addr: SocketAddr,
    pub(crate) stop: AtomicBool,
    pub(crate) requests: AtomicUsize,
    pub(crate) active_connections: AtomicUsize,
}

impl Lifecycle {
    pub(crate) fn new(addr: SocketAddr) -> Self {
        Lifecycle {
            addr,
            stop: AtomicBool::new(false),
            requests: AtomicUsize::new(0),
            active_connections: AtomicUsize::new(0),
        }
    }

    /// Requests a graceful stop and wakes the accept loop with a throwaway
    /// connection.
    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
    }

    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// What a concrete service plugs into the shared connection loop.
pub(crate) trait Service: Send + Sync + Sized + 'static {
    /// The embedded stop/statistics state.
    fn lifecycle(&self) -> &Lifecycle;

    /// The `service` label this service's requests carry in the metrics
    /// registry (`"serve"`, `"router"`, …).
    fn metrics_service() -> &'static str;

    /// Maximum concurrent connection jobs (0 = unbounded). Connections over
    /// the cap are rejected with `503` before a job is spawned.
    fn max_connections(&self) -> usize {
        0
    }

    /// Runs one connection's job on the service's executor (pool job,
    /// dedicated thread, …). The job owns its `ConnectionGuard`, so the
    /// active count drops even if the job panics and its runner unwinds.
    fn execute(&self, job: Box<dyn FnOnce() + Send + 'static>);

    /// Handles one parsed request. `body` streams the declared request body
    /// off the socket; unread bytes are drained by the loop afterwards.
    fn dispatch(
        this: &Arc<Self>,
        request: &Request,
        has_body: bool,
        persistence: Persistence,
        body: &mut BodyReader<'_>,
        writer: &mut BufWriter<TcpStream>,
    ) -> HandlerResult;
}

/// Decrements the active-connection count when a connection job ends,
/// however it ends.
struct ConnectionGuard<S: Service>(Arc<S>);

impl<S: Service> Drop for ConnectionGuard<S> {
    fn drop(&mut self) {
        self.0
            .lifecycle()
            .active_connections
            .fetch_sub(1, Ordering::Relaxed);
    }
}

/// Parks an idle connection on a watcher thread that blocks in a 1-byte
/// `MSG_PEEK` — detection is kernel-immediate and costs no worker. When the
/// next request head starts arriving, the connection re-enters the
/// executor as a fresh job; EOF, a socket error, the idle allowance
/// ([`HEAD_READ_TIMEOUT`]) expiring, or a shutdown in the meantime closes
/// it. A blocked thread per idle connection is the honest std-only stand-in
/// for readiness polling: its stack is lazily committed, and the
/// alternative — idling on a pool worker — is what starves small pools.
///
/// The watcher owns the connection's [`ConnectionGuard`], so however the
/// park ends the active-connection count stays balanced (and a parked
/// connection still counts against [`Service::max_connections`], exactly as
/// it did when idle waiting happened on-worker).
fn park_connection<S: Service>(service: &Arc<S>, stream: TcpStream, guard: ConnectionGuard<S>) {
    let svc = Arc::clone(service);
    if stream.set_read_timeout(Some(HEAD_READ_TIMEOUT)).is_err() {
        return drop(guard);
    }
    let spawned = std::thread::Builder::new()
        .name("ec-conn-idle".to_string())
        .spawn(move || {
            let mut probe = [0u8; 1];
            match stream.peek(&mut probe) {
                Ok(1..) if !svc.lifecycle().stopping() => spawn_connection(&svc, stream, guard),
                // EOF, timeout, error or shutdown: close by dropping.
                _ => drop(guard),
            }
        });
    // Out of threads: drop the closure, closing the connection and its guard.
    drop(spawned);
}

/// Accepts connections until the lifecycle's stop flag is raised, spawning
/// one job per connection through [`Service::execute`] and rejecting over
/// the [`Service::max_connections`] cap inline.
pub(crate) fn run_accept_loop<S: Service>(
    listener: TcpListener,
    service: Arc<S>,
) -> io::Result<()> {
    for conn in listener.incoming() {
        if service.lifecycle().stopping() {
            break;
        }
        let stream = match conn {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let cap = service.max_connections();
        if cap > 0
            && service
                .lifecycle()
                .active_connections
                .load(Ordering::Relaxed)
                >= cap
        {
            reject_over_capacity(stream, cap);
            continue;
        }
        service
            .lifecycle()
            .active_connections
            .fetch_add(1, Ordering::Relaxed);
        let guard = ConnectionGuard(Arc::clone(&service));
        spawn_connection(&service, stream, guard);
    }
    Ok(())
}

/// Runs one connection as a job on the service's executor. When the
/// connection goes idle between requests it is parked instead of pinning
/// its worker (the watcher re-enters here once the next request head starts
/// arriving); when it is still hot after a full turn it re-queues behind
/// whatever else is waiting for a worker. The guard rides along through
/// every park/yield cycle.
fn spawn_connection<S: Service>(service: &Arc<S>, stream: TcpStream, guard: ConnectionGuard<S>) {
    let svc = Arc::clone(service);
    service.execute(Box::new(move || match handle_connection(stream, &svc) {
        Turn::Close => drop(guard),
        Turn::Idle(idle) => park_connection(&svc, idle, guard),
        Turn::Yield(hot) => spawn_connection(&svc, hot, guard),
    }));
}

/// Answers `503` + `Retry-After` on the accept thread. The write is bounded
/// by a short timeout so a slow client cannot stall accepting; the body is
/// one small flat write that fits any socket send buffer.
fn reject_over_capacity(stream: TcpStream, cap: usize) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut writer = BufWriter::new(stream);
    let _ = http::write_response(
        &mut writer,
        503,
        "text/plain",
        &[("Retry-After".to_string(), RETRY_AFTER_SECS.to_string())],
        Persistence::Close,
        format!("server busy: {cap} connections already active\n").as_bytes(),
    );
}

/// How one connection's executor turn ended.
enum Turn {
    /// Closed, errored, or told to close — the connection is finished.
    Close,
    /// Went quiet between requests: park the stream on a watcher.
    Idle(TcpStream),
    /// Still has requests arriving after a full turn: re-queue it so other
    /// connections (and the health probes) get a worker.
    Yield(TcpStream),
}

/// Serves requests off one connection until it closes, errors, goes idle —
/// in which case the still-good stream is handed back for off-worker
/// parking — or exhausts its turn and yields.
fn handle_connection<S: Service>(stream: TcpStream, service: &Arc<S>) -> Turn {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return Turn::Close;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::with_capacity(8 * 1024, write_half);
    let mut served = 0usize;
    // One iteration per request: the connection is reused for the next
    // request whenever the client asked to keep it alive and this request
    // ended cleanly (responses are always self-delimiting, so nothing else
    // gates reuse). Errors close the connection — the simple, safe answer.
    loop {
        // Wait only [`KEEPALIVE_GRACE`] on-worker for the next head to start
        // arriving; an idle connection parks instead. The peek keeps the
        // stream intact — parking with partially read head bytes would lose
        // them — and once a head HAS started, [`HEAD_READ_TIMEOUT`] bounds
        // how long its delivery may hold the worker. (A non-empty buffer
        // means a pipelined request is already in hand: serve it — parking
        // or yielding would drop the buffered bytes.)
        if reader.buffer().is_empty() {
            let _ = reader.get_ref().set_read_timeout(Some(KEEPALIVE_GRACE));
            match reader.get_ref().peek(&mut [0u8; 1]) {
                // Clean hangup between requests.
                Ok(0) => return Turn::Close,
                Ok(_) if served >= MAX_REQUESTS_PER_TURN => {
                    return Turn::Yield(reader.into_inner());
                }
                Ok(_) => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Idle: the buffer is empty, so the raw stream carries
                    // the whole connection state.
                    return Turn::Idle(reader.into_inner());
                }
                Err(_) => return Turn::Close,
            }
        }
        let _ = reader.get_ref().set_read_timeout(Some(HEAD_READ_TIMEOUT));
        let request = match http::read_request(&mut reader) {
            Ok(Some(request)) => request,
            // Clean hangup between requests.
            Ok(None) => return Turn::Close,
            Err(e) => {
                // A kept-alive connection hanging up mid-wait is a normal
                // end, not a protocol error worth answering.
                if e.kind() != io::ErrorKind::WouldBlock && e.kind() != io::ErrorKind::TimedOut {
                    let _ = http::write_response(
                        &mut writer,
                        400,
                        "text/plain",
                        &[],
                        Persistence::Close,
                        format!("bad request: {e}\n").as_bytes(),
                    );
                }
                return Turn::Close;
            }
        };
        let _ = reader.get_ref().set_read_timeout(Some(READ_TIMEOUT));
        service.lifecycle().requests.fetch_add(1, Ordering::Relaxed);
        served += 1;
        let declared_length = match request.content_length() {
            Ok(length) => length,
            Err(e) => {
                let _ = http::write_response(
                    &mut writer,
                    400,
                    "text/plain",
                    &[],
                    Persistence::Close,
                    format!("{e}\n").as_bytes(),
                );
                return Turn::Close;
            }
        };
        // Decide the advertised persistence *before* any handler writes a
        // response head: a body too big to drain (should the handler leave
        // it unread) forfeits reuse, and advertising keep-alive only to hang
        // up afterwards would leave an honoring client talking to a closed
        // socket.
        let persistence = if request.keep_alive() && declared_length.unwrap_or(0) <= DRAIN_CAP {
            Persistence::KeepAlive
        } else {
            Persistence::Close
        };
        let mut body = http::LimitedReader::new(&mut reader, declared_length.unwrap_or(0));
        let dispatched = Instant::now();
        let outcome = S::dispatch(
            service,
            &request,
            declared_length.is_some(),
            persistence,
            &mut body,
            &mut writer,
        );
        record_request(
            S::metrics_service(),
            &request.path,
            match &outcome {
                Ok(()) => 200,
                Err(failure) => failure.status,
            },
            dispatched.elapsed(),
        );
        // Drain whatever of the declared body the handler never read:
        // closing with unread bytes in the receive queue makes the kernel
        // send RST, which can flush the response right out of the peer's
        // buffer — and a kept-alive connection needs the stream positioned
        // at the next request head anyway. The cap bounds the work a garbage
        // request can cause; an undrainable body forfeits reuse.
        let leftover = body.remaining();
        let mut reusable = leftover <= DRAIN_CAP;
        if leftover > 0 {
            let drain = leftover.min(DRAIN_CAP);
            match std::io::copy(
                &mut Read::by_ref(&mut body).take(drain),
                &mut std::io::sink(),
            ) {
                Ok(n) if n == drain => {}
                _ => reusable = false,
            }
        }
        if let Err(failure) = outcome {
            // Best effort: if the response head already went out this writes
            // into the body and the client sees a truncated chunked stream,
            // which is the correct failure signal mid-stream.
            let _ = http::write_response(
                &mut writer,
                failure.status,
                "text/plain",
                &[],
                Persistence::Close,
                format!("{}\n", failure.message).as_bytes(),
            );
            return Turn::Close;
        }
        if writer.flush().is_err()
            || persistence == Persistence::Close
            || !reusable
            || service.lifecycle().stopping()
        {
            return Turn::Close;
        }
    }
}

/// Folds one finished request into the process-wide metrics registry:
/// per-endpoint request count and handler latency, plus a status-class
/// count. The status is the *handler outcome* — a handler that writes its
/// own non-200 head and returns `Ok` (the router's degraded `/healthz`)
/// counts as `2xx` here; failures carry their real status. Unroutable paths
/// (404/405) collapse into one `other` series so a scanner cannot mint
/// unbounded label values.
fn record_request(service: &'static str, path: &str, status: u16, elapsed: Duration) {
    let endpoint = if status == 404 || status == 405 {
        "other"
    } else {
        path
    };
    ec_obs::counter_with(
        "ec_http_requests_total",
        "Requests handled, by service and endpoint.",
        &[("endpoint", endpoint), ("service", service)],
    )
    .inc();
    let class = match status / 100 {
        2 => "2xx",
        3 => "3xx",
        4 => "4xx",
        _ => "5xx",
    };
    ec_obs::counter_with(
        "ec_http_responses_total",
        "Handler outcomes by status class.",
        &[("class", class), ("service", service)],
    )
    .inc();
    ec_obs::histogram_with(
        "ec_http_request_seconds",
        "Wall time from parsed request head to handler completion.",
        ec_obs::Unit::Seconds,
        ec_obs::LATENCY_BUCKETS_US,
        &[("endpoint", endpoint), ("service", service)],
    )
    .observe_duration(elapsed);
}
