//! A hand-rolled, std-only HTTP/1.1 subset.
//!
//! The service needs exactly four things from HTTP: a request line with a
//! query string, `Content-Length`-delimited request bodies it can *stream*
//! (CSV records are parsed straight off the socket), chunked responses so CSV
//! can be written cluster-at-a-time without knowing the total size, and
//! chunked **trailers** so apply statistics can follow a streamed body. No
//! external dependency provides a smaller attack surface than ~300 lines of
//! `TcpStream` plumbing, and nothing here is async — connections are handled
//! by the shared worker pool.
//!
//! Both sides of the protocol live here: the server-side [`Request`] parser
//! and [`ChunkedWriter`], and the client-side [`request`]/[`read_response`]
//! used by the `serve_probe` binary, the CI smoke job and the integration
//! tests (std-only clients, per the repo's no-new-dependencies rule).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Cap on one header line (and the request line).
const MAX_LINE: usize = 16 * 1024;
/// Cap on the number of headers per message.
const MAX_HEADERS: usize = 100;

/// Header `(name, value)` pairs as parsed off the wire, names lowercased.
pub type Headers = Vec<(String, String)>;

/// A parsed request head (the body stays on the socket for streaming).
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method.
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// The request target exactly as received (path plus raw query string) —
    /// what a proxy forwards so the upstream sees identical bytes.
    pub raw_target: String,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// True for `HTTP/1.1` (and later 1.x) requests, which default to
    /// persistent connections; `HTTP/1.0` defaults to close.
    pub http11: bool,
}

impl Request {
    /// The first query parameter named `key`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The first header named `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The declared body length, if any. A message with more than one
    /// `Content-Length` header is rejected outright — even when the copies
    /// agree — because duplicate framing headers are the classic request
    /// smuggling vector: a proxy that picks the first and a server that picks
    /// the second disagree on where this request ends and the next begins.
    pub fn content_length(&self) -> io::Result<Option<u64>> {
        let mut values = self
            .headers
            .iter()
            .filter(|(k, _)| k == "content-length")
            .map(|(_, v)| v.as_str());
        let Some(first) = values.next() else {
            return Ok(None);
        };
        if values.next().is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "multiple Content-Length headers",
            ));
        }
        first
            .trim()
            .parse()
            .map(Some)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length header"))
    }

    /// Whether the client asked to keep the connection open after this
    /// request: the HTTP/1.1 default unless `Connection: close`, opt-in via
    /// `Connection: keep-alive` for HTTP/1.0.
    pub fn keep_alive(&self) -> bool {
        let connection = self.header("connection").unwrap_or("");
        let mentions = |token: &str| {
            connection
                .split(',')
                .any(|t| t.trim().eq_ignore_ascii_case(token))
        };
        if self.http11 {
            !mentions("close")
        } else {
            mentions("keep-alive")
        }
    }
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

/// Reads one `\r\n`-terminated line, enforcing [`MAX_LINE`]. Returns `None`
/// on clean EOF before any byte.
fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut raw = Vec::new();
    let mut limited = reader.take(MAX_LINE as u64 + 1);
    let n = limited.read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Ok(None);
    }
    if raw.len() > MAX_LINE {
        return Err(bad("header line too long"));
    }
    while raw.last() == Some(&b'\n') || raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| bad("header line is not UTF-8"))
}

/// Minimal `%XX` (and `+` as space) decoding for query parameters.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses a request head off the reader. `Ok(None)` means the peer closed
/// the connection before sending anything.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(bad("malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let http11 = version != "HTTP/1.0";
    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_text
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader)? else {
            return Err(bad("connection closed inside headers"));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("malformed header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        query,
        raw_target: target.to_string(),
        headers,
        http11,
    }))
}

/// The standard reason phrase for the status codes the service uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Content Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The `Connection` answer a response advertises. Both response framings the
/// service uses (`Content-Length` and chunked) are self-delimiting, so any
/// response may keep the connection alive; handlers answer `Close` when the
/// server intends to hang up (errors, shutdown, or a client that asked).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Persistence {
    /// `Connection: keep-alive` — the server will read another request.
    KeepAlive,
    /// `Connection: close` — the server hangs up after this response.
    Close,
}

impl Persistence {
    fn header_value(self) -> &'static str {
        match self {
            Persistence::KeepAlive => "keep-alive",
            Persistence::Close => "close",
        }
    }
}

/// Writes a complete small response with `Content-Length`.
pub fn write_response(
    out: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(String, String)],
    persistence: Persistence,
    body: &[u8],
) -> io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        persistence.header_value()
    )?;
    for (name, value) in extra_headers {
        write!(out, "{name}: {value}\r\n")?;
    }
    out.write_all(b"\r\n")?;
    out.write_all(body)?;
    out.flush()
}

/// Writes the head of a chunked response; the body follows through a
/// [`ChunkedWriter`]. `trailer_names` must announce any trailer written at
/// [`ChunkedWriter::finish`] time.
pub fn write_chunked_head(
    out: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(String, String)],
    persistence: Persistence,
    trailer_names: &[&str],
) -> io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n",
        reason(status),
        persistence.header_value()
    )?;
    for (name, value) in extra_headers {
        write!(out, "{name}: {value}\r\n")?;
    }
    if !trailer_names.is_empty() {
        write!(out, "Trailer: {}\r\n", trailer_names.join(", "))?;
    }
    out.write_all(b"\r\n")
}

/// An `io::Write` that frames every `write` call as one HTTP chunk. Wrap it
/// in a `BufWriter` so records coalesce into reasonably sized chunks; memory
/// use stays bounded by the buffer, never by the response size.
pub struct ChunkedWriter<W: Write> {
    inner: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Starts the chunked body (the head must already be written).
    pub fn new(inner: W) -> Self {
        ChunkedWriter { inner }
    }

    /// Terminates the body, appending `trailers` after the last chunk.
    pub fn finish(mut self, trailers: &[(String, String)]) -> io::Result<W> {
        self.inner.write_all(b"0\r\n")?;
        for (name, value) in trailers {
            write!(self.inner, "{name}: {value}\r\n")?;
        }
        self.inner.write_all(b"\r\n")?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> Write for ChunkedWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        write!(self.inner, "{:x}\r\n", buf.len())?;
        self.inner.write_all(buf)?;
        self.inner.write_all(b"\r\n")?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader that hands out exactly `remaining` bytes of its inner reader —
/// how request bodies are streamed without ever buffering them whole.
pub struct LimitedReader<R: Read> {
    inner: R,
    remaining: u64,
}

impl<R: Read> LimitedReader<R> {
    /// Wraps `inner`, exposing its next `limit` bytes.
    pub fn new(inner: R, limit: u64) -> Self {
        LimitedReader {
            inner,
            remaining: limit,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl<R: Read> Read for LimitedReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Ok(0);
        }
        let cap = buf
            .len()
            .min(self.remaining.min(usize::MAX as u64) as usize);
        let n = self.inner.read(&mut buf[..cap])?;
        self.remaining -= n as u64;
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Client side (probe binary, CI smoke, integration tests).
// ---------------------------------------------------------------------------

/// A fully read client-side response.
#[derive(Debug, Clone)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The de-chunked (or length-delimited) body bytes.
    pub body: Vec<u8>,
    /// Trailers that followed a chunked body, names lowercased.
    pub trailers: Vec<(String, String)>,
}

impl Response {
    /// The first header named `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first trailer named `name` (lowercase).
    pub fn trailer(&self, name: &str) -> Option<&str> {
        self.trailers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads a response head (status line + headers) off a buffered reader,
/// leaving the body bytes in place — the streaming half of
/// [`read_response`], used by the router to relay bodies without buffering.
pub fn read_response_head(reader: &mut impl BufRead) -> io::Result<(u16, Headers)> {
    let Some(status_line) = read_line(reader)? else {
        return Err(bad("connection closed before the status line"));
    };
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader)? else {
            return Err(bad("connection closed inside headers"));
        };
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok((status, headers))
}

/// Whether a response head declares a chunked body.
pub fn is_chunked(headers: &[(String, String)]) -> bool {
    headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"))
}

/// An `io::Read` that de-chunks a chunked body as it streams by. After the
/// terminal chunk (`read` returning 0), [`ChunkedReader::trailers`] holds
/// any trailers and [`ChunkedReader::is_done`] turns true — a `read` hitting
/// EOF mid-body errors instead, so truncated upstream streams are never
/// mistaken for complete ones.
pub struct ChunkedReader<R: BufRead> {
    inner: R,
    chunk_remaining: usize,
    done: bool,
    trailers: Vec<(String, String)>,
}

impl<R: BufRead> ChunkedReader<R> {
    /// Starts de-chunking at the current position of `inner` (the response
    /// head must already be consumed).
    pub fn new(inner: R) -> Self {
        ChunkedReader {
            inner,
            chunk_remaining: 0,
            done: false,
            trailers: Vec::new(),
        }
    }

    /// True once the terminal chunk (and its trailers) have been read.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Trailers that followed the body, names lowercased. Complete only once
    /// [`ChunkedReader::is_done`] is true.
    pub fn trailers(&self) -> &[(String, String)] {
        &self.trailers
    }
}

impl<R: BufRead> Read for ChunkedReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.done || buf.is_empty() {
            return Ok(0);
        }
        if self.chunk_remaining == 0 {
            let Some(size_line) = read_line(&mut self.inner)? else {
                return Err(bad("connection closed inside chunked body"));
            };
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad("malformed chunk size"))?;
            if size == 0 {
                // Trailers until the blank line.
                loop {
                    let Some(line) = read_line(&mut self.inner)? else {
                        return Err(bad("connection closed inside trailers"));
                    };
                    if line.is_empty() {
                        break;
                    }
                    if let Some((name, value)) = line.split_once(':') {
                        self.trailers
                            .push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
                    }
                }
                self.done = true;
                return Ok(0);
            }
            self.chunk_remaining = size;
        }
        let want = buf.len().min(self.chunk_remaining);
        let n = self.inner.read(&mut buf[..want])?;
        if n == 0 {
            return Err(bad("connection closed inside a chunk"));
        }
        self.chunk_remaining -= n;
        if self.chunk_remaining == 0 {
            let mut crlf = [0u8; 2];
            self.inner.read_exact(&mut crlf)?;
        }
        Ok(n)
    }
}

/// Reads a response body (and trailers) whose head declared `headers` —
/// chunked, `Content-Length`-delimited, or read-to-close.
pub fn read_response_body(
    reader: &mut impl BufRead,
    headers: &[(String, String)],
) -> io::Result<(Vec<u8>, Headers)> {
    let mut body = Vec::new();
    if is_chunked(headers) {
        let mut chunks = ChunkedReader::new(reader);
        chunks.read_to_end(&mut body)?;
        let trailers = chunks.trailers().to_vec();
        Ok((body, trailers))
    } else {
        let length: Option<u64> = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.trim().parse().ok());
        match length {
            Some(n) => {
                body.resize(n as usize, 0);
                reader.read_exact(&mut body)?;
            }
            None => {
                reader.read_to_end(&mut body)?;
            }
        }
        Ok((body, Vec::new()))
    }
}

/// Reads a response (status line, headers, body; `Content-Length` or
/// chunked + trailers) off a buffered reader.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<Response> {
    let (status, headers) = read_response_head(reader)?;
    let (body, trailers) = read_response_body(reader, &headers)?;
    Ok(Response {
        status,
        headers,
        body,
        trailers,
    })
}

/// Performs one request against `addr` and reads the whole response — the
/// std-only client used by the probe binary and the tests.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path_and_query: &str,
    body: &[u8],
) -> io::Result<Response> {
    let mut responses = request_many(addr, method, path_and_query, body, 1)?;
    Ok(responses.remove(0))
}

/// [`request`] with extra request headers — how tests and the probe binary
/// present a bearer token to an `--auth-token` server.
pub fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path_and_query: &str,
    body: &[u8],
    extra_headers: &[(String, String)],
) -> io::Result<Response> {
    let mut conn = ClientConn::connect(addr, None)?;
    conn.request_with_headers(method, path_and_query, body, false, extra_headers)
}

/// Performs the same request `count` times over **one** connection,
/// advertising `Connection: keep-alive` on every request but the last.
/// Fails if the server closes the socket early, so a successful call proves
/// the connection was actually reused — which is what the keep-alive probe
/// and the CI smoke job check.
pub fn request_many(
    addr: SocketAddr,
    method: &str,
    path_and_query: &str,
    body: &[u8],
    count: usize,
) -> io::Result<Vec<Response>> {
    let mut conn = ClientConn::connect(addr, None)?;
    let count = count.max(1);
    let mut responses = Vec::with_capacity(count);
    for i in 0..count {
        responses.push(conn.request(method, path_and_query, body, i + 1 < count)?);
    }
    Ok(responses)
}

/// Writes a request head. `keep_alive` picks the advertised `Connection`
/// answer; the `Content-Length` body (possibly empty) follows on the caller.
pub fn write_request_head(
    out: &mut impl Write,
    method: &str,
    path_and_query: &str,
    host: SocketAddr,
    content_length: u64,
    keep_alive: bool,
) -> io::Result<()> {
    write_request_head_ext(
        out,
        method,
        path_and_query,
        host,
        content_length,
        keep_alive,
        &[],
    )
}

/// [`write_request_head`] plus arbitrary extra headers — how clients attach
/// `Authorization: Bearer …` (and the router forwards it to backends).
#[allow(clippy::too_many_arguments)]
pub fn write_request_head_ext(
    out: &mut impl Write,
    method: &str,
    path_and_query: &str,
    host: SocketAddr,
    content_length: u64,
    keep_alive: bool,
    extra_headers: &[(String, String)],
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        out,
        "{method} {path_and_query} HTTP/1.1\r\nHost: {host}\r\nContent-Length: {content_length}\r\nConnection: {connection}\r\n",
    )?;
    for (name, value) in extra_headers {
        write!(out, "{name}: {value}\r\n")?;
    }
    out.write_all(b"\r\n")
}

/// A persistent (keep-alive) client connection to one server — the router
/// keeps a pool of these per backend, and the load generator drives one per
/// simulated client. Requests and responses interleave strictly (send one,
/// read one); the response may also be consumed in streaming halves via
/// [`ClientConn::read_head`] + [`ClientConn::reader`].
pub struct ClientConn {
    write_half: TcpStream,
    reader: BufReader<TcpStream>,
    peer: SocketAddr,
}

impl ClientConn {
    /// Connects (optionally with a timeout) and disables Nagle, like every
    /// socket in this crate.
    pub fn connect(addr: SocketAddr, timeout: Option<std::time::Duration>) -> io::Result<Self> {
        let stream = match timeout {
            Some(t) => TcpStream::connect_timeout(&addr, t)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(ClientConn {
            write_half,
            reader: BufReader::new(stream),
            peer: addr,
        })
    }

    /// The server address this connection talks to.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Caps how long a blocked response read may wait (`None` blocks
    /// forever).
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request (head + `Content-Length` body) without reading the
    /// response.
    pub fn send_request(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: &[u8],
        keep_alive: bool,
    ) -> io::Result<()> {
        self.send_request_with_headers(method, path_and_query, body, keep_alive, &[])
    }

    /// [`ClientConn::send_request`] with extra request headers (e.g. an
    /// `Authorization: Bearer` token).
    pub fn send_request_with_headers(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: &[u8],
        keep_alive: bool,
        extra_headers: &[(String, String)],
    ) -> io::Result<()> {
        write_request_head_ext(
            &mut self.write_half,
            method,
            path_and_query,
            self.peer,
            body.len() as u64,
            keep_alive,
            extra_headers,
        )?;
        self.write_half.write_all(body)?;
        self.write_half.flush()
    }

    /// Reads the response head, leaving the body on [`ClientConn::reader`].
    pub fn read_head(&mut self) -> io::Result<(u16, Headers)> {
        read_response_head(&mut self.reader)
    }

    /// The buffered read half, positioned at the response body after
    /// [`ClientConn::read_head`] — wrap it in a [`ChunkedReader`] for
    /// chunked bodies.
    pub fn reader(&mut self) -> &mut BufReader<TcpStream> {
        &mut self.reader
    }

    /// One full request/response round trip.
    pub fn request(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: &[u8],
        keep_alive: bool,
    ) -> io::Result<Response> {
        self.request_with_headers(method, path_and_query, body, keep_alive, &[])
    }

    /// [`ClientConn::request`] with extra request headers.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: &[u8],
        keep_alive: bool,
        extra_headers: &[(String, String)],
    ) -> io::Result<Response> {
        self.send_request_with_headers(method, path_and_query, body, keep_alive, extra_headers)?;
        let (status, headers) = self.read_head()?;
        let (body, trailers) = read_response_body(&mut self.reader, &headers)?;
        Ok(Response {
            status,
            headers,
            body,
            trailers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_parsing_extracts_query_and_headers() {
        let raw = "POST /pipeline?budget=15&mode=approve-all&name=a%20b HTTP/1.1\r\n\
                   Host: x\r\nContent-Length: 5\r\n\r\nhello";
        let mut reader = BufReader::new(Cursor::new(raw.as_bytes()));
        let req = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/pipeline");
        assert_eq!(req.query_param("budget"), Some("15"));
        assert_eq!(req.query_param("name"), Some("a b"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.content_length().unwrap(), Some(5));
        let mut body = String::new();
        LimitedReader::new(&mut reader, 5)
            .read_to_string(&mut body)
            .unwrap();
        assert_eq!(body, "hello");
    }

    #[test]
    fn content_length_rejects_duplicate_conflicting_and_non_numeric_headers() {
        let parse = |raw: &str| {
            let mut reader = BufReader::new(Cursor::new(raw.as_bytes().to_vec()));
            read_request(&mut reader).unwrap().unwrap()
        };
        // Conflicting copies are an obvious rejection...
        let conflicting =
            parse("POST /apply HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 9\r\n\r\n");
        assert!(conflicting.content_length().is_err());
        // ...but even *identical* duplicates are refused: two framing headers
        // mean two possible message boundaries, whatever their values.
        let duplicate =
            parse("POST /apply HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\n");
        assert!(duplicate.content_length().is_err());
        let non_numeric = parse("POST /apply HTTP/1.1\r\nContent-Length: five\r\n\r\n");
        assert!(non_numeric.content_length().is_err());
        let single = parse("POST /apply HTTP/1.1\r\nContent-Length: 5\r\n\r\n");
        assert_eq!(single.content_length().unwrap(), Some(5));
        let none = parse("GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(none.content_length().unwrap(), None);
    }

    #[test]
    fn request_parsing_rejects_garbage() {
        for raw in [
            "nonsense\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /x HTTP/1.1\r\nbroken\r\n\r\n",
        ] {
            let mut reader = BufReader::new(Cursor::new(raw.as_bytes()));
            assert!(read_request(&mut reader).is_err(), "{raw:?}");
        }
        let mut empty = BufReader::new(Cursor::new(b"" as &[u8]));
        assert!(read_request(&mut empty).unwrap().is_none());
    }

    #[test]
    fn chunked_round_trip_with_trailers() {
        let mut wire = Vec::new();
        write_chunked_head(
            &mut wire,
            200,
            "text/csv",
            &[],
            Persistence::KeepAlive,
            &["x-ec-records"],
        )
        .unwrap();
        let mut body = ChunkedWriter::new(&mut wire);
        body.write_all(b"first,").unwrap();
        body.write_all(b"second").unwrap();
        body.finish(&[("X-Ec-Records".to_string(), "2".to_string())])
            .unwrap();
        let mut reader = BufReader::new(Cursor::new(wire));
        let response = read_response(&mut reader).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"first,second");
        assert_eq!(response.trailer("x-ec-records"), Some("2"));
    }

    #[test]
    fn content_length_responses_round_trip() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            404,
            "text/plain",
            &[],
            Persistence::Close,
            b"nope\n",
        )
        .unwrap();
        let mut reader = BufReader::new(Cursor::new(wire));
        let response = read_response(&mut reader).unwrap();
        assert_eq!(response.status, 404);
        assert_eq!(response.body, b"nope\n");
        assert_eq!(response.header("content-length"), Some("5"));
        assert_eq!(response.header("connection"), Some("close"));
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let parse = |raw: &str| {
            let mut reader = BufReader::new(Cursor::new(raw.as_bytes().to_vec()));
            read_request(&mut reader).unwrap().unwrap()
        };
        assert!(parse("GET /x HTTP/1.1\r\n\r\n").keep_alive());
        assert!(parse("GET /x HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n").keep_alive());
        assert!(!parse("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive());
        assert!(!parse("GET /x HTTP/1.0\r\n\r\n").keep_alive());
        assert!(parse("GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive());
    }

    #[test]
    fn request_parsing_preserves_the_raw_target() {
        let raw = "POST /pipeline?name=a%20b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(Cursor::new(raw.as_bytes()));
        let req = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(req.raw_target, "/pipeline?name=a%20b");
        assert_eq!(req.query_param("name"), Some("a b"));
    }

    #[test]
    fn chunked_reader_streams_and_exposes_trailers() {
        let wire = b"6\r\nfirst,\r\n6\r\nsecond\r\n0\r\nX-Ec-Records: 2\r\n\r\n";
        let mut chunks = ChunkedReader::new(BufReader::new(Cursor::new(wire.as_ref())));
        let mut body = Vec::new();
        // One byte at a time to exercise reads that straddle chunk frames.
        let mut byte = [0u8; 1];
        loop {
            match chunks.read(&mut byte).unwrap() {
                0 => break,
                n => body.extend_from_slice(&byte[..n]),
            }
        }
        assert_eq!(body, b"first,second");
        assert!(chunks.is_done());
        assert_eq!(
            chunks.trailers(),
            &[("x-ec-records".to_string(), "2".to_string())]
        );
    }

    #[test]
    fn chunked_reader_rejects_truncated_streams() {
        for wire in [b"6\r\nfir".as_ref(), b"6\r\nfirst,\r\n".as_ref()] {
            let mut chunks = ChunkedReader::new(BufReader::new(Cursor::new(wire)));
            let mut body = Vec::new();
            assert!(
                chunks.read_to_end(&mut body).is_err(),
                "an upstream hangup mid-body must surface as an error"
            );
        }
    }

    #[test]
    fn limited_reader_stops_at_the_limit() {
        let mut r = LimitedReader::new(Cursor::new(b"abcdef".to_vec()), 4);
        let mut out = String::new();
        r.read_to_string(&mut out).unwrap();
        assert_eq!(out, "abcd");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }
}
