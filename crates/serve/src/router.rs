//! The scale-out front-end: `ec serve --route b1:port,b2:port,…`.
//!
//! A [`Router`] is the same binary in a different role: it owns no
//! [`ProgramLibrary`](ec_core::ProgramLibrary) and runs no consolidation,
//! but partitions work across N backend `ec serve` processes over the
//! std-only HTTP/1.1 client ([`ClientConn`]) with a small pool of
//! persistent keep-alive connections per backend. Placement comes from the
//! consistent-hash [`Ring`]:
//!
//! * **`POST /apply` shards by column.** Each attribute column routes to
//!   the backend that owns it, the router fans one sub-request per owner
//!   out on scoped threads, and zip-merges the shard responses back into
//!   one CSV — deterministically, because apply is per-column independent
//!   and every shard answers in the original record order. With libraries
//!   replicated (below), the merged bytes equal a single node's.
//! * **`POST /pipeline` routes by blocking key.** Resolution clustering and
//!   consolidation learning are *global* over the request's records —
//!   splitting records across backends would change clusters, candidate
//!   groups and therefore bytes. So the router keeps each pipeline request
//!   whole and routes it by a blocking key (the `shard-key` query parameter
//!   if given, else the normalized first record), spreading *request load*
//!   across backends while preserving byte-identical responses; the shard's
//!   response streams back through the router un-buffered.
//! * **Backends are health-checked**: a probe loop `GET /healthz`es each
//!   backend every `probe_interval`; requests fail open past unhealthy
//!   backends ([`Ring::route_where`]) and a backend that errors mid-request
//!   is retried once on a fresh connection (pooled sockets race the
//!   backend's idle timeout), then marked down and the request re-routed.
//! * **Library mutations replicate.** After a pipeline run that approved
//!   groups, the router pulls the serving backend's text snapshot
//!   (`GET /library`) and merges it into every other healthy backend
//!   (`POST /library`) *before* completing the client's response — the
//!   snapshot's version gates redundant syncs, merges are idempotent, and a
//!   backend recovering from downtime is re-seeded from a healthy peer by
//!   the probe loop.
//!
//! The router spawns a plain thread per connection instead of using the
//! shared worker pool: its handlers block on backend sockets, and parking
//! them on the CPU-sized pool the backends' own consolidation stages run on
//! (one process in tests, and the same machine in small deployments) would
//! starve the very work being waited on.

use crate::conn::{self, BodyReader, HandlerResult, HttpFailure, Lifecycle, Service};
use crate::http::{self, ChunkedWriter, ClientConn, Persistence, Request, Response};
use crate::ring::{Ring, DEFAULT_REPLICAS};
use ec_data::{csv::CsvWriter, FlatCsvReader, RecordStream};
use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a backend connect may take before the backend counts as failed.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// How long one blocked read from a backend may stall a relay. Generous —
/// pipeline runs are real compute — but finite, so a wedged backend can
/// never pin a router thread forever.
const BACKEND_READ_TIMEOUT: Duration = Duration::from_secs(300);

/// Backend connections allowed before the first probe reports the
/// backend's real worker count (which replaces this via
/// [`Backend::budget`]).
const DEFAULT_CONN_BUDGET: usize = 4;

/// Extra connections past the backend's worker count. A backend can only
/// *serve* as many requests as it has workers; a little headroom keeps the
/// next request queued at the backend while the previous response travels
/// back, so workers never wait on the router's turnaround.
const CONN_BUDGET_HEADROOM: usize = 2;

/// Upper bound on the per-backend connection budget, whatever the backend
/// advertises.
const MAX_CONN_BUDGET: usize = 16;

/// Cap on a buffered request body (`/pipeline` is buffered so routing can
/// inspect the first record and failover can replay the request).
const ROUTE_BODY_CAP: u64 = conn::DRAIN_CAP;

/// Probe timeouts are tight: health checks answer from memory.
const PROBE_READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Read timeout for prober-initiated library syncs. Deliberately much
/// shorter than [`BACKEND_READ_TIMEOUT`]: a resync blocks the probe sweep,
/// and a saturated backend must not wedge health updates for minutes —
/// a timed-out resync is retried on the next down→up transition and by the
/// next approved pipeline run.
const RESYNC_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Configuration of [`Router::bind`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address (port 0 picks an ephemeral port, as for the server).
    pub addr: String,
    /// Backend `host:port` addresses, as given on `--route`. Order fixes
    /// backend indices in `/healthz` output; placement ignores order.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the ring (0 = [`DEFAULT_REPLICAS`]).
    pub replicas: usize,
    /// Delay between health-probe sweeps.
    pub probe_interval: Duration,
    /// Maximum concurrent client connections (0 = unbounded); connections
    /// over the cap get `503` + `Retry-After`, as on a single-node server.
    pub max_connections: usize,
    /// When set, mutating (`POST`) client requests require
    /// `Authorization: Bearer <token>` (answering `401` without it) and the
    /// router presents the same token on every backend request — so a fleet
    /// of `--auth-token` backends sits behind one `--auth-token` router.
    pub auth_token: Option<String>,
}

impl RouterConfig {
    /// A config with default ring geometry and probe cadence.
    pub fn new(addr: impl Into<String>, backends: Vec<String>) -> Self {
        RouterConfig {
            addr: addr.into(),
            backends,
            replicas: DEFAULT_REPLICAS,
            probe_interval: Duration::from_millis(500),
            max_connections: 0,
            auth_token: None,
        }
    }
}

/// The leased-connection accounting for one backend: `total` counts every
/// connection in existence (idle here plus leased out), and the condvar
/// paired with it wakes acquirers when a lease returns.
#[derive(Default)]
struct ConnPool {
    /// Idle keep-alive connections, most recently used last.
    idle: Vec<ClientConn>,
    /// Connections in existence (idle + leased); bounded by
    /// [`Backend::budget`].
    total: usize,
}

/// One backend as the router sees it.
struct Backend {
    /// The name as configured (and as hashed onto the ring).
    name: String,
    addr: SocketAddr,
    /// Flipped by the probe loop and by request-path failures; routing
    /// consults it through [`Ring::route_where`].
    healthy: AtomicBool,
    /// The persistent-connection pool; see [`RouterState::acquire`].
    pool: Mutex<ConnPool>,
    /// Wakes acquirers blocked on a full pool when a lease returns.
    freed: Condvar,
    /// How many connections this backend gets: its advertised worker count
    /// (from the probe's `X-Ec-Pool-Threads`) plus headroom. Keeping this
    /// near the backend's real parallelism is what makes pooled connections
    /// *hot* — each is reacquired within microseconds of release, so the
    /// backend's next-request grace always lands and excess connections
    /// never queue cold on the backend side.
    budget: AtomicUsize,
    /// Highest library version already replicated *from* this backend —
    /// gates redundant snapshot syncs.
    synced_version: AtomicU64,
}

impl Backend {
    fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }
}

/// One leased backend connection. A lease accounts for one unit of its
/// backend's [`ConnPool::total`]: dropping it (every error path) closes the
/// socket and frees the slot, [`Lease::release`] returns the connection for
/// reuse instead. Either way a blocked acquirer is woken.
struct Lease<'a> {
    state: &'a RouterState,
    index: usize,
    conn: Option<ClientConn>,
}

impl Lease<'_> {
    fn conn(&mut self) -> &mut ClientConn {
        self.conn
            .as_mut()
            .expect("a live lease holds its connection")
    }

    /// Returns the connection to the idle pool for the next acquirer — or,
    /// when it cannot be reused (backend asked to close, or is marked
    /// down), just drops it, freeing the slot.
    fn release(mut self, reusable: bool) {
        let backend = &self.state.backends[self.index];
        if !reusable || !backend.is_healthy() {
            return; // Drop frees the slot.
        }
        let conn = self.conn.take().expect("a live lease holds its connection");
        backend.pool.lock().unwrap().idle.push(conn);
        backend.freed.notify_one();
        std::mem::forget(self); // The connection lives on: keep it counted.
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        let backend = &self.state.backends[self.index];
        backend.pool.lock().unwrap().total -= 1;
        backend.freed.notify_one();
    }
}

/// Shared router state (the router-side counterpart of the server's state).
pub struct RouterState {
    life: Lifecycle,
    ring: Ring,
    backends: Vec<Backend>,
    probe_interval: Duration,
    max_connections: usize,
    auth_token: Option<String>,
}

impl RouterState {
    /// The headers every backend request carries: the bearer token when the
    /// router was configured with one. Backends behind an authenticated
    /// router are expected to share its token.
    fn backend_headers(&self) -> Vec<(String, String)> {
        match &self.auth_token {
            Some(token) => vec![("Authorization".to_string(), format!("Bearer {token}"))],
            None => Vec::new(),
        }
    }
}

/// The bound (but not yet running) router. [`Router::run`] blocks on the
/// accept loop until a shutdown is requested.
pub struct Router {
    listener: TcpListener,
    state: Arc<RouterState>,
}

/// A cheap handle for stopping a running router and reading its state.
#[derive(Clone)]
pub struct RouterHandle {
    state: Arc<RouterState>,
}

impl RouterHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.state.life.addr
    }

    /// Requests a graceful stop and wakes the accept loop.
    pub fn stop(&self) {
        self.state.life.request_stop();
    }

    /// Requests served so far.
    pub fn requests(&self) -> usize {
        self.state.life.requests.load(Ordering::Relaxed)
    }

    /// How many backends the router is configured with.
    pub fn backends(&self) -> usize {
        self.state.backends.len()
    }

    /// How many backends the last probes considered healthy.
    pub fn healthy_backends(&self) -> usize {
        self.state
            .backends
            .iter()
            .filter(|b| b.is_healthy())
            .count()
    }
}

impl Router {
    /// Resolves the backends, builds the ring and binds the listener. All
    /// backends start optimistically healthy; the probe loop corrects that
    /// within one `probe_interval` of [`Router::run`].
    pub fn bind(config: RouterConfig) -> io::Result<Router> {
        let invalid = |message: String| io::Error::new(io::ErrorKind::InvalidInput, message);
        if config.backends.is_empty() {
            return Err(invalid("a router needs at least one backend".to_string()));
        }
        let mut backends = Vec::with_capacity(config.backends.len());
        for name in &config.backends {
            if backends.iter().any(|b: &Backend| &b.name == name) {
                return Err(invalid(format!("duplicate backend '{name}'")));
            }
            let addr = name
                .to_socket_addrs()
                .map_err(|e| invalid(format!("cannot resolve backend '{name}': {e}")))?
                .next()
                .ok_or_else(|| invalid(format!("cannot resolve backend '{name}'")))?;
            backends.push(Backend {
                name: name.clone(),
                addr,
                healthy: AtomicBool::new(true),
                pool: Mutex::new(ConnPool::default()),
                freed: Condvar::new(),
                budget: AtomicUsize::new(DEFAULT_CONN_BUDGET),
                synced_version: AtomicU64::new(0),
            });
        }
        let replicas = if config.replicas == 0 {
            DEFAULT_REPLICAS
        } else {
            config.replicas
        };
        let ring = Ring::new(&config.backends, replicas);
        let listener = TcpListener::bind(&config.addr)?;
        let state = Arc::new(RouterState {
            life: Lifecycle::new(listener.local_addr()?),
            ring,
            backends,
            probe_interval: config.probe_interval,
            max_connections: config.max_connections,
            auth_token: config.auth_token,
        });
        Ok(Router { listener, state })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.life.addr
    }

    /// A stop/inspect handle.
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs the health-probe loop and the accept loop until
    /// [`RouterHandle::stop`] (or `POST /shutdown`). Backends are left
    /// running — they belong to whoever started them.
    pub fn run(self) -> io::Result<()> {
        let prober_state = Arc::clone(&self.state);
        let prober = std::thread::Builder::new()
            .name("ec-router-probe".to_string())
            .spawn(move || probe_loop(&prober_state))?;
        let outcome = conn::run_accept_loop(self.listener, Arc::clone(&self.state));
        // The stop flag is up (the accept loop only exits on it); the prober
        // notices within one sleep slice.
        let _ = prober.join();
        outcome
    }
}

impl Service for RouterState {
    fn lifecycle(&self) -> &Lifecycle {
        &self.life
    }

    fn metrics_service() -> &'static str {
        "router"
    }

    fn max_connections(&self) -> usize {
        self.max_connections
    }

    /// One plain thread per connection: relay work is I/O-bound, and the
    /// shared pool belongs to the backends' consolidation stages (see the
    /// module docs).
    fn execute(&self, job: Box<dyn FnOnce() + Send + 'static>) {
        let spawned = std::thread::Builder::new()
            .name("ec-router-conn".to_string())
            .spawn(job);
        // Out of threads: drop the connection (the guard inside `job` never
        // ran, so the active count was already balanced by the caller — the
        // job owns the guard, so dropping the closure drops the guard too).
        drop(spawned);
    }

    fn dispatch(
        this: &Arc<Self>,
        request: &Request,
        has_body: bool,
        persistence: Persistence,
        body: &mut BodyReader<'_>,
        writer: &mut BufWriter<TcpStream>,
    ) -> HandlerResult {
        let require_body = || -> Result<(), HttpFailure> {
            if has_body {
                Ok(())
            } else {
                Err(HttpFailure::new(
                    411,
                    "a Content-Length body is required (chunked requests are not supported)",
                ))
            }
        };
        // The same bearer gate as the single-node server: every mutating
        // endpoint is a POST, checked before routing.
        if request.method == "POST" {
            crate::require_bearer(request, this.auth_token.as_deref())?;
        }
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => handle_healthz(this, writer, persistence),
            ("GET", "/metrics") => crate::handle_metrics(writer, persistence),
            ("GET", "/library") => handle_library(this, writer, persistence),
            ("POST", "/library") => {
                require_body()?;
                handle_library_replicate(this, body, writer, persistence)
            }
            ("POST", "/shutdown") => {
                http::write_response(
                    writer,
                    200,
                    "text/plain",
                    &[],
                    Persistence::Close,
                    b"shutting down\n",
                )
                .map_err(io_failure)?;
                let _ = writer.flush();
                this.life.request_stop();
                Ok(())
            }
            ("POST", "/pipeline") => {
                require_body()?;
                handle_pipeline(this, request, body, writer, persistence)
            }
            ("POST", "/apply") => {
                require_body()?;
                handle_apply(this, request, body, writer, persistence)
            }
            ("GET" | "POST", _) => Err(HttpFailure::new(
                404,
                format!("no such endpoint: {}", request.path),
            )),
            _ => Err(HttpFailure::new(405, "method not allowed")),
        }
    }
}

fn io_failure(e: io::Error) -> HttpFailure {
    HttpFailure::new(500, format!("io error: {e}"))
}

// ---------------------------------------------------------------------------
// Backend connection plumbing.
// ---------------------------------------------------------------------------

impl RouterState {
    /// Leases a connection to backend `index`: a pooled one if available
    /// (unless `fresh` demands a new socket), a fresh dial while the
    /// backend's budget allows, otherwise *blocks* until a lease returns —
    /// for at most `read_timeout`. The bound is the point: the router
    /// funnels all traffic for a backend through a few persistent hot
    /// connections matched to the backend's parallelism instead of opening
    /// a cold socket per concurrent request, which only queues on the
    /// backend and churns its accept path. The read timeout is (re)applied
    /// per call — pooled connections keep whatever the previous caller set.
    fn acquire(&self, index: usize, fresh: bool, read_timeout: Duration) -> io::Result<Lease<'_>> {
        let backend = &self.backends[index];
        let started = Instant::now();
        let deadline = started + read_timeout;
        // How long this call waited for a usable connection — pool wait plus
        // any dial. Per-backend, so one saturated backend shows up by name.
        let lease_wait = ec_obs::histogram_with(
            "ec_router_lease_wait_seconds",
            "Wall time a request waited to lease a backend connection (pool wait plus dial).",
            ec_obs::Unit::Seconds,
            ec_obs::LATENCY_BUCKETS_US,
            &[("backend", &backend.name)],
        );
        let mut pool = backend.pool.lock().unwrap();
        loop {
            if fresh {
                // Retrying: any pooled socket may be stale for the same
                // reason the last one was — drop one to make room to dial.
                if pool.idle.pop().is_some() {
                    pool.total -= 1;
                }
            } else if let Some(conn) = pool.idle.pop() {
                drop(pool);
                let mut lease = Lease {
                    state: self,
                    index,
                    conn: Some(conn),
                };
                lease.conn().set_read_timeout(Some(read_timeout))?;
                lease_wait.observe_duration(started.elapsed());
                return Ok(lease);
            }
            if pool.total < backend.budget.load(Ordering::Relaxed).max(1) {
                pool.total += 1;
                drop(pool);
                // Dial outside the lock; on failure the lease's drop
                // returns the slot.
                let mut lease = Lease {
                    state: self,
                    index,
                    conn: None,
                };
                let conn = ClientConn::connect(backend.addr, Some(CONNECT_TIMEOUT))?;
                conn.set_read_timeout(Some(read_timeout))?;
                lease.conn = Some(conn);
                lease_wait.observe_duration(started.elapsed());
                return Ok(lease);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "no connection to backend {} became available in {read_timeout:?}",
                        backend.name
                    ),
                ));
            }
            pool = backend.freed.wait_timeout(pool, remaining).unwrap().0;
        }
    }

    /// Marks a backend down after a request-path failure and drops its
    /// pooled connections; the probe loop re-admits it when it answers
    /// again. Leased-out connections stay counted until their leases end.
    fn mark_down(&self, index: usize) {
        let backend = &self.backends[index];
        backend.healthy.store(false, Ordering::Release);
        let mut pool = backend.pool.lock().unwrap();
        pool.total -= pool.idle.len();
        pool.idle.clear();
        drop(pool);
        backend.freed.notify_all();
    }

    /// One request to backend `index`, reading only the response head —
    /// retried once on a fresh connection, because a pooled socket may have
    /// lost the race with the backend's keep-alive idle timeout.
    fn send_to_backend(
        &self,
        index: usize,
        method: &str,
        target: &str,
        body: &[u8],
        read_timeout: Duration,
    ) -> io::Result<(Lease<'_>, u16, http::Headers)> {
        let mut last_error = None;
        for attempt in 0..2 {
            let mut lease = match self.acquire(index, attempt > 0, read_timeout) {
                Ok(lease) => lease,
                Err(e) => {
                    last_error = Some(e);
                    continue;
                }
            };
            // Backend requests always present the router's token (when
            // configured) — the backends share it, whatever the client sent.
            let headers = self.backend_headers();
            let outcome = lease
                .conn()
                .send_request_with_headers(method, target, body, true, &headers)
                .and_then(|()| lease.conn().read_head());
            match outcome {
                Ok((status, headers)) => return Ok((lease, status, headers)),
                Err(e) => last_error = Some(e),
            }
        }
        Err(last_error.expect("two attempts always record an error"))
    }

    /// The backend `key` routes to right now: its healthy owner, or — when
    /// the probes have marked everything on `key`'s path down — the owner
    /// regardless. Health is *advisory*: a backend saturated with pipeline
    /// compute fails 2-second probes while still serving real requests
    /// fine, so refusing to try is strictly worse than one wasted connect.
    fn owner_of(&self, key: &str) -> Option<usize> {
        self.ring
            .route_where(key, |b| self.backends[b].is_healthy())
            .or_else(|| self.ring.route(key))
    }

    /// Routes `key` to its owning backend and sends the request there,
    /// failing over along the ring (marking failed backends down) until a
    /// backend answers or every backend has been tried. Probed-down
    /// backends are tried last rather than skipped — see
    /// [`RouterState::owner_of`] for why health is only advisory.
    fn call_routed(
        &self,
        key: &str,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<(usize, Lease<'_>, u16, http::Headers), HttpFailure> {
        let mut tried = vec![false; self.backends.len()];
        let mut last_failure: Option<(usize, io::Error)> = None;
        loop {
            let preferred = self
                .ring
                .route_where(key, |b| !tried[b] && self.backends[b].is_healthy());
            let Some(index) = preferred.or_else(|| self.ring.route_where(key, |b| !tried[b]))
            else {
                break;
            };
            tried[index] = true;
            match self.send_to_backend(index, method, target, body, BACKEND_READ_TIMEOUT) {
                Ok((lease, status, headers)) => return Ok((index, lease, status, headers)),
                Err(e) => {
                    self.mark_down(index);
                    last_failure = Some((index, e));
                }
            }
        }
        match last_failure {
            Some((index, e)) => Err(HttpFailure::new(
                502,
                format!("backend {}: {e}", self.backends[index].name),
            )),
            None => Err(HttpFailure::new(503, "no healthy backend")),
        }
    }

    /// [`RouterState::call_routed`] plus a fully buffered response.
    fn call_routed_buffered(
        &self,
        key: &str,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<Response, HttpFailure> {
        let (index, mut lease, status, headers) = self.call_routed(key, method, target, body)?;
        match finish_buffered(lease.conn(), status, headers) {
            Ok(response) => {
                lease.release(response.header("connection") != Some("close"));
                Ok(response)
            }
            Err(e) => {
                drop(lease);
                self.mark_down(index);
                Err(HttpFailure::new(
                    502,
                    format!("backend {}: {e}", self.backends[index].name),
                ))
            }
        }
    }

    /// One buffered request to a *specific* backend (no routing, no
    /// failover) — the replication path.
    fn call_backend(
        &self,
        index: usize,
        method: &str,
        target: &str,
        body: &[u8],
        read_timeout: Duration,
    ) -> io::Result<Response> {
        let (mut lease, status, headers) =
            self.send_to_backend(index, method, target, body, read_timeout)?;
        let response = finish_buffered(lease.conn(), status, headers)?;
        lease.release(response.header("connection") != Some("close"));
        Ok(response)
    }

    /// Pulls backend `from`'s library snapshot and merges it into every
    /// other healthy backend. Failures are deliberately ignored: merges are
    /// idempotent and the next approved pipeline run (with a higher
    /// version) retries; a backend that was down meanwhile is re-seeded by
    /// the probe loop's recovery resync.
    fn replicate_library(&self, from: usize) {
        let Ok(snapshot) = self.call_backend(from, "GET", "/library", b"", BACKEND_READ_TIMEOUT)
        else {
            return;
        };
        if snapshot.status != 200 {
            return;
        }
        let Some(version) = snapshot
            .header("x-ec-library-version")
            .and_then(|v| v.parse::<u64>().ok())
        else {
            return;
        };
        // fetch_max gates concurrent replications of the same state: only
        // the caller that advances the high-water mark fans the snapshot
        // out.
        let previous = self.backends[from]
            .synced_version
            .fetch_max(version, Ordering::AcqRel);
        // How many library versions the fleet is behind this source backend:
        // nonzero while a fan-out is in flight, zero at steady state.
        let lag = ec_obs::gauge_with(
            "ec_router_replication_lag",
            "Library versions published by a backend but not yet fanned out to its peers.",
            &[("backend", &self.backends[from].name)],
        );
        lag.set(version.saturating_sub(previous) as i64);
        if previous >= version {
            return;
        }
        // Attempt every peer, even probed-down ones: a saturated backend
        // that fails probes still takes the merge, and a genuinely dead one
        // refuses the connect in bounded time and is re-seeded on recovery.
        for index in 0..self.backends.len() {
            if index == from {
                continue;
            }
            let _ = self.call_backend(
                index,
                "POST",
                "/library",
                &snapshot.body,
                BACKEND_READ_TIMEOUT,
            );
        }
        lag.set(0);
    }
}

// ---------------------------------------------------------------------------
// Health probing.
// ---------------------------------------------------------------------------

/// `GET /healthz` against one backend over a throwaway connection. A `200`
/// means healthy; the response's `X-Ec-Pool-Threads` (when present) reports
/// the backend's worker count, from which the router sizes that backend's
/// connection budget.
fn probe_backend(addr: SocketAddr) -> (bool, Option<usize>) {
    let probe = || -> io::Result<Response> {
        let mut conn = ClientConn::connect(addr, Some(CONNECT_TIMEOUT))?;
        conn.set_read_timeout(Some(PROBE_READ_TIMEOUT))?;
        conn.request("GET", "/healthz", b"", false)
    };
    match probe() {
        Ok(response) => {
            let threads = response
                .header("x-ec-pool-threads")
                .and_then(|v| v.parse::<usize>().ok());
            (response.status == 200, threads)
        }
        Err(_) => (false, None),
    }
}

/// Sweeps every backend each `probe_interval` until the router stops. A
/// backend transitioning down loses its pooled connections; one
/// transitioning *up* is re-seeded with a healthy peer's library before it
/// rejoins the ring, closing the replication gap its downtime opened.
fn probe_loop(state: &Arc<RouterState>) {
    // Consecutive failed probes per backend, for the transition log: reset
    // on success, so a recovery line reports how long the outage looked
    // from here.
    let mut failed_probes = vec![0u64; state.backends.len()];
    while !state.life.stopping() {
        for (index, backend) in state.backends.iter().enumerate() {
            let was_healthy = backend.is_healthy();
            let (now_healthy, threads) = probe_backend(backend.addr);
            if !now_healthy {
                failed_probes[index] += 1;
            }
            if now_healthy != was_healthy {
                log_probe_transition(&backend.name, now_healthy, failed_probes[index]);
            }
            if now_healthy {
                failed_probes[index] = 0;
            }
            if let Some(threads) = threads {
                let budget = (threads + CONN_BUDGET_HEADROOM).clamp(2, MAX_CONN_BUDGET);
                backend.budget.store(budget, Ordering::Relaxed);
            }
            if now_healthy && !was_healthy {
                resync_recovered(state, index);
            }
            // A failed probe only flips the advisory flag — it does NOT
            // drop the pooled connections. A saturated-but-alive backend
            // may flap its probes while serving pooled traffic fine, and
            // killing its hot connections would turn a flap into a real
            // outage; connections to a genuinely dead backend error on
            // their next use and are dropped (and the pool cleared) by the
            // request path's `mark_down`.
            backend.healthy.store(now_healthy, Ordering::Release);
        }
        // Sleep in short slices so a stop request is honored promptly.
        let mut remaining = state.probe_interval;
        while !remaining.is_zero() && !state.life.stopping() {
            let slice = remaining.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            remaining -= slice;
        }
    }
}

/// Logs one health-state transition the probe loop observed — once per
/// flip, to stderr, with a unix timestamp and the consecutive-failure count
/// so an operator can read flap frequency and outage length straight off
/// the log. Also counts the transition in the metrics registry.
fn log_probe_transition(backend: &str, now_healthy: bool, failed_probes: u64) {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    if now_healthy {
        eprintln!(
            "[ec-router] t={unix_secs} backend {backend} down -> up \
             (recovered after {failed_probes} consecutive failed probes)"
        );
    } else {
        eprintln!(
            "[ec-router] t={unix_secs} backend {backend} up -> down \
             (consecutive failed probes: {failed_probes})"
        );
    }
    ec_obs::counter_with(
        "ec_router_probe_transitions_total",
        "Backend health-state transitions observed by the probe loop.",
        &[
            ("backend", backend),
            ("to", if now_healthy { "up" } else { "down" }),
        ],
    )
    .inc();
}

/// Copies a healthy peer's library onto a backend that just came back.
fn resync_recovered(state: &Arc<RouterState>, recovered: usize) {
    let Some(peer) =
        (0..state.backends.len()).find(|&i| i != recovered && state.backends[i].is_healthy())
    else {
        return;
    };
    let Ok(snapshot) = state.call_backend(peer, "GET", "/library", b"", RESYNC_READ_TIMEOUT) else {
        return;
    };
    if snapshot.status == 200 && !snapshot.body.is_empty() {
        let _ = state.call_backend(
            recovered,
            "POST",
            "/library",
            &snapshot.body,
            RESYNC_READ_TIMEOUT,
        );
    }
}

// ---------------------------------------------------------------------------
// Handlers.
// ---------------------------------------------------------------------------

fn handle_healthz(
    state: &RouterState,
    writer: &mut BufWriter<TcpStream>,
    persistence: Persistence,
) -> HandlerResult {
    let healthy = state.backends.iter().filter(|b| b.is_healthy()).count();
    let mut headers = vec![
        (
            "X-Ec-Requests".to_string(),
            state.life.requests.load(Ordering::Relaxed).to_string(),
        ),
        (
            "X-Ec-Router-Backends".to_string(),
            state.backends.len().to_string(),
        ),
        ("X-Ec-Router-Healthy".to_string(), healthy.to_string()),
    ];
    for (index, backend) in state.backends.iter().enumerate() {
        headers.push((
            format!("X-Ec-Backend-{index}"),
            format!(
                "{} {}",
                backend.name,
                if backend.is_healthy() { "up" } else { "down" }
            ),
        ));
    }
    let (status, body): (u16, &[u8]) = if healthy > 0 {
        (200, b"ok\n")
    } else {
        (503, b"no healthy backends\n")
    };
    http::write_response(writer, status, "text/plain", &headers, persistence, body)
        .map_err(io_failure)
}

/// `GET /library`: forwards to a backend — under steady replication every
/// backend serves the same entries, so any one answers for the fleet.
/// Probed-healthy backends are tried first, but a fleet of probe-flapping
/// (saturated, not dead) backends still answers.
fn handle_library(
    state: &RouterState,
    writer: &mut BufWriter<TcpStream>,
    persistence: Persistence,
) -> HandlerResult {
    let mut order: Vec<usize> = (0..state.backends.len())
        .filter(|&i| state.backends[i].is_healthy())
        .collect();
    order.extend((0..state.backends.len()).filter(|&i| !state.backends[i].is_healthy()));
    let mut last_failure = None;
    for index in order {
        match state.call_backend(index, "GET", "/library", b"", BACKEND_READ_TIMEOUT) {
            Ok(response) => {
                return http::write_response(
                    writer,
                    response.status,
                    "text/plain",
                    &forwarded_headers(&response.headers),
                    persistence,
                    &response.body,
                )
                .map_err(io_failure);
            }
            Err(e) => {
                state.mark_down(index);
                last_failure = Some(HttpFailure::new(
                    502,
                    format!("backend {}: {e}", state.backends[index].name),
                ));
            }
        }
    }
    Err(last_failure.unwrap_or_else(|| HttpFailure::new(503, "no healthy backend")))
}

/// `POST /library`: merges the posted snapshot into every healthy backend —
/// the external seeding path (the router's own replication uses the same
/// backend endpoint directly).
fn handle_library_replicate(
    state: &RouterState,
    body: &mut BodyReader<'_>,
    writer: &mut BufWriter<TcpStream>,
    persistence: Persistence,
) -> HandlerResult {
    let snapshot = read_capped_body(body)?;
    let mut reached = 0usize;
    let mut version = 0u64;
    // Like replication, this attempts every backend: health is advisory.
    for index in 0..state.backends.len() {
        if let Ok(response) =
            state.call_backend(index, "POST", "/library", &snapshot, BACKEND_READ_TIMEOUT)
        {
            if response.status == 200 {
                reached += 1;
                if let Some(v) = response
                    .header("x-ec-library-version")
                    .and_then(|v| v.parse::<u64>().ok())
                {
                    version = version.max(v);
                }
            }
        }
    }
    if reached == 0 {
        return Err(HttpFailure::new(503, "no backend accepted the snapshot"));
    }
    http::write_response(
        writer,
        200,
        "text/plain",
        &[("X-Ec-Library-Version".to_string(), version.to_string())],
        persistence,
        format!("replicated to {reached} backends\n").as_bytes(),
    )
    .map_err(io_failure)
}

/// `POST /pipeline`: route the whole request by blocking key, stream the
/// shard's response back, replicate the library if the run learned.
fn handle_pipeline(
    state: &Arc<RouterState>,
    request: &Request,
    body: &mut BodyReader<'_>,
    writer: &mut BufWriter<TcpStream>,
    persistence: Persistence,
) -> HandlerResult {
    let buffered = read_capped_body(body)?;
    let key = request
        .query_param("shard-key")
        .map(str::to_string)
        .or_else(|| blocking_key(&buffered))
        .unwrap_or_else(|| request.raw_target.clone());
    let (index, lease, status, headers) =
        state.call_routed(&key, "POST", &request.raw_target, &buffered)?;
    let approved: usize = headers
        .iter()
        .find(|(k, _)| k == "x-ec-groups-approved")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    relay_response(
        state,
        lease,
        status,
        headers,
        writer,
        persistence,
        |state| {
            if status == 200 && approved > 0 {
                // Replicate *before* the client sees its response complete, so
                // "pipeline returned, now apply anywhere" reads its own writes.
                state.replicate_library(index);
            }
        },
    )
}

/// `POST /apply`: shard by column, fan out, zip-merge.
fn handle_apply(
    state: &Arc<RouterState>,
    request: &Request,
    body: &mut BodyReader<'_>,
    writer: &mut BufWriter<TcpStream>,
    persistence: Persistence,
) -> HandlerResult {
    let buffered = read_capped_body(body)?;
    let bad_body =
        |e: ec_data::DatasetIoError| HttpFailure::new(400, format!("bad flat CSV body: {e}"));
    let mut stream = FlatCsvReader::new(&buffered[..]).map_err(bad_body)?;
    let columns = stream.columns().to_vec();
    if columns.is_empty() {
        // No attribute columns to shard: route whole, as /pipeline does.
        let (_, lease, status, headers) =
            state.call_routed(&request.raw_target, "POST", &request.raw_target, &buffered)?;
        return relay_response(state, lease, status, headers, writer, persistence, |_| {});
    }

    // Group the columns by owning backend, preserving column order inside a
    // group; `owners[c]` remembers `(group, position in group)` for the
    // merge.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut owners: Vec<(usize, usize)> = Vec::with_capacity(columns.len());
    for (column_index, column) in columns.iter().enumerate() {
        let backend = state
            .owner_of(column)
            .ok_or_else(|| HttpFailure::new(503, "no healthy backend"))?;
        let group = match groups.iter().position(|(b, _)| *b == backend) {
            Some(group) => group,
            None => {
                groups.push((backend, Vec::new()));
                groups.len() - 1
            }
        };
        owners.push((group, groups[group].1.len()));
        groups[group].1.push(column_index);
    }

    // Materialize the records once; each group's sub-request carries only
    // its own columns (plus `source`).
    let mut sources: Vec<usize> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    while let Some(record) = stream.next_record() {
        let record = record.map_err(bad_body)?;
        sources.push(record.source);
        rows.push(record.fields);
    }
    let group_bodies: Vec<Vec<u8>> = groups
        .iter()
        .map(|(_, group_columns)| {
            let mut out = Vec::new();
            let mut csv = CsvWriter::new(&mut out);
            let header = std::iter::once("source".to_string())
                .chain(group_columns.iter().map(|&c| columns[c].clone()));
            csv.write_record(header).expect("Vec write cannot fail");
            for (source, fields) in sources.iter().zip(&rows) {
                let row = std::iter::once(source.to_string()).chain(
                    group_columns
                        .iter()
                        .map(|&c| fields.get(c).cloned().unwrap_or_default()),
                );
                csv.write_record(row).expect("Vec write cannot fail");
            }
            csv.flush().expect("Vec write cannot fail");
            out
        })
        .collect();

    // Fan the sub-requests out on scoped threads (I/O waits, not CPU work —
    // see the module docs for why the shared pool is wrong here). Failover
    // inside `call_routed_buffered` keys on the group's first column, so a
    // re-route lands where that column would next live on the ring.
    let shard_responses: Vec<Result<Response, HttpFailure>> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .iter()
            .zip(&group_bodies)
            .map(|((_, group_columns), group_body)| {
                let key = columns[group_columns[0]].as_str();
                let state = &**state;
                scope.spawn(move || state.call_routed_buffered(key, "POST", "/apply", group_body))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .unwrap_or_else(|_| Err(HttpFailure::new(500, "apply fan-out panicked")))
            })
            .collect()
    });

    // Parse every shard's CSV back and cross-check the shape.
    let mut shards: Vec<(Vec<Vec<String>>, Response)> = Vec::with_capacity(shard_responses.len());
    for ((backend, _), outcome) in groups.iter().zip(shard_responses) {
        let response = outcome?;
        if response.status != 200 {
            return Err(HttpFailure::new(
                response.status,
                format!(
                    "backend {}: {}",
                    state.backends[*backend].name,
                    String::from_utf8_lossy(&response.body).trim()
                ),
            ));
        }
        let mut shard_rows: Vec<Vec<String>> = Vec::with_capacity(sources.len());
        let mut shard_stream = FlatCsvReader::new(&response.body[..])
            .map_err(|e| HttpFailure::new(502, format!("unparsable shard response: {e}")))?;
        while let Some(record) = shard_stream.next_record() {
            let record = record
                .map_err(|e| HttpFailure::new(502, format!("unparsable shard response: {e}")))?;
            shard_rows.push(record.fields);
        }
        if shard_rows.len() != sources.len() {
            return Err(HttpFailure::new(
                502,
                format!(
                    "shard responses disagree: expected {} records, backend {} returned {}",
                    sources.len(),
                    state.backends[*backend].name,
                    shard_rows.len()
                ),
            ));
        }
        shards.push((shard_rows, response));
    }

    // Zip-merge: record order is the request's, column order the header's —
    // both identical to what a single node writes.
    let trailer_sum = |name: &str| -> u64 {
        shards
            .iter()
            .filter_map(|(_, r)| r.trailer(name))
            .filter_map(|v| v.parse::<u64>().ok())
            .sum()
    };
    let version = shards
        .iter()
        .filter_map(|(_, r)| r.header("x-ec-library-version"))
        .filter_map(|v| v.parse::<u64>().ok())
        .max()
        .unwrap_or(0);
    http::write_chunked_head(
        writer,
        200,
        "text/csv",
        &[("X-Ec-Library-Version".to_string(), version.to_string())],
        persistence,
        &[
            "X-Ec-Records",
            "X-Ec-Cells-Rewritten",
            "X-Ec-Cells-Unmatched",
            "X-Ec-Library-Hits",
            "X-Ec-Library-Misses",
        ],
    )
    .map_err(io_failure)?;
    let mut body_writer = ChunkedWriter::new(writer);
    {
        let mut out = BufWriter::with_capacity(8 * 1024, &mut body_writer);
        let mut csv = CsvWriter::new(&mut out);
        let header = std::iter::once("source").chain(columns.iter().map(String::as_str));
        csv.write_record(header).map_err(io_failure)?;
        for (row_index, source) in sources.iter().enumerate() {
            let fields = owners.iter().map(|&(group, position)| {
                shards[group].0[row_index]
                    .get(position)
                    .map(String::as_str)
                    .unwrap_or("")
            });
            let row = std::iter::once(source.to_string()).chain(fields.map(str::to_string));
            csv.write_record(row).map_err(io_failure)?;
        }
        csv.flush().map_err(io_failure)?;
        out.flush().map_err(io_failure)?;
    }
    body_writer
        .finish(&[
            ("X-Ec-Records".to_string(), sources.len().to_string()),
            (
                "X-Ec-Cells-Rewritten".to_string(),
                trailer_sum("x-ec-cells-rewritten").to_string(),
            ),
            (
                "X-Ec-Cells-Unmatched".to_string(),
                trailer_sum("x-ec-cells-unmatched").to_string(),
            ),
            // Column shards count hits/misses over disjoint column sets, so
            // the sums equal a single node's whole-request counters.
            (
                "X-Ec-Library-Hits".to_string(),
                trailer_sum("x-ec-library-hits").to_string(),
            ),
            (
                "X-Ec-Library-Misses".to_string(),
                trailer_sum("x-ec-library-misses").to_string(),
            ),
        ])
        .map_err(io_failure)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Relay helpers.
// ---------------------------------------------------------------------------

/// Buffers a request body up to [`ROUTE_BODY_CAP`].
fn read_capped_body(body: &mut BodyReader<'_>) -> Result<Vec<u8>, HttpFailure> {
    if body.remaining() > ROUTE_BODY_CAP {
        return Err(HttpFailure::new(
            413,
            format!("request body exceeds the router's {ROUTE_BODY_CAP}-byte cap"),
        ));
    }
    let mut buffered = Vec::with_capacity(body.remaining() as usize);
    body.read_to_end(&mut buffered)
        .map_err(|e| HttpFailure::new(400, format!("unreadable request body: {e}")))?;
    Ok(buffered)
}

/// The `/pipeline` blocking key of a buffered flat-CSV body: the normalized
/// first record. Requests whose records share a blocking key route to the
/// same backend, keeping a tenant's (or entity family's) pipeline runs — and
/// therefore their learned programs — warm on one shard.
fn blocking_key(body: &[u8]) -> Option<String> {
    let mut stream = FlatCsvReader::new(body).ok()?;
    let record = stream.next_record()?.ok()?;
    let key = ec_resolution::normalize(&record.fields.join(" "));
    (!key.is_empty()).then_some(key)
}

/// Response headers safe to forward through the router: everything except
/// hop-by-hop framing (`Connection`, `Transfer-Encoding`, `Content-Length`,
/// `Trailer`) and `Content-Type`, which the forwarding write re-emits.
fn forwarded_headers(headers: &[(String, String)]) -> Vec<(String, String)> {
    headers
        .iter()
        .filter(|(name, _)| {
            !matches!(
                name.as_str(),
                "connection" | "transfer-encoding" | "content-length" | "content-type" | "trailer"
            )
        })
        .cloned()
        .collect()
}

/// Reads the rest of a response whose head `send_to_backend` already parsed.
fn finish_buffered(
    conn: &mut ClientConn,
    status: u16,
    headers: Vec<(String, String)>,
) -> io::Result<Response> {
    let (body, trailers) = http::read_response_body(conn.reader(), &headers)?;
    Ok(Response {
        status,
        headers,
        body,
        trailers,
    })
}

/// Relays one backend response (already past its head) to the client,
/// streaming chunked bodies chunk-by-chunk. `before_finish` runs after the
/// backend's stream is fully consumed but *before* the terminal chunk goes
/// to the client — the replication hook. The lease is released as soon as
/// the backend's stream is drained — notably *before* `before_finish`, so a
/// replication hook acquiring other backends' leases never holds this one
/// (no hold-and-wait across backends, hence no lease deadlock).
#[allow(clippy::too_many_arguments)]
fn relay_response(
    state: &RouterState,
    mut lease: Lease<'_>,
    status: u16,
    headers: Vec<(String, String)>,
    writer: &mut BufWriter<TcpStream>,
    persistence: Persistence,
    before_finish: impl FnOnce(&RouterState),
) -> HandlerResult {
    let content_type = headers
        .iter()
        .find(|(k, _)| k == "content-type")
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| "text/plain".to_string());
    let backend_keep_alive = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| !v.eq_ignore_ascii_case("close"))
        .unwrap_or(true);
    let forwarded = forwarded_headers(&headers);
    if http::is_chunked(&headers) {
        let trailer_names: Vec<String> = headers
            .iter()
            .find(|(k, _)| k == "trailer")
            .map(|(_, v)| v.split(',').map(|t| t.trim().to_string()).collect())
            .unwrap_or_default();
        let trailer_refs: Vec<&str> = trailer_names.iter().map(String::as_str).collect();
        http::write_chunked_head(
            writer,
            status,
            &content_type,
            &forwarded,
            persistence,
            &trailer_refs,
        )
        .map_err(io_failure)?;
        let mut body_writer = ChunkedWriter::new(writer);
        let (trailers, drained) = {
            let mut chunks = http::ChunkedReader::new(lease.conn().reader());
            {
                let mut out = BufWriter::with_capacity(8 * 1024, &mut body_writer);
                io::copy(&mut chunks, &mut out).map_err(io_failure)?;
                out.flush().map_err(io_failure)?;
            }
            (chunks.trailers().to_vec(), chunks.is_done())
        };
        lease.release(backend_keep_alive && drained);
        before_finish(state);
        body_writer.finish(&trailers).map_err(io_failure)?;
    } else {
        let body = http::read_response_body(lease.conn().reader(), &headers)
            .map_err(io_failure)?
            .0;
        lease.release(backend_keep_alive);
        before_finish(state);
        http::write_response(
            writer,
            status,
            &content_type,
            &forwarded,
            persistence,
            &body,
        )
        .map_err(io_failure)?;
    }
    Ok(())
}
