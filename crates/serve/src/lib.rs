//! # ec-serve — the online consolidation service
//!
//! The batch CLI re-learns everything per invocation; this crate is the
//! *learn once, apply forever* deployment mode: a long-lived, std-only
//! (`TcpListener` + hand-rolled HTTP/1.1, no external dependencies) service
//! started via `ec serve --addr … --threads N`. Three pieces work together:
//!
//! * the **shared work-stealing worker pool** (re-exported here as
//!   [`pool`], implemented in `ec_graph::pool` so the `Parallelism` knob can
//!   adopt it without a dependency cycle) both executes connection handlers
//!   and the sharded consolidation stages they fan out — no scoped threads
//!   are spawned per request or per speculative grouping batch;
//! * the **[`ProgramLibrary`]** holds human-verified transformation
//!   programs; `POST /pipeline` runs accumulate newly approved groups into
//!   it, `POST /apply` standardizes incoming records through it *without
//!   re-learning*, and `GET /library` exposes the text snapshot;
//! * **streamed endpoints**: request bodies are parsed record-at-a-time off
//!   the socket and responses are written cluster-at-a-time through chunked
//!   encoding, so per-connection memory is bounded by the parsed dataset
//!   (exactly like the CLI), never by raw request/response bytes.
//!
//! Connections are **kept alive**: sequential requests reuse the socket
//! (HTTP/1.1 semantics — persistent unless `Connection: close`; HTTP/1.0
//! opts in via `Connection: keep-alive`) with a short idle timeout, so a
//! client looping `apply` calls pays the TCP handshake once. Errors and
//! `POST /shutdown` close the connection.
//!
//! ## Endpoints
//!
//! | Endpoint | Behaviour |
//! |---|---|
//! | `GET /healthz` | liveness + request counter / pool size headers |
//! | `GET /library` | the program-library text snapshot |
//! | `POST /pipeline?…` | flat CSV body → standardized (or golden) CSV, byte-identical to `ec pipeline` with the same flags |
//! | `POST /apply` | flat CSV body → library-standardized flat CSV; unmatched counts in chunked trailers |
//! | `POST /shutdown` | graceful stop (used by tests and the CI smoke job) |
//!
//! `POST /pipeline` accepts the CLI's knobs as query parameters:
//! `threshold`, `budget`, `mode` (`auto`/`approve-all`), `truth-method`
//! (`majority`/`reliability`), `column`, `name`, and `output` selecting the
//! artifact (`standardized`, the default, matching `--output`; `golden`
//! matching `--golden`; or `summary`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;

pub use ec_graph::pool;

use ec_core::{
    resolve_column_spec, standardize_columns, write_golden_records_csv, ApplyReport, AutoMode,
    ConsolidationConfig, FusedPipeline, ProgramLibrary, TruthMethod,
};
use ec_data::stream::DatasetSink;
use ec_data::{csv::CsvWriter, ClusteredCsvWriter, FlatCsvReader, RecordStream};
use ec_resolution::ResolverConfig;
use http::{ChunkedWriter, LimitedReader, Persistence, Request};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// How long a connection may sit idle mid-request before the handler gives
/// up on it.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// How long a connection may take to deliver its request *head* — which on a
/// kept-alive connection doubles as the **idle timeout** between requests.
/// Handlers run as jobs on the CPU-sized shared pool, so an idle connection
/// occupies a worker until this expires — kept short so stalled clients
/// release workers quickly (the longer [`READ_TIMEOUT`] applies once a body
/// is actually streaming).
const HEAD_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Cap on how many unread request-body bytes are drained before closing.
/// Draining avoids a TCP RST racing the response out of the client's
/// receive buffer when a handler rejects a request without reading its
/// body; the cap bounds the work a garbage request can cause.
const DRAIN_CAP: u64 = 64 * 1024 * 1024;

/// Configuration of [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7171` (port 0 picks an ephemeral
    /// port, which the tests use).
    pub addr: String,
    /// Worker threads for the shared pool (0 = auto: `EC_THREADS` or the
    /// machine). Connection handling and the sharded consolidation stages
    /// run on the same pool, and because every stage is bit-identical for
    /// any thread count, this knob never changes responses — only latency.
    pub threads: usize,
    /// The initial learned-program library (typically loaded from a
    /// snapshot file by `ec serve --library`).
    pub library: ProgramLibrary,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".to_string(),
            threads: 0,
            library: ProgramLibrary::new(),
        }
    }
}

/// Shared, connection-visible server state.
struct ServerState {
    library: RwLock<ProgramLibrary>,
    threads: usize,
    stop: AtomicBool,
    requests: AtomicUsize,
    addr: SocketAddr,
}

/// The bound (but not yet running) service. [`Server::run`] blocks on the
/// accept loop until a shutdown is requested.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A cheap handle for stopping a running server and reading its address.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Requests a graceful stop and wakes the accept loop.
    pub fn stop(&self) {
        self.state.stop.store(true, Ordering::Release);
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.state.addr);
    }

    /// Requests served so far.
    pub fn requests(&self) -> usize {
        self.state.requests.load(Ordering::Relaxed)
    }

    /// A snapshot of the current program library.
    pub fn library_snapshot(&self) -> String {
        self.state.library.read().unwrap().to_snapshot()
    }
}

impl Server {
    /// Binds the listener and sizes the shared worker pool. The pool's size
    /// is pinned process-wide by its first user, so bind early.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let pool = pool::configure_shared(config.threads);
        let state = Arc::new(ServerState {
            library: RwLock::new(config.library),
            threads: if config.threads == 0 {
                pool.threads()
            } else {
                config.threads
            },
            stop: AtomicBool::new(false),
            requests: AtomicUsize::new(0),
            addr: listener.local_addr()?,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// A stop/inspect handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs the accept loop until [`ServerHandle::stop`] (or
    /// `POST /shutdown`) is called. Each connection is handled as one
    /// detached, panic-isolated job on the shared pool.
    pub fn run(self) -> io::Result<()> {
        let pool = pool::shared();
        for conn in self.listener.incoming() {
            if self.state.stop.load(Ordering::Acquire) {
                break;
            }
            let stream = match conn {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let state = Arc::clone(&self.state);
            pool.spawn(move || handle_connection(stream, &state));
        }
        Ok(())
    }
}

/// A handler failure that still has a clean HTTP answer.
struct HttpFailure {
    status: u16,
    message: String,
}

impl HttpFailure {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpFailure {
            status,
            message: message.into(),
        }
    }
}

type HandlerResult = Result<(), HttpFailure>;

fn handle_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::with_capacity(8 * 1024, write_half);
    // One iteration per request: the connection is reused for the next
    // request whenever the client asked to keep it alive and this request
    // ended cleanly (responses are always self-delimiting, so nothing else
    // gates reuse). Errors close the connection — the simple, safe answer.
    loop {
        // The head timeout doubles as the keep-alive idle timeout.
        let _ = reader.get_ref().set_read_timeout(Some(HEAD_READ_TIMEOUT));
        let request = match http::read_request(&mut reader) {
            Ok(Some(request)) => request,
            // Clean hangup between requests.
            Ok(None) => return,
            Err(e) => {
                // An idle kept-alive connection timing out is a normal
                // hangup, not a protocol error worth answering.
                if e.kind() != io::ErrorKind::WouldBlock && e.kind() != io::ErrorKind::TimedOut {
                    let _ = http::write_response(
                        &mut writer,
                        400,
                        "text/plain",
                        &[],
                        Persistence::Close,
                        format!("bad request: {e}\n").as_bytes(),
                    );
                    let _ = writer.flush();
                }
                return;
            }
        };
        let _ = reader.get_ref().set_read_timeout(Some(READ_TIMEOUT));
        state.requests.fetch_add(1, Ordering::Relaxed);
        let declared_length = match request.content_length() {
            Ok(length) => length,
            Err(e) => {
                let _ = http::write_response(
                    &mut writer,
                    400,
                    "text/plain",
                    &[],
                    Persistence::Close,
                    format!("{e}\n").as_bytes(),
                );
                let _ = writer.flush();
                return;
            }
        };
        // Decide the advertised persistence *before* any handler writes a
        // response head: a body too big to drain (should the handler leave
        // it unread) forfeits reuse, and advertising keep-alive only to hang
        // up afterwards would leave an honoring client talking to a closed
        // socket.
        let persistence = if request.keep_alive() && declared_length.unwrap_or(0) <= DRAIN_CAP {
            Persistence::KeepAlive
        } else {
            Persistence::Close
        };
        let mut body = LimitedReader::new(&mut reader, declared_length.unwrap_or(0));
        let outcome = dispatch(
            &request,
            declared_length.is_some(),
            persistence,
            &mut body,
            &mut writer,
            state,
        );
        // Drain whatever of the declared body the handler never read:
        // closing with unread bytes in the receive queue makes the kernel
        // send RST, which can flush the response right out of the peer's
        // buffer — and a kept-alive connection needs the stream positioned
        // at the next request head anyway. The cap bounds the work a garbage
        // request can cause; an undrainable body forfeits reuse.
        let leftover = body.remaining();
        let mut reusable = leftover <= DRAIN_CAP;
        if leftover > 0 {
            let drain = leftover.min(DRAIN_CAP);
            match std::io::copy(
                &mut Read::by_ref(&mut body).take(drain),
                &mut std::io::sink(),
            ) {
                Ok(n) if n == drain => {}
                _ => reusable = false,
            }
        }
        if let Err(failure) = outcome {
            // Best effort: if the response head already went out this writes
            // into the body and the client sees a truncated chunked stream,
            // which is the correct failure signal mid-stream.
            let _ = http::write_response(
                &mut writer,
                failure.status,
                "text/plain",
                &[],
                Persistence::Close,
                format!("{}\n", failure.message).as_bytes(),
            );
            let _ = writer.flush();
            return;
        }
        let _ = writer.flush();
        if persistence == Persistence::Close || !reusable || state.stop.load(Ordering::Acquire) {
            return;
        }
    }
}

fn dispatch(
    request: &Request,
    has_body: bool,
    persistence: Persistence,
    body: &mut LimitedReader<&mut BufReader<TcpStream>>,
    writer: &mut BufWriter<TcpStream>,
    state: &Arc<ServerState>,
) -> HandlerResult {
    let require_body = || -> Result<(), HttpFailure> {
        if has_body {
            Ok(())
        } else {
            Err(HttpFailure::new(
                411,
                "a Content-Length body is required (chunked requests are not supported)",
            ))
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(writer, state, persistence),
        ("GET", "/library") => handle_library(writer, state, persistence),
        ("POST", "/shutdown") => {
            // The accept loop is stopping; never invite another request.
            http::write_response(
                writer,
                200,
                "text/plain",
                &[],
                Persistence::Close,
                b"shutting down\n",
            )
            .map_err(io_failure)?;
            let _ = writer.flush();
            ServerHandle {
                state: Arc::clone(state),
            }
            .stop();
            Ok(())
        }
        ("POST", "/pipeline") => {
            require_body()?;
            handle_pipeline(request, body, writer, state, persistence)
        }
        ("POST", "/apply") => {
            require_body()?;
            handle_apply(body, writer, state, persistence)
        }
        ("GET" | "POST", _) => Err(HttpFailure::new(
            404,
            format!("no such endpoint: {}", request.path),
        )),
        _ => Err(HttpFailure::new(405, "method not allowed")),
    }
}

fn io_failure(e: io::Error) -> HttpFailure {
    HttpFailure::new(500, format!("io error: {e}"))
}

fn handle_healthz(
    writer: &mut BufWriter<TcpStream>,
    state: &ServerState,
    persistence: Persistence,
) -> HandlerResult {
    let library = state.library.read().unwrap();
    let headers = vec![
        (
            "X-Ec-Requests".to_string(),
            state.requests.load(Ordering::Relaxed).to_string(),
        ),
        ("X-Ec-Pool-Threads".to_string(), state.threads.to_string()),
        (
            "X-Ec-Library-Version".to_string(),
            library.version().to_string(),
        ),
        (
            "X-Ec-Library-Entries".to_string(),
            library.len().to_string(),
        ),
    ];
    drop(library);
    http::write_response(writer, 200, "text/plain", &headers, persistence, b"ok\n")
        .map_err(io_failure)
}

fn handle_library(
    writer: &mut BufWriter<TcpStream>,
    state: &ServerState,
    persistence: Persistence,
) -> HandlerResult {
    let library = state.library.read().unwrap();
    let headers = vec![
        (
            "X-Ec-Library-Version".to_string(),
            library.version().to_string(),
        ),
        (
            "X-Ec-Library-Evictions".to_string(),
            library.evictions().to_string(),
        ),
        (
            "X-Ec-Library-Cap".to_string(),
            library
                .column_capacity()
                .map(|c| c.to_string())
                .unwrap_or_else(|| "unbounded".to_string()),
        ),
    ];
    let snapshot = library.to_snapshot();
    drop(library);
    http::write_response(
        writer,
        200,
        "text/plain",
        &headers,
        persistence,
        snapshot.as_bytes(),
    )
    .map_err(io_failure)
}

/// The artifact `POST /pipeline` streams back.
enum PipelineOutput {
    Standardized,
    Golden,
    Summary,
}

fn handle_pipeline(
    request: &Request,
    body: impl Read,
    writer: &mut BufWriter<TcpStream>,
    state: &Arc<ServerState>,
    persistence: Persistence,
) -> HandlerResult {
    let fail = |message: String| HttpFailure::new(400, message);
    let threshold: f64 = match request.query_param("threshold") {
        None => 0.75,
        Some(v) => v
            .parse()
            .map_err(|_| fail(format!("threshold expects a number, got '{v}'")))?,
    };
    if !(0.0..=1.0).contains(&threshold) {
        return Err(fail(format!(
            "threshold must be between 0 and 1, got {threshold}"
        )));
    }
    let budget: usize = match request.query_param("budget") {
        None => 100,
        Some(v) => v
            .parse()
            .map_err(|_| fail(format!("budget expects an integer, got '{v}'")))?,
    };
    let mode = match request.query_param("mode") {
        None => AutoMode::Auto,
        Some(name) => AutoMode::parse(name).ok_or_else(|| {
            fail(format!(
                "unknown mode '{name}'; expected auto or approve-all"
            ))
        })?,
    };
    let truth_method = match request.query_param("truth-method").unwrap_or("majority") {
        "majority" | "mc" => TruthMethod::MajorityConsensus,
        "reliability" | "source-reliability" => TruthMethod::SourceReliability,
        other => return Err(fail(format!("unknown truth method '{other}'"))),
    };
    let output = match request.query_param("output").unwrap_or("standardized") {
        "standardized" | "std" => PipelineOutput::Standardized,
        "golden" => PipelineOutput::Golden,
        "summary" => PipelineOutput::Summary,
        other => {
            return Err(fail(format!(
                "unknown output '{other}'; expected standardized, golden or summary"
            )))
        }
    };
    let name = request
        .query_param("name")
        .unwrap_or("resolved")
        .to_string();

    // Resolve the body stream straight off the socket — the raw CSV is never
    // buffered; only the resolved dataset (the working set every entry point
    // needs) lives in memory.
    let mut stream =
        FlatCsvReader::new(body).map_err(|e| fail(format!("bad flat CSV body: {e}")))?;
    let fused = FusedPipeline::new(
        ResolverConfig {
            threshold,
            ..ResolverConfig::default()
        },
        ConsolidationConfig {
            budget,
            ..ConsolidationConfig::default()
        }
        .with_threads(state.threads),
    );
    let mut dataset = fused
        .resolve_stream(&name, &mut stream)
        .map_err(|e| fail(format!("bad flat CSV body: {e}")))?;
    let columns: Vec<usize> = match request.query_param("column") {
        Some(spec) => vec![resolve_column_spec(&dataset.columns, spec).ok_or_else(|| {
            fail(format!(
                "no column '{spec}'; available columns: {}",
                dataset.columns.join(", ")
            ))
        })?],
        None => (0..dataset.columns.len()).collect(),
    };

    // Standardize with the shared automated driver (byte-identical to the
    // CLI), learning into a request-local library merged into the server's
    // store afterwards.
    let mut learned = ProgramLibrary::new();
    let reports = standardize_columns(
        fused.pipeline(),
        &mut dataset,
        &columns,
        mode,
        // Resolver output always carries per-cell truth, exactly like the
        // clustered CSV `ec resolve` writes — so `auto` uses the simulated
        // expert, matching the CLI pipeline.
        true,
        Some(&mut learned),
    );
    let golden = fused
        .pipeline()
        .discover_golden_records(&dataset, truth_method);
    if !learned.is_empty() {
        state.library.write().unwrap().merge(&learned);
    }

    let approved: usize = reports.iter().map(|r| r.groups_approved).sum();
    let headers = vec![
        (
            "X-Ec-Clusters".to_string(),
            dataset.clusters.len().to_string(),
        ),
        (
            "X-Ec-Records".to_string(),
            dataset.num_records().to_string(),
        ),
        ("X-Ec-Groups-Approved".to_string(), approved.to_string()),
    ];
    http::write_chunked_head(writer, 200, "text/csv", &headers, persistence, &[])
        .map_err(io_failure)?;
    let mut body_writer = ChunkedWriter::new(writer);
    match output {
        PipelineOutput::Standardized => {
            // Cluster-at-a-time through the same sink the CLI streams its
            // `--output` file through — byte-identical by construction.
            let mut buffered = BufWriter::with_capacity(8 * 1024, &mut body_writer);
            let mut csv =
                ClusteredCsvWriter::new(&mut buffered, &dataset.columns).map_err(io_failure)?;
            for cluster in &dataset.clusters {
                csv.write_cluster(cluster).map_err(io_failure)?;
            }
            csv.finish().map_err(io_failure)?;
            drop(csv);
            buffered.flush().map_err(io_failure)?;
        }
        PipelineOutput::Golden => {
            let mut buffered = BufWriter::with_capacity(8 * 1024, &mut body_writer);
            write_golden_records_csv(&dataset.columns, &golden, &mut buffered)
                .map_err(io_failure)?;
            buffered.flush().map_err(io_failure)?;
        }
        PipelineOutput::Summary => {
            let mut text = format!(
                "resolved {} records into {} clusters (threshold {threshold})\n",
                dataset.num_records(),
                dataset.clusters.len()
            );
            for report in &reports {
                text.push_str(&format!(
                    "column '{}': {} candidates, {} reviewed, {} approved, {} cells updated\n",
                    dataset.columns[report.column],
                    report.candidates,
                    report.groups_reviewed,
                    report.groups_approved,
                    report.cells_updated
                ));
            }
            body_writer.write_all(text.as_bytes()).map_err(io_failure)?;
        }
    }
    body_writer.finish(&[]).map_err(io_failure)?;
    Ok(())
}

fn handle_apply(
    body: impl Read,
    writer: &mut BufWriter<TcpStream>,
    state: &Arc<ServerState>,
    persistence: Persistence,
) -> HandlerResult {
    let mut stream = FlatCsvReader::new(body)
        .map_err(|e| HttpFailure::new(400, format!("bad flat CSV body: {e}")))?;
    let columns = stream.columns().to_vec();
    // Snapshot the library under a short-lived guard: holding the read lock
    // across a streamed (client-paced) request would stall every /pipeline
    // merge — and, behind that queued writer, all other readers.
    let library = state.library.read().unwrap().clone();
    let applier = library.applier(&columns);
    let mut report = ApplyReport::default();

    http::write_chunked_head(
        writer,
        200,
        "text/csv",
        &[(
            "X-Ec-Library-Version".to_string(),
            library.version().to_string(),
        )],
        persistence,
        &[
            "X-Ec-Records",
            "X-Ec-Cells-Rewritten",
            "X-Ec-Cells-Unmatched",
        ],
    )
    .map_err(io_failure)?;
    let mut body_writer = ChunkedWriter::new(writer);
    {
        // Record in, record out: per-connection memory is one record plus
        // the CSV reader's refill buffer.
        let mut buffered = BufWriter::with_capacity(8 * 1024, &mut body_writer);
        let mut csv = CsvWriter::new(&mut buffered);
        let header = std::iter::once("source").chain(columns.iter().map(String::as_str));
        csv.write_record(header).map_err(io_failure)?;
        while let Some(record) = stream.next_record() {
            let mut record =
                record.map_err(|e| HttpFailure::new(400, format!("bad flat CSV body: {e}")))?;
            applier.apply_fields(&mut record.fields, &mut report);
            let fields = std::iter::once(record.source.to_string()).chain(record.fields);
            csv.write_record(fields).map_err(io_failure)?;
        }
        csv.flush().map_err(io_failure)?;
        buffered.flush().map_err(io_failure)?;
    }
    body_writer
        .finish(&[
            ("X-Ec-Records".to_string(), report.records.to_string()),
            (
                "X-Ec-Cells-Rewritten".to_string(),
                report.cells_rewritten.to_string(),
            ),
            (
                "X-Ec-Cells-Unmatched".to_string(),
                report.cells_unmatched.to_string(),
            ),
        ])
        .map_err(io_failure)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_core::{ApprovedGroup, Group};
    use ec_graph::Replacement;
    use ec_replace::Direction;

    fn start_server(config: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind(config).expect("bind an ephemeral port");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("server run"));
        (handle, join)
    }

    fn ephemeral_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn healthz_and_unknown_endpoints() {
        let (handle, join) = start_server(ephemeral_config());
        let health = http::request(handle.addr(), "GET", "/healthz", b"").unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(health.body, b"ok\n");
        assert!(health.header("x-ec-pool-threads").is_some());
        let missing = http::request(handle.addr(), "GET", "/nope", b"").unwrap();
        assert_eq!(missing.status, 404);
        let bad_method = http::request(handle.addr(), "PUT", "/healthz", b"").unwrap();
        assert_eq!(bad_method.status, 405);
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let (handle, join) = start_server(ephemeral_config());
        // `request_many` fails outright if the server hangs up between
        // requests, so three identical answers prove actual socket reuse.
        let responses = http::request_many(handle.addr(), "GET", "/healthz", b"", 3).unwrap();
        assert_eq!(responses.len(), 3);
        for response in &responses[..2] {
            assert_eq!(response.status, 200);
            assert_eq!(response.body, b"ok\n");
            assert_eq!(response.header("connection"), Some("keep-alive"));
        }
        assert_eq!(
            responses[2].header("connection"),
            Some("close"),
            "the final request asked to close"
        );
        // All three requests were counted individually.
        assert!(handle.requests() >= 3);
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn keep_alive_reuses_the_connection_across_posted_bodies() {
        let (handle, join) = start_server(ephemeral_config());
        let body = b"source,Name\n0,\"Lee, Mary\"\n1,Mary Lee\n";
        let responses = http::request_many(handle.addr(), "POST", "/apply", body, 2).unwrap();
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].status, 200);
        assert_eq!(
            responses[0].body, responses[1].body,
            "both requests on the one connection see identical answers"
        );
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn shutdown_endpoint_stops_the_accept_loop() {
        let (handle, join) = start_server(ephemeral_config());
        let response = http::request(handle.addr(), "POST", "/shutdown", b"").unwrap();
        assert_eq!(response.status, 200);
        join.join().unwrap();
    }

    #[test]
    fn apply_standardizes_through_the_library_and_reports_unmatched() {
        let mut library = ProgramLibrary::new();
        library.record(
            "Name",
            &ApprovedGroup {
                group: Group::new(None, vec![Replacement::new("Lee, Mary", "Mary Lee")]),
                direction: Direction::Forward,
            },
        );
        let (handle, join) = start_server(ServeConfig {
            library,
            ..ephemeral_config()
        });
        let body = "source,Name\n0,\"Lee, Mary\"\n1,Mary Lee\n2,unknown\n";
        let response = http::request(handle.addr(), "POST", "/apply", body.as_bytes()).unwrap();
        assert_eq!(response.status, 200, "{:?}", response.body);
        let text = String::from_utf8(response.body.clone()).unwrap();
        assert_eq!(text, "source,Name\n0,Mary Lee\n1,Mary Lee\n2,unknown\n");
        assert_eq!(response.trailer("x-ec-records"), Some("3"));
        assert_eq!(response.trailer("x-ec-cells-rewritten"), Some("1"));
        assert_eq!(response.trailer("x-ec-cells-unmatched"), Some("1"));
        let snapshot = http::request(handle.addr(), "GET", "/library", b"").unwrap();
        assert_eq!(snapshot.header("x-ec-library-evictions"), Some("0"));
        assert_eq!(snapshot.header("x-ec-library-cap"), Some("unbounded"));
        assert!(String::from_utf8(snapshot.body)
            .unwrap()
            .contains("rewrite \"Lee, Mary\" \"Mary Lee\""));
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn pipeline_rejects_bad_parameters_and_bodies() {
        let (handle, join) = start_server(ephemeral_config());
        let bad_threshold = http::request(
            handle.addr(),
            "POST",
            "/pipeline?threshold=7",
            b"source,A\n0,x\n",
        )
        .unwrap();
        assert_eq!(bad_threshold.status, 400);
        let bad_mode = http::request(
            handle.addr(),
            "POST",
            "/pipeline?mode=interactive",
            b"source,A\n0,x\n",
        )
        .unwrap();
        assert_eq!(bad_mode.status, 400);
        let bad_body =
            http::request(handle.addr(), "POST", "/pipeline", b"not,a,flat\nheader\n").unwrap();
        assert_eq!(bad_body.status, 400);
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn pipeline_standardizes_and_learns_into_the_library() {
        let (handle, join) = start_server(ephemeral_config());
        let body = "source,Name\n\
                    0,\"Lee, Mary\"\n1,Mary Lee\n2,\"Lee, Mary\"\n\
                    0,\"Smith, James\"\n1,James Smith\n2,\"Smith, James\"\n";
        let response = http::request(
            handle.addr(),
            "POST",
            "/pipeline?threshold=0.5&budget=10",
            body.as_bytes(),
        )
        .unwrap();
        assert_eq!(response.status, 200);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.starts_with("cluster,source,"), "{text}");
        let golden = http::request(
            handle.addr(),
            "POST",
            "/pipeline?threshold=0.5&budget=10&output=golden",
            body.as_bytes(),
        )
        .unwrap();
        assert!(String::from_utf8(golden.body)
            .unwrap()
            .starts_with("cluster,"));
        let summary = http::request(
            handle.addr(),
            "POST",
            "/pipeline?threshold=0.5&budget=10&output=summary",
            body.as_bytes(),
        )
        .unwrap();
        assert!(String::from_utf8(summary.body)
            .unwrap()
            .contains("resolved 6 records"));
        handle.stop();
        join.join().unwrap();
    }
}
