//! # ec-serve — the online consolidation service
//!
//! The batch CLI re-learns everything per invocation; this crate is the
//! *learn once, apply forever* deployment mode: a long-lived, std-only
//! (`TcpListener` + hand-rolled HTTP/1.1, no external dependencies) service
//! started via `ec serve --addr … --threads N`. Three pieces work together:
//!
//! * the **shared work-stealing worker pool** (re-exported here as
//!   [`pool`], implemented in `ec_graph::pool` so the `Parallelism` knob can
//!   adopt it without a dependency cycle) both executes connection handlers
//!   and the sharded consolidation stages they fan out — no scoped threads
//!   are spawned per request or per speculative grouping batch;
//! * the **[`ProgramLibrary`]** holds human-verified transformation
//!   programs; `POST /pipeline` runs accumulate newly approved groups into
//!   it, `POST /apply` standardizes incoming records through it *without
//!   re-learning*, and `GET /library` exposes the text snapshot;
//! * **streamed endpoints**: request bodies are parsed record-at-a-time off
//!   the socket and responses are written cluster-at-a-time through chunked
//!   encoding, so per-connection memory is bounded by the parsed dataset
//!   (exactly like the CLI), never by raw request/response bytes.
//!
//! Connections are **kept alive**: sequential requests reuse the socket
//! (HTTP/1.1 semantics — persistent unless `Connection: close`; HTTP/1.0
//! opts in via `Connection: keep-alive`) with a short idle timeout, so a
//! client looping `apply` calls pays the TCP handshake once. Errors and
//! `POST /shutdown` close the connection.
//!
//! ## Endpoints
//!
//! | Endpoint | Behaviour |
//! |---|---|
//! | `GET /healthz` | liveness + request counter / pool size headers |
//! | `GET /metrics` | the process-wide metrics registry in Prometheus text exposition |
//! | `GET /library` | the program-library text snapshot + fast-path hit/miss totals |
//! | `POST /library` | merge a posted snapshot into the library (the router's replication channel) |
//! | `POST /pipeline?…` | flat CSV body → standardized (or golden) CSV, byte-identical to `ec pipeline` with the same flags |
//! | `POST /apply` | flat CSV body → library-standardized flat CSV; unmatched counts in chunked trailers |
//! | `POST /ingest?…` | flat CSV batch → incremental consolidation via a persistent [`DeltaPipeline`]; answers the current golden CSV |
//! | `POST /shutdown` | graceful stop (used by tests and the CI smoke job) |
//!
//! `POST /ingest` streams batches into one long-lived delta session: the
//! first batch fixes the session's parameters (`threshold`, `budget`,
//! `mode`, `truth-method`, `name`) and columns, subsequent batches must
//! repeat them (else `400`), and after every batch the response carries the
//! *complete* current golden CSV — byte-identical to what one `ec pipeline`
//! run over the concatenation of every batch so far would produce — plus
//! `X-Ec-Library-Hits` / `X-Ec-Library-Misses` headers counting how many of
//! the batch's records the program library resolved without consolidation.
//! Programs the session learns merge into the server's library after each
//! batch, so `/apply` picks them up immediately.
//!
//! With `--auth-token SECRET` every mutating (`POST`) endpoint requires an
//! `Authorization: Bearer SECRET` header and answers `401` without it;
//! `GET` endpoints stay open for health probes and snapshot reads.
//!
//! `POST /pipeline` accepts the CLI's knobs as query parameters:
//! `threshold`, `budget`, `mode` (`auto`/`approve-all`), `truth-method`
//! (`majority`/`reliability`), `column`, `name`, and `output` selecting the
//! artifact (`standardized`, the default, matching `--output`; `golden`
//! matching `--golden`; or `summary`).
//!
//! ## Scale-out
//!
//! One process is one shard. `ec serve --route b1:port,b2:port,…` runs the
//! same binary as a **router** instead (see [`Router`]): a front-end that
//! owns no library and runs no consolidation, but partitions `/apply` by
//! column and routes `/pipeline` by blocking key across backend `ec serve`
//! processes over a consistent-hash [`ring`], health-checking backends and
//! replicating library mutations between them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod conn;
pub mod http;
pub mod ring;
pub mod router;

pub use ec_graph::pool;
pub use router::{Router, RouterConfig, RouterHandle};

use conn::{BodyReader, HandlerResult, HttpFailure, Lifecycle, Service};
use ec_core::{
    resolve_column_spec, standardize_columns, standardize_columns_compiled,
    write_golden_records_csv, ApplyReport, AutoMode, ColumnReport, CompiledDataset,
    ConsolidationConfig, DeltaPipeline, FusedPipeline, Pipeline, ProgramLibrary, TruthMethod,
};
use ec_data::stream::DatasetSink;
use ec_data::Dataset;
use ec_data::{csv::CsvWriter, ClusteredCsvWriter, FlatCsvReader, RecordStream};
use ec_resolution::{RawRecord, ResolverConfig};
use http::{ChunkedWriter, Persistence, Request};
use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Configuration of [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7171` (port 0 picks an ephemeral
    /// port, which the tests use).
    pub addr: String,
    /// Worker threads for the shared pool (0 = auto: `EC_THREADS` or the
    /// machine). Connection handling and the sharded consolidation stages
    /// run on the same pool, and because every stage is bit-identical for
    /// any thread count, this knob never changes responses — only latency.
    pub threads: usize,
    /// The initial learned-program library (typically loaded from a
    /// snapshot file by `ec serve --library`).
    pub library: ProgramLibrary,
    /// Maximum concurrent connections (0 = unbounded). Connections over the
    /// cap are rejected with `503` + `Retry-After` instead of queueing
    /// unboundedly on the shared pool.
    pub max_connections: usize,
    /// Expire library entries untouched for this long (`None` = never).
    /// Sweeps run lazily on the endpoints that read the library.
    pub library_ttl: Option<Duration>,
    /// A compiled dataset preloaded at startup (`ec serve --artifact`,
    /// typically memory-mapped through `ec-artifact`). With it set, an
    /// **empty-body** `POST /pipeline` replays the compiled consolidation —
    /// byte-identical to posting the original flat CSV, but skipping parse,
    /// resolve, candidate generation and index building — and an empty-body
    /// `POST /apply` standardizes the compiled dataset's records through the
    /// current library. Requests *with* a body behave exactly as without an
    /// artifact.
    pub preloaded: Option<Arc<CompiledDataset>>,
    /// When set, every mutating (`POST`) endpoint requires
    /// `Authorization: Bearer <token>` and answers `401` without it.
    pub auth_token: Option<String>,
    /// Bound on the `/ingest` session's per-cluster candidate cache
    /// (`ec serve --ingest-cache-cap`); `None`/0 = unbounded. Eviction is
    /// memory-only — evicted contributions are regenerated on demand, so
    /// responses never change.
    pub ingest_cache_cap: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".to_string(),
            threads: 0,
            library: ProgramLibrary::new(),
            max_connections: 0,
            library_ttl: None,
            preloaded: None,
            auth_token: None,
            ingest_cache_cap: None,
        }
    }
}

/// The parameters an `/ingest` delta session is pinned to. The first batch
/// fixes them; every later batch must repeat them exactly, because a
/// [`DeltaPipeline`] is only equivalent to a one-shot rebuild when every
/// batch ran under one configuration.
#[derive(Debug, Clone, PartialEq)]
struct IngestParams {
    threshold: f64,
    budget: usize,
    mode: AutoMode,
    truth: TruthMethod,
    name: String,
}

/// The server's one persistent delta-ingest session.
struct IngestSession {
    params: IngestParams,
    delta: DeltaPipeline,
}

/// Shared, connection-visible server state.
struct ServerState {
    library: RwLock<ProgramLibrary>,
    threads: usize,
    max_connections: usize,
    preloaded: Option<Arc<CompiledDataset>>,
    /// The `/ingest` session, created by the first batch. One mutex-held
    /// session serializes batches — the delta pipeline's equivalence
    /// guarantee is defined over a *sequence* of batches, so concurrent
    /// ingests have no meaningful interleaving anyway.
    ingest: Mutex<Option<IngestSession>>,
    /// Lifetime fast-path hits: `/apply` cells the library resolved
    /// (rewritten or already canonical) plus `/ingest` records wholly
    /// recognized from seen shapes. Surfaced on `GET /library` and, as the
    /// registry series behind that header, on `GET /metrics` — the counter
    /// is a per-instance labeled series so several servers in one process
    /// (tests, embedded fleets) never cross-pollute.
    library_hits: ec_obs::Counter,
    /// Lifetime fast-path misses: `/apply` cells no program covered plus
    /// `/ingest` records that entered the residue path.
    library_misses: ec_obs::Counter,
    /// Bound on the `/ingest` session's per-cluster candidate cache.
    ingest_cache_cap: Option<usize>,
    auth_token: Option<String>,
    life: Lifecycle,
}

/// Distinguishes the per-instance registry series of multiple servers in
/// one process.
static INSTANCE_SEQ: AtomicU64 = AtomicU64::new(0);

impl ServerState {
    /// Expires TTL-stale library entries. Lazy by design: a sweep runs on
    /// the endpoints that are about to read the library, so an idle server
    /// does no timer work and a busy one stays current.
    fn sweep_library_ttl(&self) {
        if self.library.read().unwrap().ttl().is_some() {
            self.library.write().unwrap().evict_expired(Instant::now());
        }
    }
}

impl Service for ServerState {
    fn lifecycle(&self) -> &Lifecycle {
        &self.life
    }

    fn metrics_service() -> &'static str {
        "serve"
    }

    fn max_connections(&self) -> usize {
        self.max_connections
    }

    /// Connections are detached, panic-isolated jobs on the shared pool —
    /// handlers are the CPU work, so the pool is the right executor. FIFO
    /// submission matters: a connection that yields its worker mid-burst
    /// re-queues itself through here, and on the worker's own LIFO deque it
    /// would be popped straight back, starving every other connection (and
    /// the router's health probes) behind it.
    fn execute(&self, job: Box<dyn FnOnce() + Send + 'static>) {
        pool::shared().spawn_fifo(job);
    }

    fn dispatch(
        this: &Arc<Self>,
        request: &Request,
        has_body: bool,
        persistence: Persistence,
        body: &mut BodyReader<'_>,
        writer: &mut BufWriter<TcpStream>,
    ) -> HandlerResult {
        dispatch(request, has_body, persistence, body, writer, this)
    }
}

/// The bound (but not yet running) service. [`Server::run`] blocks on the
/// accept loop until a shutdown is requested.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A cheap handle for stopping a running server and reading its address.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.state.life.addr
    }

    /// Requests a graceful stop and wakes the accept loop.
    pub fn stop(&self) {
        self.state.life.request_stop();
    }

    /// Requests served so far.
    pub fn requests(&self) -> usize {
        self.state.life.requests.load(Ordering::Relaxed)
    }

    /// A snapshot of the current program library.
    pub fn library_snapshot(&self) -> String {
        self.state.library.read().unwrap().to_snapshot()
    }
}

impl Server {
    /// Binds the listener and sizes the shared worker pool. The pool's size
    /// is pinned process-wide by its first user, so bind early.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let pool = pool::configure_shared(config.threads);
        let mut library = config.library;
        library.set_ttl(config.library_ttl);
        let instance = INSTANCE_SEQ.fetch_add(1, Ordering::Relaxed).to_string();
        let library_hits = ec_obs::counter_with(
            "ec_library_hits_total",
            "Library fast-path hits: /apply cells the library resolved plus /ingest records wholly recognized from seen shapes.",
            &[("instance", &instance)],
        );
        let library_misses = ec_obs::counter_with(
            "ec_library_misses_total",
            "Library fast-path misses: /apply cells no program covered plus /ingest records that entered the residue path.",
            &[("instance", &instance)],
        );
        let state = Arc::new(ServerState {
            library: RwLock::new(library),
            threads: if config.threads == 0 {
                pool.threads()
            } else {
                config.threads
            },
            max_connections: config.max_connections,
            preloaded: config.preloaded,
            ingest: Mutex::new(None),
            library_hits,
            library_misses,
            ingest_cache_cap: config.ingest_cache_cap,
            auth_token: config.auth_token,
            life: Lifecycle::new(listener.local_addr()?),
        });
        Ok(Server { listener, state })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.life.addr
    }

    /// A stop/inspect handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs the accept loop until [`ServerHandle::stop`] (or
    /// `POST /shutdown`) is called. Each connection is handled as one
    /// detached, panic-isolated job on the shared pool.
    pub fn run(self) -> io::Result<()> {
        conn::run_accept_loop(self.listener, self.state)
    }
}

fn dispatch(
    request: &Request,
    has_body: bool,
    persistence: Persistence,
    body: &mut BodyReader<'_>,
    writer: &mut BufWriter<TcpStream>,
    state: &Arc<ServerState>,
) -> HandlerResult {
    let require_body = || -> Result<(), HttpFailure> {
        if has_body {
            Ok(())
        } else {
            Err(HttpFailure::new(
                411,
                "a Content-Length body is required (chunked requests are not supported)",
            ))
        }
    };
    // Every mutating endpoint is a POST; gate them all before routing so an
    // unauthorized caller cannot even probe which POST paths exist.
    if request.method == "POST" {
        require_bearer(request, state.auth_token.as_deref())?;
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(writer, state, persistence),
        ("GET", "/metrics") => handle_metrics(writer, persistence),
        ("GET", "/library") => handle_library(writer, state, persistence),
        ("POST", "/library") => {
            require_body()?;
            handle_library_merge(body, writer, state, persistence)
        }
        ("POST", "/shutdown") => {
            // The accept loop is stopping; never invite another request.
            http::write_response(
                writer,
                200,
                "text/plain",
                &[],
                Persistence::Close,
                b"shutting down\n",
            )
            .map_err(io_failure)?;
            let _ = writer.flush();
            state.life.request_stop();
            Ok(())
        }
        ("POST", "/pipeline") => {
            require_body()?;
            // An empty declared body (`Content-Length: 0`) against a
            // preloaded artifact replays the compiled consolidation.
            let body_empty = body.remaining() == 0;
            handle_pipeline(request, body_empty, body, writer, state, persistence)
        }
        ("POST", "/apply") => {
            require_body()?;
            let body_empty = body.remaining() == 0;
            handle_apply(body_empty, body, writer, state, persistence)
        }
        ("POST", "/ingest") => {
            require_body()?;
            handle_ingest(request, body, writer, state, persistence)
        }
        ("GET" | "POST", _) => Err(HttpFailure::new(
            404,
            format!("no such endpoint: {}", request.path),
        )),
        _ => Err(HttpFailure::new(405, "method not allowed")),
    }
}

/// Enforces `Authorization: Bearer <token>` when the service was started
/// with an auth token; a service without one admits everything. Shared with
/// the router (same header, same failure).
pub(crate) fn require_bearer(
    request: &Request,
    auth_token: Option<&str>,
) -> Result<(), HttpFailure> {
    let Some(token) = auth_token else {
        return Ok(());
    };
    let presented = request
        .header("authorization")
        .and_then(|v| v.strip_prefix("Bearer "));
    if presented == Some(token) {
        Ok(())
    } else {
        Err(HttpFailure::new(
            401,
            "this endpoint requires 'Authorization: Bearer <token>'",
        ))
    }
}

fn io_failure(e: io::Error) -> HttpFailure {
    HttpFailure::new(500, format!("io error: {e}"))
}

/// `GET /metrics`: the process-wide registry in Prometheus text exposition.
/// Open like `/healthz` — the scrape is read-only, and health probes and
/// metric collectors sit on the same trust boundary. Shared with the router
/// (one registry per process either way).
pub(crate) fn handle_metrics(
    writer: &mut BufWriter<TcpStream>,
    persistence: Persistence,
) -> HandlerResult {
    let body = ec_obs::render();
    http::write_response(
        writer,
        200,
        "text/plain; version=0.0.4",
        &[],
        persistence,
        body.as_bytes(),
    )
    .map_err(io_failure)
}

fn handle_healthz(
    writer: &mut BufWriter<TcpStream>,
    state: &ServerState,
    persistence: Persistence,
) -> HandlerResult {
    let library = state.library.read().unwrap();
    let headers = vec![
        (
            "X-Ec-Requests".to_string(),
            state.life.requests.load(Ordering::Relaxed).to_string(),
        ),
        ("X-Ec-Pool-Threads".to_string(), state.threads.to_string()),
        (
            "X-Ec-Library-Version".to_string(),
            library.version().to_string(),
        ),
        (
            "X-Ec-Library-Entries".to_string(),
            library.len().to_string(),
        ),
    ];
    drop(library);
    http::write_response(writer, 200, "text/plain", &headers, persistence, b"ok\n")
        .map_err(io_failure)
}

fn handle_library(
    writer: &mut BufWriter<TcpStream>,
    state: &ServerState,
    persistence: Persistence,
) -> HandlerResult {
    state.sweep_library_ttl();
    let library = state.library.read().unwrap();
    let headers = vec![
        (
            "X-Ec-Library-Version".to_string(),
            library.version().to_string(),
        ),
        (
            "X-Ec-Library-Evictions".to_string(),
            library.evictions().to_string(),
        ),
        (
            "X-Ec-Library-Cap".to_string(),
            library
                .column_capacity()
                .map(|c| c.to_string())
                .unwrap_or_else(|| "unbounded".to_string()),
        ),
        (
            "X-Ec-Library-Ttl".to_string(),
            library
                .ttl()
                .map(|t| t.as_secs().to_string())
                .unwrap_or_else(|| "unbounded".to_string()),
        ),
        // Lifetime fast-path totals across `/apply` and `/ingest`.
        (
            "X-Ec-Library-Hits".to_string(),
            state.library_hits.get().to_string(),
        ),
        (
            "X-Ec-Library-Misses".to_string(),
            state.library_misses.get().to_string(),
        ),
    ];
    let snapshot = library.to_snapshot();
    drop(library);
    http::write_response(
        writer,
        200,
        "text/plain",
        &headers,
        persistence,
        snapshot.as_bytes(),
    )
    .map_err(io_failure)
}

/// `POST /library`: merges a posted text snapshot into the server's library
/// — the router's replication channel, and handy for seeding a running
/// server by hand. Answers with the resulting version.
fn handle_library_merge(
    body: impl Read,
    writer: &mut BufWriter<TcpStream>,
    state: &ServerState,
    persistence: Persistence,
) -> HandlerResult {
    let mut text = String::new();
    let mut body = body;
    body.read_to_string(&mut text)
        .map_err(|e| HttpFailure::new(400, format!("unreadable snapshot body: {e}")))?;
    let incoming = ProgramLibrary::from_snapshot(&text)
        .map_err(|e| HttpFailure::new(400, format!("bad library snapshot: {e}")))?;
    let mut library = state.library.write().unwrap();
    library.merge(&incoming);
    let headers = vec![(
        "X-Ec-Library-Version".to_string(),
        library.version().to_string(),
    )];
    let entries = library.len();
    drop(library);
    http::write_response(
        writer,
        200,
        "text/plain",
        &headers,
        persistence,
        format!(
            "merged {} entries; library now holds {entries}\n",
            incoming.len()
        )
        .as_bytes(),
    )
    .map_err(io_failure)
}

/// The artifact `POST /pipeline` streams back.
enum PipelineOutput {
    Standardized,
    Golden,
    Summary,
}

fn handle_pipeline(
    request: &Request,
    body_empty: bool,
    body: impl Read,
    writer: &mut BufWriter<TcpStream>,
    state: &Arc<ServerState>,
    persistence: Persistence,
) -> HandlerResult {
    let fail = |message: String| HttpFailure::new(400, message);
    let threshold: f64 = match request.query_param("threshold") {
        None => 0.75,
        Some(v) => v
            .parse()
            .map_err(|_| fail(format!("threshold expects a number, got '{v}'")))?,
    };
    if !(0.0..=1.0).contains(&threshold) {
        return Err(fail(format!(
            "threshold must be between 0 and 1, got {threshold}"
        )));
    }
    let budget: usize = match request.query_param("budget") {
        None => 100,
        Some(v) => v
            .parse()
            .map_err(|_| fail(format!("budget expects an integer, got '{v}'")))?,
    };
    let mode = match request.query_param("mode") {
        None => AutoMode::Auto,
        Some(name) => AutoMode::parse(name).ok_or_else(|| {
            fail(format!(
                "unknown mode '{name}'; expected auto or approve-all"
            ))
        })?,
    };
    let truth_method = match request.query_param("truth-method").unwrap_or("majority") {
        "majority" | "mc" => TruthMethod::MajorityConsensus,
        "reliability" | "source-reliability" => TruthMethod::SourceReliability,
        other => return Err(fail(format!("unknown truth method '{other}'"))),
    };
    let output = match request.query_param("output").unwrap_or("standardized") {
        "standardized" | "std" => PipelineOutput::Standardized,
        "golden" => PipelineOutput::Golden,
        "summary" => PipelineOutput::Summary,
        other => {
            return Err(fail(format!(
                "unknown output '{other}'; expected standardized, golden or summary"
            )))
        }
    };
    let name = request
        .query_param("name")
        .unwrap_or("resolved")
        .to_string();

    // An empty body against a preloaded artifact: replay the compiled
    // consolidation instead of parsing and re-preparing anything. The
    // clusters were formed at compile time, so an explicit threshold must
    // match the artifact's — it cannot be re-resolved here.
    if body_empty {
        if let Some(compiled) = state.preloaded.as_ref() {
            if request.query_param("threshold").is_some() && threshold != compiled.threshold {
                return Err(fail(format!(
                    "the preloaded artifact was compiled at threshold {}, not {threshold}; \
                     re-run `ec compile` to change it",
                    compiled.threshold
                )));
            }
            let mut dataset = compiled.dataset.clone();
            let columns = resolve_pipeline_columns(request, &dataset)?;
            let pipeline = Pipeline::new(
                ConsolidationConfig {
                    budget,
                    ..ConsolidationConfig::default()
                }
                .with_threads(state.threads),
            );
            let mut learned = ProgramLibrary::new();
            let reports = standardize_columns_compiled(
                &pipeline,
                compiled,
                &mut dataset,
                &columns,
                mode,
                Some(&mut learned),
            );
            let golden = pipeline.discover_golden_records(&dataset, truth_method);
            if !learned.is_empty() {
                state.library.write().unwrap().merge(&learned);
            }
            return stream_pipeline_output(
                writer,
                persistence,
                &dataset,
                &golden,
                &reports,
                compiled.threshold,
                output,
            );
        }
    }

    // Resolve the body stream straight off the socket — the raw CSV is never
    // buffered; only the resolved dataset (the working set every entry point
    // needs) lives in memory.
    let mut stream =
        FlatCsvReader::new(body).map_err(|e| fail(format!("bad flat CSV body: {e}")))?;
    let fused = FusedPipeline::new(
        ResolverConfig {
            threshold,
            ..ResolverConfig::default()
        },
        ConsolidationConfig {
            budget,
            ..ConsolidationConfig::default()
        }
        .with_threads(state.threads),
    );
    let mut dataset = fused
        .resolve_stream(&name, &mut stream)
        .map_err(|e| fail(format!("bad flat CSV body: {e}")))?;
    let columns = resolve_pipeline_columns(request, &dataset)?;

    // Standardize with the shared automated driver (byte-identical to the
    // CLI), learning into a request-local library merged into the server's
    // store afterwards.
    let mut learned = ProgramLibrary::new();
    let reports = standardize_columns(
        fused.pipeline(),
        &mut dataset,
        &columns,
        mode,
        // Resolver output always carries per-cell truth, exactly like the
        // clustered CSV `ec resolve` writes — so `auto` uses the simulated
        // expert, matching the CLI pipeline.
        true,
        Some(&mut learned),
    );
    let golden = fused
        .pipeline()
        .discover_golden_records(&dataset, truth_method);
    if !learned.is_empty() {
        state.library.write().unwrap().merge(&learned);
    }
    stream_pipeline_output(
        writer,
        persistence,
        &dataset,
        &golden,
        &reports,
        threshold,
        output,
    )
}

/// Resolves the optional `column` query parameter against the dataset —
/// shared by the fresh and preloaded `/pipeline` paths.
fn resolve_pipeline_columns(
    request: &Request,
    dataset: &Dataset,
) -> Result<Vec<usize>, HttpFailure> {
    match request.query_param("column") {
        Some(spec) => Ok(vec![resolve_column_spec(&dataset.columns, spec)
            .ok_or_else(|| {
                HttpFailure::new(
                    400,
                    format!(
                        "no column '{spec}'; available columns: {}",
                        dataset.columns.join(", ")
                    ),
                )
            })?]),
        None => Ok((0..dataset.columns.len()).collect()),
    }
}

/// Streams the selected `/pipeline` artifact as a chunked response — the one
/// serialization point for both the fresh and preloaded paths, which is what
/// makes their outputs byte-identical.
fn stream_pipeline_output(
    writer: &mut BufWriter<TcpStream>,
    persistence: Persistence,
    dataset: &Dataset,
    golden: &[Vec<Option<String>>],
    reports: &[ColumnReport],
    threshold: f64,
    output: PipelineOutput,
) -> HandlerResult {
    let approved: usize = reports.iter().map(|r| r.groups_approved).sum();
    let headers = vec![
        (
            "X-Ec-Clusters".to_string(),
            dataset.clusters.len().to_string(),
        ),
        (
            "X-Ec-Records".to_string(),
            dataset.num_records().to_string(),
        ),
        ("X-Ec-Groups-Approved".to_string(), approved.to_string()),
    ];
    http::write_chunked_head(writer, 200, "text/csv", &headers, persistence, &[])
        .map_err(io_failure)?;
    let mut body_writer = ChunkedWriter::new(writer);
    match output {
        PipelineOutput::Standardized => {
            // Cluster-at-a-time through the same sink the CLI streams its
            // `--output` file through — byte-identical by construction.
            let mut buffered = BufWriter::with_capacity(8 * 1024, &mut body_writer);
            let mut csv =
                ClusteredCsvWriter::new(&mut buffered, &dataset.columns).map_err(io_failure)?;
            for cluster in &dataset.clusters {
                csv.write_cluster(cluster).map_err(io_failure)?;
            }
            csv.finish().map_err(io_failure)?;
            drop(csv);
            buffered.flush().map_err(io_failure)?;
        }
        PipelineOutput::Golden => {
            let mut buffered = BufWriter::with_capacity(8 * 1024, &mut body_writer);
            write_golden_records_csv(&dataset.columns, golden, &mut buffered)
                .map_err(io_failure)?;
            buffered.flush().map_err(io_failure)?;
        }
        PipelineOutput::Summary => {
            let mut text = format!(
                "resolved {} records into {} clusters (threshold {threshold})\n",
                dataset.num_records(),
                dataset.clusters.len()
            );
            for report in reports {
                text.push_str(&format!(
                    "column '{}': {} candidates, {} reviewed, {} approved, {} cells updated\n",
                    dataset.columns[report.column],
                    report.candidates,
                    report.groups_reviewed,
                    report.groups_approved,
                    report.cells_updated
                ));
            }
            body_writer.write_all(text.as_bytes()).map_err(io_failure)?;
        }
    }
    body_writer.finish(&[]).map_err(io_failure)?;
    Ok(())
}

/// `POST /ingest`: one batch of flat CSV records into the server's
/// persistent [`DeltaPipeline`]. The response body is the complete current
/// golden-record CSV — byte-identical to a full `ec pipeline` rebuild over
/// every batch ingested so far — and the headers report the batch's
/// fast-path accounting.
fn handle_ingest(
    request: &Request,
    body: impl Read,
    writer: &mut BufWriter<TcpStream>,
    state: &Arc<ServerState>,
    persistence: Persistence,
) -> HandlerResult {
    let fail = |message: String| HttpFailure::new(400, message);
    let threshold: f64 = match request.query_param("threshold") {
        None => 0.75,
        Some(v) => v
            .parse()
            .map_err(|_| fail(format!("threshold expects a number, got '{v}'")))?,
    };
    if !(0.0..=1.0).contains(&threshold) {
        return Err(fail(format!(
            "threshold must be between 0 and 1, got {threshold}"
        )));
    }
    let budget: usize = match request.query_param("budget") {
        None => 100,
        Some(v) => v
            .parse()
            .map_err(|_| fail(format!("budget expects an integer, got '{v}'")))?,
    };
    let mode = match request.query_param("mode") {
        None => AutoMode::Auto,
        Some(name) => AutoMode::parse(name).ok_or_else(|| {
            fail(format!(
                "unknown mode '{name}'; expected auto or approve-all"
            ))
        })?,
    };
    let truth = match request.query_param("truth-method").unwrap_or("majority") {
        "majority" | "mc" => TruthMethod::MajorityConsensus,
        "reliability" | "source-reliability" => TruthMethod::SourceReliability,
        other => return Err(fail(format!("unknown truth method '{other}'"))),
    };
    let params = IngestParams {
        threshold,
        budget,
        mode,
        truth,
        name: request
            .query_param("name")
            .unwrap_or("resolved")
            .to_string(),
    };

    // Parse the whole batch off the socket before taking the session lock:
    // a slow client must not stall other ingests mid-upload.
    let mut stream =
        FlatCsvReader::new(body).map_err(|e| fail(format!("bad flat CSV body: {e}")))?;
    let columns = stream.columns().to_vec();
    let mut records = Vec::new();
    while let Some(record) = stream.next_record() {
        let record = record.map_err(|e| fail(format!("bad flat CSV body: {e}")))?;
        records.push(RawRecord::new(record.source, record.fields));
    }

    // One session per server; batches serialize on the lock (see the field
    // docs — delta correctness is defined over a batch *sequence*).
    let mut guard = state.ingest.lock().unwrap();
    if let Some(existing) = guard.as_ref() {
        if existing.params != params {
            return Err(fail(format!(
                "an ingest session is already open with different parameters \
                 (threshold {}, budget {}, name '{}'); every batch must repeat \
                 the first batch's parameters",
                existing.params.threshold, existing.params.budget, existing.params.name
            )));
        }
        if existing.delta.columns() != columns.as_slice() {
            return Err(fail(format!(
                "the open ingest session has columns [{}], this batch posted [{}]",
                existing.delta.columns().join(", "),
                columns.join(", ")
            )));
        }
    } else {
        *guard = Some(IngestSession {
            delta: DeltaPipeline::new(
                &params.name,
                columns,
                ResolverConfig {
                    threshold,
                    ..ResolverConfig::default()
                },
                ConsolidationConfig {
                    budget,
                    ..ConsolidationConfig::default()
                }
                .with_threads(state.threads),
                mode,
                truth,
            )
            .with_cache_cap(state.ingest_cache_cap),
            params,
        });
    }
    let session = guard.as_mut().expect("the session was just ensured");
    let report = session.delta.ingest_batch(records);
    state.library_hits.add(report.library_hits as u64);
    state.library_misses.add(report.residue as u64);
    // Everything the session has learned folds into the serving library, so
    // `/apply` standardizes through it immediately (merging is idempotent —
    // re-merging the whole session library each batch only adds new entries).
    if !session.delta.library().is_empty() {
        state
            .library
            .write()
            .unwrap()
            .merge(session.delta.library());
    }

    let mut golden = Vec::new();
    session
        .delta
        .write_golden_csv(&mut golden)
        .map_err(io_failure)?;
    let headers = vec![
        (
            "X-Ec-Library-Hits".to_string(),
            report.library_hits.to_string(),
        ),
        (
            "X-Ec-Library-Misses".to_string(),
            report.residue.to_string(),
        ),
        ("X-Ec-Clusters".to_string(), report.clusters.to_string()),
        ("X-Ec-Records".to_string(), report.total_records.to_string()),
        (
            "X-Ec-Batch-Records".to_string(),
            report.batch_records.to_string(),
        ),
        (
            "X-Ec-Batches".to_string(),
            session.delta.batches().to_string(),
        ),
        (
            "X-Ec-Replayed-Columns".to_string(),
            report.replayed_columns.to_string(),
        ),
    ];
    http::write_response(writer, 200, "text/csv", &headers, persistence, &golden)
        .map_err(io_failure)
}

fn handle_apply(
    body_empty: bool,
    body: impl Read,
    writer: &mut BufWriter<TcpStream>,
    state: &Arc<ServerState>,
    persistence: Persistence,
) -> HandlerResult {
    // An empty body against a preloaded artifact: standardize the compiled
    // dataset's own records through the current library.
    if body_empty {
        if let Some(compiled) = state.preloaded.as_ref() {
            let compiled = Arc::clone(compiled);
            return handle_apply_compiled(&compiled, writer, state, persistence);
        }
    }
    let mut stream = FlatCsvReader::new(body)
        .map_err(|e| HttpFailure::new(400, format!("bad flat CSV body: {e}")))?;
    let columns = stream.columns().to_vec();
    let library = apply_snapshot(state);
    let applier = library.applier(&columns);
    let mut report = ApplyReport::default();

    write_apply_head(writer, persistence, library.version()).map_err(io_failure)?;
    let mut body_writer = ChunkedWriter::new(writer);
    {
        // Record in, record out: per-connection memory is one record plus
        // the CSV reader's refill buffer.
        let mut buffered = BufWriter::with_capacity(8 * 1024, &mut body_writer);
        let mut csv = CsvWriter::new(&mut buffered);
        let header = std::iter::once("source").chain(columns.iter().map(String::as_str));
        csv.write_record(header).map_err(io_failure)?;
        while let Some(record) = stream.next_record() {
            let mut record =
                record.map_err(|e| HttpFailure::new(400, format!("bad flat CSV body: {e}")))?;
            applier.apply_fields(&mut record.fields, &mut report);
            let fields = std::iter::once(record.source.to_string()).chain(record.fields);
            csv.write_record(fields).map_err(io_failure)?;
        }
        csv.flush().map_err(io_failure)?;
        buffered.flush().map_err(io_failure)?;
    }
    finish_apply_body(body_writer, &report, state)
}

/// The preloaded-artifact `/apply` path: the compiled dataset's records are
/// the input, flattened in cluster order exactly like `ec compile
/// --emit-flat` writes them, so the response matches posting that file.
fn handle_apply_compiled(
    compiled: &CompiledDataset,
    writer: &mut BufWriter<TcpStream>,
    state: &Arc<ServerState>,
    persistence: Persistence,
) -> HandlerResult {
    let columns = compiled.dataset.columns.clone();
    let library = apply_snapshot(state);
    let applier = library.applier(&columns);
    let mut report = ApplyReport::default();

    write_apply_head(writer, persistence, library.version()).map_err(io_failure)?;
    let mut body_writer = ChunkedWriter::new(writer);
    {
        let mut buffered = BufWriter::with_capacity(8 * 1024, &mut body_writer);
        let mut csv = CsvWriter::new(&mut buffered);
        let header = std::iter::once("source").chain(columns.iter().map(String::as_str));
        csv.write_record(header).map_err(io_failure)?;
        for cluster in &compiled.dataset.clusters {
            for row in &cluster.rows {
                let mut fields: Vec<String> =
                    row.cells.iter().map(|c| c.observed.clone()).collect();
                applier.apply_fields(&mut fields, &mut report);
                let fields = std::iter::once(row.source.to_string()).chain(fields);
                csv.write_record(fields).map_err(io_failure)?;
            }
        }
        csv.flush().map_err(io_failure)?;
        buffered.flush().map_err(io_failure)?;
    }
    finish_apply_body(body_writer, &report, state)
}

/// Sweeps the TTL and clones the library for an `/apply` run. The snapshot
/// is taken under a short-lived guard: holding the read lock across a
/// streamed (client-paced) request would stall every /pipeline merge — and,
/// behind that queued writer, all other readers.
fn apply_snapshot(state: &ServerState) -> ProgramLibrary {
    state.sweep_library_ttl();
    state.library.read().unwrap().clone()
}

fn write_apply_head(
    writer: &mut BufWriter<TcpStream>,
    persistence: Persistence,
    library_version: u64,
) -> io::Result<()> {
    http::write_chunked_head(
        writer,
        200,
        "text/csv",
        &[(
            "X-Ec-Library-Version".to_string(),
            library_version.to_string(),
        )],
        persistence,
        &[
            "X-Ec-Records",
            "X-Ec-Cells-Rewritten",
            "X-Ec-Cells-Unmatched",
            "X-Ec-Library-Hits",
            "X-Ec-Library-Misses",
        ],
    )
}

/// Finishes a streamed `/apply` response. The fast-path counts ride as
/// chunked *trailers* (the body streams record-at-a-time, so they are only
/// known afterwards): hits are cells the library resolved — rewritten to a
/// canonical form or recognized as already canonical — misses are cells no
/// program covered. The same counts accumulate into the server-lifetime
/// totals `GET /library` reports.
fn finish_apply_body(
    body_writer: ChunkedWriter<&mut BufWriter<TcpStream>>,
    report: &ApplyReport,
    state: &ServerState,
) -> HandlerResult {
    let hits = report.cells_rewritten + report.cells_unchanged;
    let misses = report.cells_unmatched;
    state.library_hits.add(hits as u64);
    state.library_misses.add(misses as u64);
    body_writer
        .finish(&[
            ("X-Ec-Records".to_string(), report.records.to_string()),
            (
                "X-Ec-Cells-Rewritten".to_string(),
                report.cells_rewritten.to_string(),
            ),
            (
                "X-Ec-Cells-Unmatched".to_string(),
                report.cells_unmatched.to_string(),
            ),
            ("X-Ec-Library-Hits".to_string(), hits.to_string()),
            ("X-Ec-Library-Misses".to_string(), misses.to_string()),
        ])
        .map_err(io_failure)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_core::{ApprovedGroup, Group};
    use ec_graph::Replacement;
    use ec_replace::Direction;

    fn start_server(config: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind(config).expect("bind an ephemeral port");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("server run"));
        (handle, join)
    }

    fn ephemeral_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn healthz_and_unknown_endpoints() {
        let (handle, join) = start_server(ephemeral_config());
        let health = http::request(handle.addr(), "GET", "/healthz", b"").unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(health.body, b"ok\n");
        assert!(health.header("x-ec-pool-threads").is_some());
        let missing = http::request(handle.addr(), "GET", "/nope", b"").unwrap();
        assert_eq!(missing.status, 404);
        let bad_method = http::request(handle.addr(), "PUT", "/healthz", b"").unwrap();
        assert_eq!(bad_method.status, 405);
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let (handle, join) = start_server(ephemeral_config());
        // `request_many` fails outright if the server hangs up between
        // requests, so three identical answers prove actual socket reuse.
        let responses = http::request_many(handle.addr(), "GET", "/healthz", b"", 3).unwrap();
        assert_eq!(responses.len(), 3);
        for response in &responses[..2] {
            assert_eq!(response.status, 200);
            assert_eq!(response.body, b"ok\n");
            assert_eq!(response.header("connection"), Some("keep-alive"));
        }
        assert_eq!(
            responses[2].header("connection"),
            Some("close"),
            "the final request asked to close"
        );
        // All three requests were counted individually.
        assert!(handle.requests() >= 3);
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn keep_alive_reuses_the_connection_across_posted_bodies() {
        let (handle, join) = start_server(ephemeral_config());
        let body = b"source,Name\n0,\"Lee, Mary\"\n1,Mary Lee\n";
        let responses = http::request_many(handle.addr(), "POST", "/apply", body, 2).unwrap();
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].status, 200);
        assert_eq!(
            responses[0].body, responses[1].body,
            "both requests on the one connection see identical answers"
        );
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn shutdown_endpoint_stops_the_accept_loop() {
        let (handle, join) = start_server(ephemeral_config());
        let response = http::request(handle.addr(), "POST", "/shutdown", b"").unwrap();
        assert_eq!(response.status, 200);
        join.join().unwrap();
    }

    #[test]
    fn apply_standardizes_through_the_library_and_reports_unmatched() {
        let mut library = ProgramLibrary::new();
        library.record(
            "Name",
            &ApprovedGroup {
                group: Group::new(None, vec![Replacement::new("Lee, Mary", "Mary Lee")]),
                direction: Direction::Forward,
            },
        );
        let (handle, join) = start_server(ServeConfig {
            library,
            ..ephemeral_config()
        });
        let body = "source,Name\n0,\"Lee, Mary\"\n1,Mary Lee\n2,unknown\n";
        let response = http::request(handle.addr(), "POST", "/apply", body.as_bytes()).unwrap();
        assert_eq!(response.status, 200, "{:?}", response.body);
        let text = String::from_utf8(response.body.clone()).unwrap();
        assert_eq!(text, "source,Name\n0,Mary Lee\n1,Mary Lee\n2,unknown\n");
        assert_eq!(response.trailer("x-ec-records"), Some("3"));
        assert_eq!(response.trailer("x-ec-cells-rewritten"), Some("1"));
        assert_eq!(response.trailer("x-ec-cells-unmatched"), Some("1"));
        let snapshot = http::request(handle.addr(), "GET", "/library", b"").unwrap();
        assert_eq!(snapshot.header("x-ec-library-evictions"), Some("0"));
        assert_eq!(snapshot.header("x-ec-library-cap"), Some("unbounded"));
        assert!(String::from_utf8(snapshot.body)
            .unwrap()
            .contains("rewrite \"Lee, Mary\" \"Mary Lee\""));
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn pipeline_rejects_bad_parameters_and_bodies() {
        let (handle, join) = start_server(ephemeral_config());
        let bad_threshold = http::request(
            handle.addr(),
            "POST",
            "/pipeline?threshold=7",
            b"source,A\n0,x\n",
        )
        .unwrap();
        assert_eq!(bad_threshold.status, 400);
        let bad_mode = http::request(
            handle.addr(),
            "POST",
            "/pipeline?mode=interactive",
            b"source,A\n0,x\n",
        )
        .unwrap();
        assert_eq!(bad_mode.status, 400);
        let bad_body =
            http::request(handle.addr(), "POST", "/pipeline", b"not,a,flat\nheader\n").unwrap();
        assert_eq!(bad_body.status, 400);
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn pipeline_standardizes_and_learns_into_the_library() {
        let (handle, join) = start_server(ephemeral_config());
        let body = "source,Name\n\
                    0,\"Lee, Mary\"\n1,Mary Lee\n2,\"Lee, Mary\"\n\
                    0,\"Smith, James\"\n1,James Smith\n2,\"Smith, James\"\n";
        let response = http::request(
            handle.addr(),
            "POST",
            "/pipeline?threshold=0.5&budget=10",
            body.as_bytes(),
        )
        .unwrap();
        assert_eq!(response.status, 200);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.starts_with("cluster,source,"), "{text}");
        let golden = http::request(
            handle.addr(),
            "POST",
            "/pipeline?threshold=0.5&budget=10&output=golden",
            body.as_bytes(),
        )
        .unwrap();
        assert!(String::from_utf8(golden.body)
            .unwrap()
            .starts_with("cluster,"));
        let summary = http::request(
            handle.addr(),
            "POST",
            "/pipeline?threshold=0.5&budget=10&output=summary",
            body.as_bytes(),
        )
        .unwrap();
        assert!(String::from_utf8(summary.body)
            .unwrap()
            .contains("resolved 6 records"));
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn library_merge_endpoint_folds_a_posted_snapshot_in() {
        let (handle, join) = start_server(ephemeral_config());
        let mut incoming = ProgramLibrary::new();
        incoming.record(
            "Name",
            &ApprovedGroup {
                group: Group::new(None, vec![Replacement::new("Lee, Mary", "Mary Lee")]),
                direction: Direction::Forward,
            },
        );
        let response = http::request(
            handle.addr(),
            "POST",
            "/library",
            incoming.to_snapshot().as_bytes(),
        )
        .unwrap();
        assert_eq!(response.status, 200, "{:?}", response.body);
        assert!(response.header("x-ec-library-version").is_some());
        // The merged program now standardizes records.
        let applied = http::request(
            handle.addr(),
            "POST",
            "/apply",
            b"source,Name\n0,\"Lee, Mary\"\n",
        )
        .unwrap();
        assert_eq!(
            String::from_utf8(applied.body).unwrap(),
            "source,Name\n0,Mary Lee\n"
        );
        // Merging is idempotent and garbage is rejected cleanly.
        let again = http::request(
            handle.addr(),
            "POST",
            "/library",
            incoming.to_snapshot().as_bytes(),
        )
        .unwrap();
        assert_eq!(again.status, 200);
        let garbage = http::request(handle.addr(), "POST", "/library", b"not a snapshot").unwrap();
        assert_eq!(garbage.status, 400);
        let snapshot = http::request(handle.addr(), "GET", "/library", b"").unwrap();
        assert_eq!(snapshot.header("x-ec-library-ttl"), Some("unbounded"));
        assert!(String::from_utf8(snapshot.body)
            .unwrap()
            .contains("rewrite \"Lee, Mary\" \"Mary Lee\""));
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn library_ttl_is_advertised_and_sweeps_idle_entries() {
        let mut library = ProgramLibrary::new();
        library.record(
            "Name",
            &ApprovedGroup {
                group: Group::new(None, vec![Replacement::new("a", "b")]),
                direction: Direction::Forward,
            },
        );
        let (handle, join) = start_server(ServeConfig {
            library,
            // The server clamps sub-second TTLs up to one second, so this
            // cannot evict within the test's lifetime — it only proves the
            // wiring (header + sweep path) without a slow sleep.
            library_ttl: Some(Duration::from_secs(1)),
            ..ephemeral_config()
        });
        let snapshot = http::request(handle.addr(), "GET", "/library", b"").unwrap();
        assert_eq!(snapshot.header("x-ec-library-ttl"), Some("1"));
        assert_eq!(snapshot.header("x-ec-library-evictions"), Some("0"));
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn connections_over_the_cap_get_503_with_retry_after() {
        let (handle, join) = start_server(ServeConfig {
            max_connections: 1,
            ..ephemeral_config()
        });
        // Occupy the single slot with a connection mid-request: a partial
        // head parks its handler in the read loop without finishing.
        let mut holder = std::net::TcpStream::connect(handle.addr()).unwrap();
        holder.write_all(b"GET /healthz HTT").unwrap();
        holder.flush().unwrap();
        // The holder connects (and is accepted) first; the next connection
        // trips the cap on the accept thread. The inline rejection writes
        // and closes without reading the request, which can reset the
        // connection under the client's own write — retry past that race
        // (the holder occupies the slot for seconds either way).
        let rejected = (0..50)
            .find_map(|_| http::request(handle.addr(), "GET", "/healthz", b"").ok())
            .expect("no rejection response within the holder's window");
        assert_eq!(rejected.status, 503);
        assert_eq!(rejected.header("retry-after"), Some("1"));
        assert_eq!(rejected.header("connection"), Some("close"));
        // Releasing the slot re-admits new connections. Until the holder's
        // job notices the hangup, requests still trip the cap — and the
        // inline rejection can reset the connection mid-write exactly like
        // above, so errors here are retried, not fatal.
        drop(holder);
        let mut recovered = None;
        for _ in 0..100 {
            match http::request(handle.addr(), "GET", "/healthz", b"") {
                Ok(response) if response.status == 200 => {
                    recovered = Some(response);
                    break;
                }
                Ok(_) | Err(_) => {}
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(recovered.is_some(), "cap never released after disconnect");
        handle.stop();
        join.join().unwrap();
    }

    /// Compiles `flat` the way `ec compile` does for resolver input: resolve
    /// the stream at `threshold`, then prepare every partition eagerly.
    fn compile_flat(flat: &str, threshold: f64) -> ec_core::CompiledDataset {
        let fused = FusedPipeline::new(
            ResolverConfig {
                threshold,
                ..ResolverConfig::default()
            },
            ConsolidationConfig::default(),
        );
        let mut stream = FlatCsvReader::new(flat.as_bytes()).unwrap();
        let dataset = fused.resolve_stream("resolved", &mut stream).unwrap();
        ec_core::compile_dataset(dataset, threshold, true, &ConsolidationConfig::default())
    }

    /// The compiled dataset's records as flat CSV, cluster-major — the same
    /// order `handle_apply_compiled` streams and `ec compile --emit-flat`
    /// writes.
    fn flatten_compiled(compiled: &CompiledDataset) -> Vec<u8> {
        let mut flat = Vec::new();
        let mut csv = CsvWriter::new(&mut flat);
        let header =
            std::iter::once("source").chain(compiled.dataset.columns.iter().map(String::as_str));
        csv.write_record(header).unwrap();
        for cluster in &compiled.dataset.clusters {
            for row in &cluster.rows {
                let fields = std::iter::once(row.source.to_string())
                    .chain(row.cells.iter().map(|c| c.observed.clone()));
                csv.write_record(fields).unwrap();
            }
        }
        csv.flush().unwrap();
        drop(csv);
        flat
    }

    #[test]
    fn preloaded_artifact_replays_pipeline_and_apply_byte_identically() {
        let body = "source,Name\n\
                    0,\"Lee, Mary\"\n1,Mary Lee\n2,\"Lee, Mary\"\n\
                    0,\"Smith, James\"\n1,James Smith\n2,\"Smith, James\"\n";
        let compiled = Arc::new(compile_flat(body, 0.5));
        let (fresh, fresh_join) = start_server(ephemeral_config());
        let (loaded, loaded_join) = start_server(ServeConfig {
            preloaded: Some(Arc::clone(&compiled)),
            ..ephemeral_config()
        });

        // Every output flavour: the fresh server parses and consolidates the
        // posted CSV; the preloaded one replays the compiled state off an
        // empty body. Responses must match byte for byte, headers included.
        for query in [
            "/pipeline?threshold=0.5&budget=100",
            "/pipeline?threshold=0.5&budget=100&output=golden",
            "/pipeline?threshold=0.5&budget=100&output=summary",
            "/pipeline?threshold=0.5&column=Name",
        ] {
            let a = http::request(fresh.addr(), "POST", query, body.as_bytes()).unwrap();
            let b = http::request(loaded.addr(), "POST", query, b"").unwrap();
            assert_eq!(
                a.status,
                200,
                "{query}: {:?}",
                String::from_utf8_lossy(&a.body)
            );
            assert_eq!(
                b.status,
                200,
                "{query}: {:?}",
                String::from_utf8_lossy(&b.body)
            );
            assert_eq!(a.body, b.body, "{query}");
            for header in ["x-ec-clusters", "x-ec-records", "x-ec-groups-approved"] {
                assert_eq!(a.header(header), b.header(header), "{query}: {header}");
            }
        }

        // Both servers learned identical programs, so /apply agrees too:
        // posting the flattened records to the fresh server matches the
        // preloaded server standardizing its own compiled records.
        assert_eq!(fresh.library_snapshot(), loaded.library_snapshot());
        let flat = flatten_compiled(&compiled);
        let a = http::request(fresh.addr(), "POST", "/apply", &flat).unwrap();
        let b = http::request(loaded.addr(), "POST", "/apply", b"").unwrap();
        assert_eq!(a.status, 200);
        assert_eq!(b.status, 200);
        assert_eq!(a.body, b.body);
        for trailer in [
            "x-ec-records",
            "x-ec-cells-rewritten",
            "x-ec-cells-unmatched",
        ] {
            assert_eq!(a.trailer(trailer), b.trailer(trailer), "{trailer}");
        }

        fresh.stop();
        loaded.stop();
        fresh_join.join().unwrap();
        loaded_join.join().unwrap();
    }

    #[test]
    fn preloaded_pipeline_rejects_a_conflicting_threshold() {
        let body = "source,Name\n0,\"Lee, Mary\"\n1,Mary Lee\n";
        let (handle, join) = start_server(ServeConfig {
            preloaded: Some(Arc::new(compile_flat(body, 0.5))),
            ..ephemeral_config()
        });
        // The clusters were formed at compile time; a different threshold
        // cannot be honoured and must not be silently ignored.
        let mismatch =
            http::request(handle.addr(), "POST", "/pipeline?threshold=0.9", b"").unwrap();
        assert_eq!(mismatch.status, 400);
        assert!(String::from_utf8(mismatch.body)
            .unwrap()
            .contains("compiled at threshold 0.5"));
        // The artifact's own threshold — spelled out or defaulted — works.
        let spelled = http::request(handle.addr(), "POST", "/pipeline?threshold=0.5", b"").unwrap();
        assert_eq!(spelled.status, 200);
        let defaulted = http::request(handle.addr(), "POST", "/pipeline", b"").unwrap();
        assert_eq!(defaulted.status, 200);
        assert_eq!(spelled.body, defaulted.body);
        // A posted body still takes the fresh path, artifact or not.
        let fresh = http::request(handle.addr(), "POST", "/pipeline", body.as_bytes()).unwrap();
        assert_eq!(fresh.status, 200);
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn ingest_batches_replay_the_one_shot_pipeline_byte_for_byte() {
        let batch1 = "source,Name\n0,\"Lee, Mary\"\n1,Mary Lee\n2,\"Lee, Mary\"\n";
        let batch2 = "source,Name\n0,\"Smith, James\"\n1,James Smith\n2,\"Smith, James\"\n";
        let batch3 = batch1; // Same values again: pure fast-path traffic.
        let rows = |batch: &str| batch["source,Name\n".len()..].to_string();
        let union = format!(
            "source,Name\n{}{}{}",
            rows(batch1),
            rows(batch2),
            rows(batch3)
        );

        let (ingesting, ingest_join) = start_server(ephemeral_config());
        let (one_shot, one_shot_join) = start_server(ephemeral_config());

        let query = "/ingest?threshold=0.5&budget=10&mode=approve-all";
        let first = http::request(ingesting.addr(), "POST", query, batch1.as_bytes()).unwrap();
        assert_eq!(
            first.status,
            200,
            "{}",
            String::from_utf8_lossy(&first.body)
        );
        // A fresh session has seen nothing: every record is residue.
        assert_eq!(first.header("x-ec-library-hits"), Some("0"));
        assert_eq!(first.header("x-ec-library-misses"), Some("3"));
        let second = http::request(ingesting.addr(), "POST", query, batch2.as_bytes()).unwrap();
        assert_eq!(second.status, 200);
        let third = http::request(ingesting.addr(), "POST", query, batch3.as_bytes()).unwrap();
        assert_eq!(third.status, 200);
        // Every batch-3 value was already seen (or library-canonical).
        assert_eq!(third.header("x-ec-library-hits"), Some("3"));
        assert_eq!(third.header("x-ec-library-misses"), Some("0"));
        assert_eq!(third.header("x-ec-records"), Some("9"));
        assert_eq!(third.header("x-ec-batches"), Some("3"));

        // The delta session's answer is byte-identical to one `/pipeline`
        // run over the union of every batch.
        let rebuilt = http::request(
            one_shot.addr(),
            "POST",
            "/pipeline?threshold=0.5&budget=10&mode=approve-all&output=golden",
            union.as_bytes(),
        )
        .unwrap();
        assert_eq!(rebuilt.status, 200);
        assert_eq!(
            String::from_utf8(third.body.clone()).unwrap(),
            String::from_utf8(rebuilt.body.clone()).unwrap()
        );

        // The session's learned programs reached the serving library, and
        // `GET /library` totals the fast-path accounting.
        let snapshot = http::request(ingesting.addr(), "GET", "/library", b"").unwrap();
        assert!(String::from_utf8(snapshot.body.clone())
            .unwrap()
            .contains("rewrite"));
        assert_eq!(snapshot.header("x-ec-library-hits"), Some("3"));
        assert_eq!(snapshot.header("x-ec-library-misses"), Some("6"));

        // A batch with different parameters (or columns) is refused: the
        // session is pinned to its first batch's configuration.
        let conflicting = http::request(
            ingesting.addr(),
            "POST",
            "/ingest?threshold=0.5&budget=99",
            batch1.as_bytes(),
        )
        .unwrap();
        assert_eq!(conflicting.status, 400);
        let wrong_columns =
            http::request(ingesting.addr(), "POST", query, b"source,Other\n0,x\n").unwrap();
        assert_eq!(wrong_columns.status, 400);

        ingesting.stop();
        one_shot.stop();
        ingest_join.join().unwrap();
        one_shot_join.join().unwrap();
    }

    #[test]
    fn apply_reports_fast_path_hits_and_misses_in_trailers() {
        let mut library = ProgramLibrary::new();
        library.record(
            "Name",
            &ApprovedGroup {
                group: Group::new(None, vec![Replacement::new("Lee, Mary", "Mary Lee")]),
                direction: Direction::Forward,
            },
        );
        let (handle, join) = start_server(ServeConfig {
            library,
            ..ephemeral_config()
        });
        // One rewritten + one already-canonical cell are hits; the unknown
        // value is a miss.
        let body = "source,Name\n0,\"Lee, Mary\"\n1,Mary Lee\n2,unknown\n";
        let response = http::request(handle.addr(), "POST", "/apply", body.as_bytes()).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.trailer("x-ec-library-hits"), Some("2"));
        assert_eq!(response.trailer("x-ec-library-misses"), Some("1"));
        let snapshot = http::request(handle.addr(), "GET", "/library", b"").unwrap();
        assert_eq!(snapshot.header("x-ec-library-hits"), Some("2"));
        assert_eq!(snapshot.header("x-ec-library-misses"), Some("1"));
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn auth_token_gates_every_mutating_endpoint() {
        let (handle, join) = start_server(ServeConfig {
            auth_token: Some("sekrit".to_string()),
            ..ephemeral_config()
        });
        // GETs stay open — health probes and snapshot reads need no token.
        let health = http::request(handle.addr(), "GET", "/healthz", b"").unwrap();
        assert_eq!(health.status, 200);
        // Every POST without (or with a wrong) token is refused.
        let body = b"source,Name\n0,x\n";
        for path in ["/apply", "/pipeline", "/ingest", "/library", "/shutdown"] {
            let denied = http::request(handle.addr(), "POST", path, body).unwrap();
            assert_eq!(denied.status, 401, "{path} must require the token");
        }
        let wrong = http::request_with_headers(
            handle.addr(),
            "POST",
            "/apply",
            body,
            &[("Authorization".to_string(), "Bearer nope".to_string())],
        )
        .unwrap();
        assert_eq!(wrong.status, 401);
        // The right token admits the request.
        let bearer = [("Authorization".to_string(), "Bearer sekrit".to_string())];
        let allowed =
            http::request_with_headers(handle.addr(), "POST", "/apply", body, &bearer).unwrap();
        assert_eq!(allowed.status, 200);
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn router_checks_and_forwards_the_bearer_token() {
        // Backend and router share one token; the client presents it once to
        // the router, which re-presents it on every backend request.
        let (backend, backend_join) = start_server(ServeConfig {
            auth_token: Some("sekrit".to_string()),
            ..ephemeral_config()
        });
        let mut config = RouterConfig::new("127.0.0.1:0", vec![backend.addr().to_string()]);
        config.auth_token = Some("sekrit".to_string());
        let router = Router::bind(config).unwrap();
        let router_handle = router.handle();
        let router_join = std::thread::spawn(move || router.run().unwrap());

        let body = b"source,Name\n0,x\n";
        let denied = http::request(router_handle.addr(), "POST", "/apply", body).unwrap();
        assert_eq!(denied.status, 401);
        let bearer = [("Authorization".to_string(), "Bearer sekrit".to_string())];
        let allowed =
            http::request_with_headers(router_handle.addr(), "POST", "/apply", body, &bearer)
                .unwrap();
        assert_eq!(
            allowed.status,
            200,
            "{}",
            String::from_utf8_lossy(&allowed.body)
        );

        router_handle.stop();
        router_join.join().unwrap();
        backend.stop();
        backend_join.join().unwrap();
    }

    #[test]
    fn empty_body_without_an_artifact_is_still_a_bad_request() {
        let (handle, join) = start_server(ephemeral_config());
        let pipeline = http::request(handle.addr(), "POST", "/pipeline", b"").unwrap();
        assert_eq!(pipeline.status, 400, "no artifact: empty CSV is an error");
        handle.stop();
        join.join().unwrap();
    }

    /// Writes `raw` to a fresh socket and returns the status line — for
    /// malformed requests the test client cannot produce.
    fn raw_status_line(addr: SocketAddr, raw: &str) -> String {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Read::read_to_string(&mut stream, &mut response).unwrap();
        response.lines().next().unwrap_or_default().to_string()
    }

    #[test]
    fn duplicate_content_length_is_rejected_by_server_and_router() {
        let smuggle = "POST /apply HTTP/1.1\r\nHost: x\r\n\
                       Content-Length: 4\r\nContent-Length: 4\r\n\r\nabcd";
        let (handle, join) = start_server(ephemeral_config());
        assert!(
            raw_status_line(handle.addr(), smuggle).starts_with("HTTP/1.1 400"),
            "server must refuse duplicate framing headers"
        );

        let router = Router::bind(RouterConfig::new(
            "127.0.0.1:0",
            vec![handle.addr().to_string()],
        ))
        .unwrap();
        let router_handle = router.handle();
        let router_join = std::thread::spawn(move || router.run().unwrap());
        assert!(
            raw_status_line(router_handle.addr(), smuggle).starts_with("HTTP/1.1 400"),
            "the router shares the rejection, never relaying the request"
        );

        router_handle.stop();
        router_join.join().unwrap();
        handle.stop();
        join.join().unwrap();
    }
}
