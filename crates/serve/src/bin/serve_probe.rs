//! A tiny std-only HTTP client for driving a running `ec serve` instance —
//! the CI smoke job uses it to hit `/healthz` and `/pipeline`, `cmp` the
//! response against the CLI's file output, and shut the server down cleanly.
//!
//! ```text
//! serve_probe --addr 127.0.0.1:7171 --path /healthz
//! serve_probe --addr … --method POST --path "/pipeline?budget=15" \
//!     --body-file flat.csv --output served.csv
//! serve_probe --addr … --method POST --path /shutdown
//! ```
//!
//! Exits 0 on a 200 response (override with `--expect-status`), 1 otherwise;
//! the body goes to `--output` or stdout, trailers to stderr.

use std::io::Write;
use std::net::ToSocketAddrs;
use std::process::ExitCode;

struct Options {
    addr: String,
    method: String,
    path: String,
    body_file: Option<String>,
    output: Option<String>,
    expect_status: u16,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7171".to_string(),
        method: "GET".to_string(),
        path: "/healthz".to_string(),
        body_file: None,
        output: None,
        expect_status: 200,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("--{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => options.addr = value("addr")?,
            "--method" => options.method = value("method")?.to_ascii_uppercase(),
            "--path" => options.path = value("path")?,
            "--body-file" => options.body_file = Some(value("body-file")?),
            "--output" => options.output = Some(value("output")?),
            "--expect-status" => {
                options.expect_status = value("expect-status")?
                    .parse()
                    .map_err(|_| "--expect-status expects an integer".to_string())?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("serve_probe: {message}");
            return ExitCode::from(2);
        }
    };
    let body = match &options.body_file {
        None => Vec::new(),
        Some(path) => match std::fs::read(path) {
            Ok(body) => body,
            Err(e) => {
                eprintln!("serve_probe: cannot read {path}: {e}");
                return ExitCode::from(1);
            }
        },
    };
    let addr = match options
        .addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
    {
        Some(addr) => addr,
        None => {
            eprintln!("serve_probe: cannot resolve {}", options.addr);
            return ExitCode::from(1);
        }
    };
    let response = match ec_serve::http::request(addr, &options.method, &options.path, &body) {
        Ok(response) => response,
        Err(e) => {
            eprintln!("serve_probe: request failed: {e}");
            return ExitCode::from(1);
        }
    };
    for (name, value) in &response.trailers {
        eprintln!("trailer {name}: {value}");
    }
    let written = match &options.output {
        Some(path) => std::fs::write(path, &response.body).map_err(|e| format!("{path}: {e}")),
        None => std::io::stdout()
            .write_all(&response.body)
            .map_err(|e| e.to_string()),
    };
    if let Err(message) = written {
        eprintln!("serve_probe: cannot write body: {message}");
        return ExitCode::from(1);
    }
    if response.status != options.expect_status {
        eprintln!(
            "serve_probe: expected status {}, got {}",
            options.expect_status, response.status
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
