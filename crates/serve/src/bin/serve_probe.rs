//! A tiny std-only HTTP client for driving a running `ec serve` instance —
//! the CI smoke job uses it to hit `/healthz`, `/pipeline` and `/ingest`,
//! `cmp` the response against the CLI's file output, and shut the server
//! down cleanly.
//!
//! ```text
//! serve_probe --addr 127.0.0.1:7171 --path /healthz
//! serve_probe --addr … --method POST --path "/pipeline?budget=15" \
//!     --body-file flat.csv --output served.csv
//! serve_probe --addr … --path /healthz --repeat 2 --output probe.txt
//! serve_probe --addr … --method POST --path /ingest \
//!     --body-file batch1.csv --body-file batch2.csv --output golden.csv
//! serve_probe --addr … --method POST --path /shutdown \
//!     --header "Authorization: Bearer SECRET"
//! ```
//!
//! `--repeat N` performs the same request `N` times over **one** kept-alive
//! connection (failing if the server hangs up early) and writes the extra
//! bodies to `<output>.2`, `<output>.3`, … — the CI smoke job `cmp`s them to
//! prove keep-alive reuse returns identical answers.
//!
//! `--body-file` may repeat: each file becomes one request — same method,
//! path and headers — sent in order over **one** kept-alive connection,
//! which is how the CI smoke job streams delta batches through
//! `POST /ingest`. Response bodies land like `--repeat`'s (`out`, `out.2`,
//! …). `--header "Name: Value"` (repeatable) attaches extra request headers
//! such as a bearer token.
//!
//! Exits 0 when every response matches the expected status (default 200,
//! override with `--expect-status`), 1 otherwise; bodies go to `--output` or
//! stdout, trailers to stderr.
//!
//! `--metrics` switches to observability mode: scrape `GET /metrics`,
//! **validate** the Prometheus text exposition (malformed output exits 1 —
//! the CI smoke jobs use this as a format check) and pretty-print it with
//! client-side histogram quantiles. With `--interval SECS` a second scrape
//! follows and counter/histogram *deltas* over the window are printed — a
//! poor man's `rate()` for eyeballing a live server:
//!
//! ```text
//! serve_probe --addr 127.0.0.1:7171 --metrics
//! serve_probe --addr 127.0.0.1:7171 --metrics --interval 5
//! ```

use std::io::Write;
use std::net::ToSocketAddrs;
use std::process::ExitCode;

struct Options {
    addr: String,
    method: String,
    path: String,
    body_files: Vec<String>,
    headers: Vec<(String, String)>,
    output: Option<String>,
    expect_status: u16,
    repeat: usize,
    metrics: bool,
    interval: Option<f64>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7171".to_string(),
        method: "GET".to_string(),
        path: "/healthz".to_string(),
        body_files: Vec::new(),
        headers: Vec::new(),
        output: None,
        expect_status: 200,
        repeat: 1,
        metrics: false,
        interval: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("--{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => options.addr = value("addr")?,
            "--method" => options.method = value("method")?.to_ascii_uppercase(),
            "--path" => options.path = value("path")?,
            "--body-file" => options.body_files.push(value("body-file")?),
            "--header" => {
                let raw = value("header")?;
                let (name, header_value) = raw
                    .split_once(':')
                    .ok_or_else(|| format!("--header expects 'Name: Value', got '{raw}'"))?;
                options
                    .headers
                    .push((name.trim().to_string(), header_value.trim().to_string()));
            }
            "--output" => options.output = Some(value("output")?),
            "--expect-status" => {
                options.expect_status = value("expect-status")?
                    .parse()
                    .map_err(|_| "--expect-status expects an integer".to_string())?
            }
            "--repeat" => {
                options.repeat = value("repeat")?
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| "--repeat expects a positive integer".to_string())?
            }
            "--metrics" => options.metrics = true,
            "--interval" => {
                options.interval = Some(
                    value("interval")?
                        .parse::<f64>()
                        .ok()
                        .filter(|s| *s > 0.0)
                        .ok_or_else(|| "--interval expects positive seconds".to_string())?,
                )
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if options.body_files.len() > 1 && options.repeat > 1 {
        return Err("--repeat does not combine with multiple --body-file values".to_string());
    }
    if options.interval.is_some() && !options.metrics {
        return Err("--interval only applies with --metrics".to_string());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("serve_probe: {message}");
            return ExitCode::from(2);
        }
    };
    // One body per request: each `--body-file` in order, or the single
    // (possibly empty) body repeated `--repeat` times.
    let mut bodies = Vec::new();
    for path in &options.body_files {
        match std::fs::read(path) {
            Ok(body) => bodies.push(body),
            Err(e) => {
                eprintln!("serve_probe: cannot read {path}: {e}");
                return ExitCode::from(1);
            }
        }
    }
    if bodies.is_empty() {
        bodies.push(Vec::new());
    }
    if bodies.len() == 1 && options.repeat > 1 {
        let body = bodies[0].clone();
        bodies.resize(options.repeat, body);
    }
    let addr = match options
        .addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
    {
        Some(addr) => addr,
        None => {
            eprintln!("serve_probe: cannot resolve {}", options.addr);
            return ExitCode::from(1);
        }
    };
    if options.metrics {
        return match metrics::run(addr, options.interval) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("serve_probe: {message}");
                ExitCode::from(1)
            }
        };
    }
    // All requests ride one kept-alive connection; the server hanging up
    // early surfaces as a request error, exactly like `--repeat`.
    let mut conn = match ec_serve::http::ClientConn::connect(addr, None) {
        Ok(conn) => conn,
        Err(e) => {
            eprintln!("serve_probe: cannot connect to {addr}: {e}");
            return ExitCode::from(1);
        }
    };
    for (i, body) in bodies.iter().enumerate() {
        let keep_alive = i + 1 < bodies.len();
        let response = match conn.request_with_headers(
            &options.method,
            &options.path,
            body,
            keep_alive,
            &options.headers,
        ) {
            Ok(response) => response,
            Err(e) => {
                eprintln!("serve_probe: request failed: {e}");
                return ExitCode::from(1);
            }
        };
        for (name, value) in &response.trailers {
            eprintln!("trailer {name}: {value}");
        }
        let written = match &options.output {
            Some(path) => {
                // Later bodies land next to the first (`out`, `out.2`, …).
                let path = if i == 0 {
                    path.clone()
                } else {
                    format!("{path}.{}", i + 1)
                };
                std::fs::write(&path, &response.body).map_err(|e| format!("{path}: {e}"))
            }
            None => std::io::stdout()
                .write_all(&response.body)
                .map_err(|e| e.to_string()),
        };
        if let Err(message) = written {
            eprintln!("serve_probe: cannot write body: {message}");
            return ExitCode::from(1);
        }
        if response.status != options.expect_status {
            eprintln!(
                "serve_probe: expected status {}, got {}",
                options.expect_status, response.status
            );
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

/// The `--metrics` mode: scrape, validate, pretty-print, and (with
/// `--interval`) diff two scrapes.
mod metrics {
    use std::collections::BTreeMap;
    use std::net::SocketAddr;
    use std::time::Duration;

    /// One parsed sample: full series key (`name{labels}`) to value.
    type Samples = BTreeMap<String, f64>;

    /// A scrape parsed into families and samples.
    pub struct Scrape {
        /// Family name -> declared type (`counter` / `gauge` / `histogram`).
        pub families: BTreeMap<String, String>,
        pub samples: Samples,
    }

    pub fn run(addr: SocketAddr, interval: Option<f64>) -> Result<(), String> {
        let first = scrape(addr)?;
        print!("{}", render(&first));
        let Some(seconds) = interval else {
            return Ok(());
        };
        std::thread::sleep(Duration::from_secs_f64(seconds));
        let second = scrape(addr)?;
        print!("{}", render_delta(&first, &second, seconds));
        Ok(())
    }

    fn scrape(addr: SocketAddr) -> Result<Scrape, String> {
        let mut conn = ec_serve::http::ClientConn::connect(addr, Some(Duration::from_secs(5)))
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let response = conn
            .request("GET", "/metrics", b"", false)
            .map_err(|e| format!("scrape failed: {e}"))?;
        if response.status != 200 {
            return Err(format!("/metrics answered {}", response.status));
        }
        let text = String::from_utf8(response.body)
            .map_err(|_| "metrics exposition is not UTF-8".to_string())?;
        parse(&text)
    }

    /// Parses (and thereby validates) one Prometheus text exposition. Any
    /// violation — unknown sample family, bad name, unparsable value,
    /// unbalanced labels — is an error, which is what makes this mode a
    /// usable CI format check.
    pub fn parse(text: &str) -> Result<Scrape, String> {
        let mut families = BTreeMap::new();
        let mut samples = Samples::new();
        for (number, line) in text.lines().enumerate() {
            let bad = |what: &str| format!("line {}: {what}: {line}", number + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                    return Err(bad("malformed TYPE comment"));
                };
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(bad("unknown metric type"));
                }
                families.insert(name.to_string(), kind.to_string());
                continue;
            }
            if line.starts_with('#') {
                // HELP and free comments carry no structure to check.
                continue;
            }
            let (series, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| bad("sample line without a value"))?;
            if value.parse::<f64>().is_err() && value != "+Inf" && value != "-Inf" {
                return Err(bad("unparsable sample value"));
            }
            let name = match series.split_once('{') {
                Some((name, labels)) => {
                    if !labels.ends_with('}') {
                        return Err(bad("unterminated label set"));
                    }
                    name
                }
                None => series,
            };
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
                || name.starts_with(|c: char| c.is_ascii_digit())
            {
                return Err(bad("invalid metric name"));
            }
            // Every sample must belong to a declared family: the name
            // itself, or a histogram's _bucket/_sum/_count expansion.
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| {
                    name.strip_suffix(suffix)
                        .filter(|base| families.get(*base).map(String::as_str) == Some("histogram"))
                })
                .unwrap_or(name);
            if !families.contains_key(family) {
                return Err(bad("sample without a preceding TYPE"));
            }
            let value = value.parse::<f64>().unwrap_or(f64::INFINITY);
            samples.insert(series.to_string(), value);
        }
        Ok(Scrape { families, samples })
    }

    /// Pretty-prints one scrape: counters and gauges one line per series,
    /// histograms folded to count/sum plus client-side quantiles.
    fn render(scrape: &Scrape) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# {} families, {} series\n",
            scrape.families.len(),
            scrape.samples.len()
        ));
        for (family, kind) in &scrape.families {
            if kind == "histogram" {
                for (series, quantiles) in histogram_summaries(scrape, family) {
                    out.push_str(&format!("histogram {series} {quantiles}\n"));
                }
                continue;
            }
            for (series, value) in series_of(&scrape.samples, family) {
                out.push_str(&format!("{kind} {series} {}\n", trim_float(value)));
            }
        }
        out
    }

    /// Prints what moved between two scrapes: counter and histogram deltas
    /// (suffixed `+N`), gauges at their current value. Series quiet over the
    /// window are omitted.
    fn render_delta(first: &Scrape, second: &Scrape, seconds: f64) -> String {
        let mut out = String::new();
        out.push_str(&format!("# delta over {seconds}s\n"));
        for (series, value) in &second.samples {
            let family = base_family(second, series);
            let kind = family
                .and_then(|f| second.families.get(f))
                .map(String::as_str)
                .unwrap_or("untyped");
            match kind {
                "gauge" => {
                    let previous = first.samples.get(series).copied().unwrap_or(0.0);
                    if (value - previous).abs() > f64::EPSILON {
                        out.push_str(&format!("gauge {series} {}\n", trim_float(*value)));
                    }
                }
                _ => {
                    // Histogram movement reads fine off _count/_sum; the
                    // per-bucket deltas would drown the report.
                    let name = series.split('{').next().unwrap_or(series);
                    if name.ends_with("_bucket") {
                        continue;
                    }
                    let previous = first.samples.get(series).copied().unwrap_or(0.0);
                    let delta = value - previous;
                    if delta.abs() > f64::EPSILON && value.is_finite() {
                        out.push_str(&format!("{kind} {series} +{}\n", trim_float(delta)));
                    }
                }
            }
        }
        out
    }

    /// The declared family a series belongs to (resolving histogram
    /// expansions), if any.
    fn base_family<'a>(scrape: &'a Scrape, series: &'a str) -> Option<&'a str> {
        let name = series.split('{').next().unwrap_or(series);
        if scrape.families.contains_key(name) {
            return Some(name);
        }
        ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
            name.strip_suffix(suffix)
                .filter(|base| scrape.families.contains_key(*base))
        })
    }

    /// All samples of one family (exact name match before any `{`).
    fn series_of<'a>(samples: &'a Samples, family: &str) -> Vec<(&'a str, f64)> {
        samples
            .iter()
            .filter(|(series, _)| {
                let name = series.split('{').next().unwrap_or(series);
                name == family
            })
            .map(|(series, value)| (series.as_str(), *value))
            .collect()
    }

    /// Folds a histogram family's `_bucket` samples into per-labelset
    /// count/sum/p50/p90/p99 summaries (quantiles read off the cumulative
    /// bucket upper bounds, like the server does at scrape time).
    fn histogram_summaries(scrape: &Scrape, family: &str) -> Vec<(String, String)> {
        // Group buckets by the label set minus `le`.
        let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        let prefix = format!("{family}_bucket{{");
        for (series, value) in &scrape.samples {
            let Some(labels) = series.strip_prefix(&prefix) else {
                continue;
            };
            let labels = labels.trim_end_matches('}');
            // Tokenize `k="v",k="v"` at the quote-comma boundary, restoring
            // the closing quote the split consumed, and drop the `le` label
            // — what remains keys the group.
            let mut le = f64::INFINITY;
            let mut rest: Vec<String> = Vec::new();
            for token in labels.split("\",") {
                if token.is_empty() {
                    continue;
                }
                let token = if token.ends_with('"') {
                    token.to_string()
                } else {
                    format!("{token}\"")
                };
                if let Some(raw) = token.strip_prefix("le=\"") {
                    le = raw.trim_end_matches('"').parse().unwrap_or(f64::INFINITY);
                } else {
                    rest.push(token);
                }
            }
            groups.entry(rest.join(",")).or_default().push((le, *value));
        }
        groups
            .into_iter()
            .map(|(labels, mut buckets)| {
                buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
                let total = buckets.last().map(|(_, c)| *c).unwrap_or(0.0);
                let sum_key = if labels.is_empty() {
                    format!("{family}_sum")
                } else {
                    format!("{family}_sum{{{labels}}}")
                };
                let sum = scrape.samples.get(&sum_key).copied().unwrap_or(0.0);
                let quantile = |q: f64| -> String {
                    let target = q * total;
                    for (le, cumulative) in &buckets {
                        if *cumulative >= target {
                            return trim_float(*le);
                        }
                    }
                    "+Inf".to_string()
                };
                let series = if labels.is_empty() {
                    family.to_string()
                } else {
                    format!("{family}{{{labels}}}")
                };
                let summary = if total == 0.0 {
                    "count=0".to_string()
                } else {
                    format!(
                        "count={} sum={} p50<={} p90<={} p99<={}",
                        trim_float(total),
                        trim_float(sum),
                        quantile(0.50),
                        quantile(0.90),
                        quantile(0.99)
                    )
                };
                (series, summary)
            })
            .collect()
    }

    /// Renders a float without trailing noise (counters print as integers).
    fn trim_float(value: f64) -> String {
        if value.is_infinite() {
            return if value > 0.0 { "+Inf" } else { "-Inf" }.to_string();
        }
        if value.fract() == 0.0 && value.abs() < 1e15 {
            format!("{}", value as i64)
        } else {
            format!("{value:.6}")
        }
    }
}
