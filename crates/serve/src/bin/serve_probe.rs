//! A tiny std-only HTTP client for driving a running `ec serve` instance —
//! the CI smoke job uses it to hit `/healthz` and `/pipeline`, `cmp` the
//! response against the CLI's file output, and shut the server down cleanly.
//!
//! ```text
//! serve_probe --addr 127.0.0.1:7171 --path /healthz
//! serve_probe --addr … --method POST --path "/pipeline?budget=15" \
//!     --body-file flat.csv --output served.csv
//! serve_probe --addr … --path /healthz --repeat 2 --output probe.txt
//! serve_probe --addr … --method POST --path /shutdown
//! ```
//!
//! `--repeat N` performs the same request `N` times over **one** kept-alive
//! connection (failing if the server hangs up early) and writes the extra
//! bodies to `<output>.2`, `<output>.3`, … — the CI smoke job `cmp`s them to
//! prove keep-alive reuse returns identical answers.
//!
//! Exits 0 when every response matches the expected status (default 200,
//! override with `--expect-status`), 1 otherwise; bodies go to `--output` or
//! stdout, trailers to stderr.

use std::io::Write;
use std::net::ToSocketAddrs;
use std::process::ExitCode;

struct Options {
    addr: String,
    method: String,
    path: String,
    body_file: Option<String>,
    output: Option<String>,
    expect_status: u16,
    repeat: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7171".to_string(),
        method: "GET".to_string(),
        path: "/healthz".to_string(),
        body_file: None,
        output: None,
        expect_status: 200,
        repeat: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("--{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => options.addr = value("addr")?,
            "--method" => options.method = value("method")?.to_ascii_uppercase(),
            "--path" => options.path = value("path")?,
            "--body-file" => options.body_file = Some(value("body-file")?),
            "--output" => options.output = Some(value("output")?),
            "--expect-status" => {
                options.expect_status = value("expect-status")?
                    .parse()
                    .map_err(|_| "--expect-status expects an integer".to_string())?
            }
            "--repeat" => {
                options.repeat = value("repeat")?
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| "--repeat expects a positive integer".to_string())?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("serve_probe: {message}");
            return ExitCode::from(2);
        }
    };
    let body = match &options.body_file {
        None => Vec::new(),
        Some(path) => match std::fs::read(path) {
            Ok(body) => body,
            Err(e) => {
                eprintln!("serve_probe: cannot read {path}: {e}");
                return ExitCode::from(1);
            }
        },
    };
    let addr = match options
        .addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
    {
        Some(addr) => addr,
        None => {
            eprintln!("serve_probe: cannot resolve {}", options.addr);
            return ExitCode::from(1);
        }
    };
    let responses = match ec_serve::http::request_many(
        addr,
        &options.method,
        &options.path,
        &body,
        options.repeat,
    ) {
        Ok(responses) => responses,
        Err(e) => {
            eprintln!("serve_probe: request failed: {e}");
            return ExitCode::from(1);
        }
    };
    for (i, response) in responses.iter().enumerate() {
        for (name, value) in &response.trailers {
            eprintln!("trailer {name}: {value}");
        }
        let written = match &options.output {
            Some(path) => {
                // Repeat bodies land next to the first (`out`, `out.2`, …).
                let path = if i == 0 {
                    path.clone()
                } else {
                    format!("{path}.{}", i + 1)
                };
                std::fs::write(&path, &response.body).map_err(|e| format!("{path}: {e}"))
            }
            None => std::io::stdout()
                .write_all(&response.body)
                .map_err(|e| e.to_string()),
        };
        if let Err(message) = written {
            eprintln!("serve_probe: cannot write body: {message}");
            return ExitCode::from(1);
        }
        if response.status != options.expect_status {
            eprintln!(
                "serve_probe: expected status {}, got {}",
                options.expect_status, response.status
            );
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
