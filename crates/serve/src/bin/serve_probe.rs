//! A tiny std-only HTTP client for driving a running `ec serve` instance —
//! the CI smoke job uses it to hit `/healthz`, `/pipeline` and `/ingest`,
//! `cmp` the response against the CLI's file output, and shut the server
//! down cleanly.
//!
//! ```text
//! serve_probe --addr 127.0.0.1:7171 --path /healthz
//! serve_probe --addr … --method POST --path "/pipeline?budget=15" \
//!     --body-file flat.csv --output served.csv
//! serve_probe --addr … --path /healthz --repeat 2 --output probe.txt
//! serve_probe --addr … --method POST --path /ingest \
//!     --body-file batch1.csv --body-file batch2.csv --output golden.csv
//! serve_probe --addr … --method POST --path /shutdown \
//!     --header "Authorization: Bearer SECRET"
//! ```
//!
//! `--repeat N` performs the same request `N` times over **one** kept-alive
//! connection (failing if the server hangs up early) and writes the extra
//! bodies to `<output>.2`, `<output>.3`, … — the CI smoke job `cmp`s them to
//! prove keep-alive reuse returns identical answers.
//!
//! `--body-file` may repeat: each file becomes one request — same method,
//! path and headers — sent in order over **one** kept-alive connection,
//! which is how the CI smoke job streams delta batches through
//! `POST /ingest`. Response bodies land like `--repeat`'s (`out`, `out.2`,
//! …). `--header "Name: Value"` (repeatable) attaches extra request headers
//! such as a bearer token.
//!
//! Exits 0 when every response matches the expected status (default 200,
//! override with `--expect-status`), 1 otherwise; bodies go to `--output` or
//! stdout, trailers to stderr.

use std::io::Write;
use std::net::ToSocketAddrs;
use std::process::ExitCode;

struct Options {
    addr: String,
    method: String,
    path: String,
    body_files: Vec<String>,
    headers: Vec<(String, String)>,
    output: Option<String>,
    expect_status: u16,
    repeat: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7171".to_string(),
        method: "GET".to_string(),
        path: "/healthz".to_string(),
        body_files: Vec::new(),
        headers: Vec::new(),
        output: None,
        expect_status: 200,
        repeat: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("--{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => options.addr = value("addr")?,
            "--method" => options.method = value("method")?.to_ascii_uppercase(),
            "--path" => options.path = value("path")?,
            "--body-file" => options.body_files.push(value("body-file")?),
            "--header" => {
                let raw = value("header")?;
                let (name, header_value) = raw
                    .split_once(':')
                    .ok_or_else(|| format!("--header expects 'Name: Value', got '{raw}'"))?;
                options
                    .headers
                    .push((name.trim().to_string(), header_value.trim().to_string()));
            }
            "--output" => options.output = Some(value("output")?),
            "--expect-status" => {
                options.expect_status = value("expect-status")?
                    .parse()
                    .map_err(|_| "--expect-status expects an integer".to_string())?
            }
            "--repeat" => {
                options.repeat = value("repeat")?
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| "--repeat expects a positive integer".to_string())?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if options.body_files.len() > 1 && options.repeat > 1 {
        return Err("--repeat does not combine with multiple --body-file values".to_string());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("serve_probe: {message}");
            return ExitCode::from(2);
        }
    };
    // One body per request: each `--body-file` in order, or the single
    // (possibly empty) body repeated `--repeat` times.
    let mut bodies = Vec::new();
    for path in &options.body_files {
        match std::fs::read(path) {
            Ok(body) => bodies.push(body),
            Err(e) => {
                eprintln!("serve_probe: cannot read {path}: {e}");
                return ExitCode::from(1);
            }
        }
    }
    if bodies.is_empty() {
        bodies.push(Vec::new());
    }
    if bodies.len() == 1 && options.repeat > 1 {
        let body = bodies[0].clone();
        bodies.resize(options.repeat, body);
    }
    let addr = match options
        .addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
    {
        Some(addr) => addr,
        None => {
            eprintln!("serve_probe: cannot resolve {}", options.addr);
            return ExitCode::from(1);
        }
    };
    // All requests ride one kept-alive connection; the server hanging up
    // early surfaces as a request error, exactly like `--repeat`.
    let mut conn = match ec_serve::http::ClientConn::connect(addr, None) {
        Ok(conn) => conn,
        Err(e) => {
            eprintln!("serve_probe: cannot connect to {addr}: {e}");
            return ExitCode::from(1);
        }
    };
    for (i, body) in bodies.iter().enumerate() {
        let keep_alive = i + 1 < bodies.len();
        let response = match conn.request_with_headers(
            &options.method,
            &options.path,
            body,
            keep_alive,
            &options.headers,
        ) {
            Ok(response) => response,
            Err(e) => {
                eprintln!("serve_probe: request failed: {e}");
                return ExitCode::from(1);
            }
        };
        for (name, value) in &response.trailers {
            eprintln!("trailer {name}: {value}");
        }
        let written = match &options.output {
            Some(path) => {
                // Later bodies land next to the first (`out`, `out.2`, …).
                let path = if i == 0 {
                    path.clone()
                } else {
                    format!("{path}.{}", i + 1)
                };
                std::fs::write(&path, &response.body).map_err(|e| format!("{path}: {e}"))
            }
            None => std::io::stdout()
                .write_all(&response.body)
                .map_err(|e| e.to_string()),
        };
        if let Err(message) = written {
            eprintln!("serve_probe: cannot write body: {message}");
            return ExitCode::from(1);
        }
        if response.status != options.expect_status {
            eprintln!(
                "serve_probe: expected status {}, got {}",
                options.expect_status, response.status
            );
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
