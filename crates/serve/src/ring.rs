//! A consistent-hash ring over backend names.
//!
//! The router partitions work across backends by key (a column name for
//! `/apply`, a blocking key for `/pipeline`). Modular hashing
//! (`hash(key) % n`) would remap almost *every* key when a backend joins or
//! leaves; consistent hashing remaps only the keys the departed backend
//! owned. Each backend is hashed onto the ring at [`Ring::replicas`]
//! pseudo-random **virtual nodes** (so arc lengths — and therefore key
//! shares — even out), and a key belongs to the first virtual node at or
//! clockwise after its own hash point.
//!
//! Minimal remap falls out of the construction: removing a backend deletes
//! only its virtual nodes, so a key's owner changes only if its successor
//! point was one of them. [`Ring::route_where`] walks further clockwise past
//! backends a predicate rejects — how the router fails open past unhealthy
//! backends while leaving every healthy key assignment untouched.
//!
//! Hashing is FNV-1a (64-bit): deterministic across processes and platforms
//! (the std hasher is neither), no dependency, and fast for the short keys
//! routed here — finished with a SplitMix64 mixing step, because raw FNV's
//! weak high-bit avalanche visibly clusters the virtual nodes of
//! similarly-named backends.

/// Default virtual nodes per backend. 128 keeps the worst backend's key
/// share within roughly ±30% of fair for small clusters, at a memory cost of
/// one `(u64, u32)` point per virtual node.
pub const DEFAULT_REPLICAS: usize = 128;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` — the ring's (stable, cross-process) hash function.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The SplitMix64 finalizer over an FNV-1a hash. Ring placement sorts points
/// by the *full* 64-bit value, so the high bits decide where an arc lands —
/// exactly where FNV-1a's avalanche is weakest (a trailing-byte change barely
/// reaches them, clustering the virtual nodes of similarly-named backends).
/// The finalizer spreads every input bit across the whole word; it is as
/// deterministic and dependency-free as FNV itself.
fn point_hash(bytes: &[u8]) -> u64 {
    let mut z = fnv1a(bytes);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A consistent-hash ring: backend names plus their sorted virtual-node
/// points. See the module docs for the routing model.
#[derive(Debug, Clone)]
pub struct Ring {
    backends: Vec<String>,
    replicas: usize,
    /// `(point, backend index)`, sorted by point. Ties (vanishingly rare
    /// with 64-bit points) resolve to the lower backend index, so iteration
    /// order never depends on insertion order.
    points: Vec<(u64, u32)>,
}

impl Ring {
    /// Builds a ring over `backends` with `replicas` virtual nodes each
    /// (0 is clamped to 1; [`DEFAULT_REPLICAS`] is the sensible choice).
    /// Duplicate backend names are ignored after their first occurrence.
    pub fn new<S: AsRef<str>>(backends: &[S], replicas: usize) -> Self {
        let mut ring = Ring {
            backends: Vec::new(),
            replicas: replicas.max(1),
            points: Vec::new(),
        };
        for backend in backends {
            ring.add(backend.as_ref());
        }
        ring
    }

    /// The backend names on the ring, in insertion order.
    pub fn backends(&self) -> &[String] {
        &self.backends
    }

    /// Virtual nodes per backend.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Total virtual nodes (`backends × replicas`).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no backend is on the ring.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Adds a backend (a no-op if the name is already present), hashing in
    /// its virtual nodes. Existing keys move only onto the new backend,
    /// never between old ones.
    pub fn add(&mut self, backend: &str) {
        if self.backends.iter().any(|b| b == backend) {
            return;
        }
        let index = self.backends.len() as u32;
        self.backends.push(backend.to_string());
        for replica in 0..self.replicas {
            let point = point_hash(format!("{backend}\u{0}{replica}").as_bytes());
            self.points.push((point, index));
        }
        self.points.sort_unstable();
    }

    /// Removes a backend by name, returning whether it was present. Only the
    /// removed backend's keys remap (to their next clockwise owner).
    pub fn remove(&mut self, backend: &str) -> bool {
        let Some(index) = self.backends.iter().position(|b| b == backend) else {
            return false;
        };
        self.backends.remove(index);
        let index = index as u32;
        self.points.retain(|&(_, b)| b != index);
        // Indices above the removed backend shift down by one.
        for (_, b) in &mut self.points {
            if *b > index {
                *b -= 1;
            }
        }
        true
    }

    /// The backend index owning `key`: the first virtual node at or
    /// clockwise after the key's hash point. `None` on an empty ring.
    pub fn route(&self, key: &str) -> Option<usize> {
        self.route_where(key, |_| true)
    }

    /// Like [`Ring::route`], but walks clockwise past backends `alive`
    /// rejects — the fail-open path. Distinct backends are probed in ring
    /// order (each at most once); `None` when `alive` rejects all of them.
    pub fn route_where(&self, key: &str, alive: impl Fn(usize) -> bool) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hash = point_hash(key.as_bytes());
        let start = self
            .points
            .partition_point(|&(point, _)| point < hash)
            // partition_point == len means the key hashes past the last
            // point, so it wraps to the first — the "ring" part.
            % self.points.len();
        let mut seen = vec![false; self.backends.len()];
        for i in 0..self.points.len() {
            let (_, backend) = self.points[(start + i) % self.points.len()];
            let backend = backend as usize;
            if std::mem::replace(&mut seen[backend], true) {
                continue;
            }
            if alive(backend) {
                return Some(backend);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = Ring::new(&["a:1", "b:2", "c:3"], DEFAULT_REPLICAS);
        assert_eq!(ring.len(), 3 * DEFAULT_REPLICAS);
        for key in ["Name", "Address", "Phone", ""] {
            let owner = ring.route(key).unwrap();
            assert!(owner < 3);
            assert_eq!(ring.route(key), Some(owner), "routing is stable");
        }
        assert_eq!(Ring::new::<&str>(&[], 8).route("x"), None);
    }

    #[test]
    fn arc_shares_are_balanced_within_bounds() {
        // Deterministic balance check on the ring geometry itself: with 128
        // virtual nodes the share of hash space each backend owns stays
        // within a factor of two of fair.
        let backends = ["alpha:7001", "beta:7002", "gamma:7003", "delta:7004"];
        let ring = Ring::new(&backends, DEFAULT_REPLICAS);
        let mut shares = vec![0u128; backends.len()];
        let mut previous = 0u64;
        for &(point, backend) in &ring.points {
            shares[backend as usize] += u128::from(point - previous);
            previous = point;
        }
        // The wraparound arc belongs to the first point's owner.
        shares[ring.points[0].1 as usize] += u128::from(u64::MAX - previous) + 1;
        let fair = u128::from(u64::MAX) / backends.len() as u128;
        for (backend, share) in backends.iter().zip(&shares) {
            assert!(
                (fair / 2..=fair * 2).contains(share),
                "{backend} owns {share} of hash space (fair = {fair})"
            );
        }
    }

    #[test]
    fn removing_a_backend_keeps_other_keys_in_place() {
        let mut ring = Ring::new(&["a:1", "b:2", "c:3"], DEFAULT_REPLICAS);
        let keys: Vec<String> = (0..500).map(|i| format!("key-{i}")).collect();
        let before: Vec<usize> = keys.iter().map(|k| ring.route(k).unwrap()).collect();
        assert!(ring.remove("b:2"));
        assert!(!ring.remove("b:2"), "already gone");
        for (key, owner_before) in keys.iter().zip(before) {
            let owner_after = ring.route(key).unwrap();
            let name_after = &ring.backends()[owner_after];
            if owner_before != 1 {
                let name_before = ["a:1", "b:2", "c:3"][owner_before];
                assert_eq!(name_after, name_before, "{key} must not move");
            } else {
                assert_ne!(name_after, "b:2");
            }
        }
    }

    #[test]
    fn route_where_fails_open_in_ring_order_only_when_needed() {
        let ring = Ring::new(&["a:1", "b:2", "c:3"], DEFAULT_REPLICAS);
        let key = "some-column";
        let owner = ring.route(key).unwrap();
        // A predicate accepting the owner changes nothing.
        assert_eq!(ring.route_where(key, |b| b == owner), Some(owner));
        // Rejecting the owner re-routes to a different backend…
        let fallback = ring.route_where(key, |b| b != owner).unwrap();
        assert_ne!(fallback, owner);
        // …deterministically.
        assert_eq!(ring.route_where(key, |b| b != owner), Some(fallback));
        // Rejecting everything routes nowhere.
        assert_eq!(ring.route_where(key, |_| false), None);
    }

    #[test]
    fn duplicate_backends_collapse() {
        let ring = Ring::new(&["a:1", "a:1", "b:2"], 16);
        assert_eq!(ring.backends().len(), 2);
        assert_eq!(ring.len(), 32);
    }
}
