//! Property tests for the consistent-hash ring: the two guarantees routing
//! correctness rests on must hold for *arbitrary* cluster shapes, not just
//! the hand-picked cases in the unit tests.
//!
//! * **Balance** — with the default virtual-node count, no backend's share
//!   of a large key population strays outside generous bounds of fair. The
//!   bound is deliberately loose (hash balance is statistical, and small
//!   clusters wobble); the property exists to catch *structural* skew, e.g.
//!   a backend whose virtual nodes all collapse onto one arc.
//! * **Minimal remap** — removing one backend moves only the keys that
//!   backend owned; every other key keeps its owner. This is the whole
//!   point of consistent hashing over `hash % n`, so it is the invariant a
//!   refactor is most likely to silently break.

use ec_serve::ring::{Ring, DEFAULT_REPLICAS};
use proptest::prelude::*;

/// 2–6 distinct backend names of the `host:port` shape the CLI passes in.
fn arb_backends() -> impl Strategy<Value = Vec<String>> {
    (2usize..=6).prop_map(|n| {
        (0..n)
            .map(|i| format!("shard-{i}.internal:{}", 7000 + i))
            .collect()
    })
}

proptest! {
    /// Every backend owns between 5% and 75% of a large key population —
    /// generous bounds, but tight enough that structural skew (a backend
    /// effectively missing from the ring, or owning nearly everything)
    /// cannot pass.
    #[test]
    fn key_shares_stay_within_generous_bounds(
        backends in arb_backends(),
        salt in 0u32..1000,
    ) {
        let ring = Ring::new(&backends, DEFAULT_REPLICAS);
        let keys = 4000usize;
        let mut counts = vec![0usize; backends.len()];
        for i in 0..keys {
            let owner = ring.route(&format!("key-{salt}-{i}")).unwrap();
            counts[owner] += 1;
        }
        for (backend, &count) in backends.iter().zip(&counts) {
            let share = count as f64 / keys as f64;
            prop_assert!(
                (0.05..=0.75).contains(&share),
                "{backend} owns {share:.3} of {keys} keys in a {}-backend ring",
                backends.len()
            );
        }
    }

    /// Removing one backend remaps exactly that backend's keys: keys owned
    /// by other backends keep their owner (by name), and displaced keys land
    /// on some surviving backend.
    #[test]
    fn removing_a_backend_remaps_only_its_keys(
        backends in arb_backends(),
        removed_index in 0usize..6,
        salt in 0u32..1000,
    ) {
        let removed = backends[removed_index % backends.len()].clone();
        let mut ring = Ring::new(&backends, DEFAULT_REPLICAS);
        let keys: Vec<String> = (0..800).map(|i| format!("key-{salt}-{i}")).collect();
        let before: Vec<String> = keys
            .iter()
            .map(|k| ring.backends()[ring.route(k).unwrap()].clone())
            .collect();
        prop_assert!(ring.remove(&removed));
        for (key, owner_before) in keys.iter().zip(&before) {
            let owner_after = &ring.backends()[ring.route(key).unwrap()];
            if owner_before != &removed {
                // A key whose owner survived must not move.
                prop_assert_eq!(owner_after, owner_before);
            } else {
                prop_assert_ne!(owner_after, &removed);
            }
        }
    }

    /// `route_where` agrees with `route` whenever the owner is accepted, and
    /// fail-open re-routes land on an accepted backend without disturbing
    /// determinism.
    #[test]
    fn fail_open_routing_is_deterministic(
        backends in arb_backends(),
        down_index in 0usize..6,
        salt in 0u32..1000,
    ) {
        let ring = Ring::new(&backends, DEFAULT_REPLICAS);
        let down = down_index % backends.len();
        for i in 0..200 {
            let key = format!("key-{salt}-{i}");
            let owner = ring.route(&key).unwrap();
            let routed = ring.route_where(&key, |b| b != down).unwrap();
            prop_assert_ne!(routed, down);
            if owner != down {
                // Healthy keys must not move when another backend fails.
                prop_assert_eq!(routed, owner);
            }
            prop_assert_eq!(ring.route_where(&key, |b| b != down), Some(routed));
        }
    }
}
