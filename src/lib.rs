//! # entity-consolidation
//!
//! A from-scratch Rust reproduction of **"Unsupervised String Transformation
//! Learning for Entity Consolidation"** (Deng et al., ICDE 2019): golden-record
//! construction from clusters of duplicate records, driven by unsupervised
//! learning of string transformation programs that a human verifies in bulk.
//!
//! The workspace is organised as one crate per subsystem; this facade crate
//! re-exports the public API so that applications only need a single
//! dependency.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`dsl`] | `ec-dsl` | the FlashFill-style transformation DSL with affix extensions |
//! | [`graph`] | `ec-graph` | transformation graphs, label interning, structure signatures |
//! | [`index`] | `ec-index` | the edge-label inverted index |
//! | [`grouping`] | `ec-grouping` | pivot-path search, one-shot and incremental grouping |
//! | [`replace`] | `ec-replace` | candidate generation and replacement application |
//! | [`resolution`] | `ec-resolution` | entity resolution: similarity, blocking, clustering of raw records |
//! | [`truth`] | `ec-truth` | majority-consensus and source-reliability truth discovery |
//! | [`data`] | `ec-data` | the clustered-dataset model and the three synthetic datasets |
//! | [`baselines`] | `ec-baselines` | the `Single` and Trifacta-style wrangler baselines |
//! | [`metrics`] | `ec-metrics` | precision / recall / MCC / golden-record precision |
//! | [`profile`] | `ec-profile` | dataset/column profiling and standardization priorities |
//! | [`report`] | `ec-report` | data series, ASCII charts, text/Markdown tables, gnuplot/CSV export |
//! | [`core`] | `ec-core` | the end-to-end pipeline with human-in-the-loop oracles |
//!
//! The workspace additionally ships the `ec` command-line tool (`ec-cli`) for
//! file-based use: `cargo run -p ec-cli --bin ec -- help`.
//!
//! ## Quickstart
//!
//! ```
//! use entity_consolidation::prelude::*;
//!
//! // Generate a small Address-style dataset (clusters of duplicate records).
//! let mut dataset = PaperDataset::Address.generate(&GeneratorConfig {
//!     num_clusters: 15,
//!     seed: 42,
//!     num_sources: 4,
//! });
//!
//! // Standardize the address column with a simulated human reviewing groups,
//! // then build golden records with majority consensus.
//! let pipeline = Pipeline::new(ConsolidationConfig { budget: 25, ..Default::default() });
//! let mut oracle = SimulatedOracle::for_column(&dataset, 0, 7);
//! let report = pipeline.golden_records(&mut dataset, &mut oracle, TruthMethod::MajorityConsensus);
//! assert_eq!(report.golden_records.len(), dataset.clusters.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ec_baselines as baselines;
pub use ec_core as core;
pub use ec_data as data;
pub use ec_dsl as dsl;
pub use ec_graph as graph;
pub use ec_grouping as grouping;
pub use ec_index as index;
pub use ec_metrics as metrics;
pub use ec_obs as obs;
pub use ec_profile as profile;
pub use ec_replace as replace;
pub use ec_report as report;
pub use ec_resolution as resolution;
pub use ec_serve as serve;
pub use ec_truth as truth;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use ec_core::{
        standardize_columns, write_golden_records_csv, ApproveAllOracle, AutoMode, BatchReport,
        ColumnReport, ConsolidationConfig, DeltaPipeline, FusedPipeline, FusedRun,
        GoldenRecordReport, Oracle, Pipeline, ProgramLibrary, RejectAllOracle, ScriptedOracle,
        SimulatedOracle, TruthMethod, Verdict,
    };
    pub use ec_data::{
        Dataset, DatasetStats, FlatCsvReader, FlatRecord, GeneratorConfig, LabeledPair,
        PaperDataset, RecordStream, VecRecordStream,
    };
    pub use ec_dsl::{Dir, PositionFn, Program, StrCtx, StringFn, Term};
    pub use ec_graph::{GraphBuilder, GraphConfig, Replacement};
    pub use ec_grouping::{
        Group, GroupingConfig, IncrementalGrouper, OneShotGrouper, Parallelism, StructuredGrouper,
    };
    pub use ec_metrics::{evaluate_standardization, golden_record_precision, ConfusionCounts};
    pub use ec_replace::{generate_candidates, CandidateConfig, Direction, ReplacementEngine};
    pub use ec_resolution::{
        DeltaResolver, RawRecord, Resolver, ResolverConfig, SimilarityMeasure, StreamingResolver,
    };
    pub use ec_truth::{majority_consensus, reliability_truth_discovery};
}
