//! Offline shim for `serde_derive`: the derive macros are accepted (so
//! `#[derive(Serialize, Deserialize)]` attributes across the workspace keep
//! compiling) but expand to nothing. See `vendor/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
