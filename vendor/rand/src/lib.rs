//! Offline shim for `rand` 0.8: exactly the API subset this workspace uses.
//!
//! Provided: [`Rng`] (`gen_range` over integer/float ranges, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] (xoshiro256\*\* seeded via
//! SplitMix64), and [`seq::SliceRandom`] (`choose`, Fisher–Yates `shuffle`).
//! Integer range sampling uses modulo reduction — a tiny bias that is fine for
//! synthetic-data generation. See `vendor/README.md`.

/// A source of 64-bit random words. Everything else derives from this.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (which must lie in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a single uniform sample; the impls below cover
/// the `Range`/`RangeInclusive` instantiations the workspace uses.
pub trait SampleRange<T> {
    /// Draw one sample from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256\*\* (Blackman & Vigna),
    /// seeded from a `u64` through SplitMix64 like `rand_xoshiro` does.
    /// Statistically solid and tiny; **not** cryptographically secure
    /// (the real `StdRng` is ChaCha12 — nothing in-tree relies on that).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Random selection and shuffling on slices, mirroring
    /// `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.next_u64() as usize % self.len())
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.next_u64() as usize % (i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_and_choose_cover_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
