//! Offline shim for `serde`: provides the `Serialize` / `Deserialize` trait
//! names and (behind the `derive` feature) the no-op derive macros, so the
//! workspace's `use serde::{Deserialize, Serialize}` imports and
//! `#[derive(...)]` attributes compile without crates.io access.
//!
//! Nothing in the workspace performs serialization yet; when it does, restore
//! the real crate by editing the one `[workspace.dependencies]` entry in the
//! root manifest. See `vendor/README.md` for the full caveats.

/// Marker stand-in for `serde::Serialize`. The shim derives emit no impls.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`. The shim derives emit no impls.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
