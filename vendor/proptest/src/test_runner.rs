//! Test-runner configuration and the deterministic per-case seeding used by
//! the [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases to run per property, mirroring
/// `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per `#[test]` function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// FNV-1a over `bytes`; used to derive a stable per-test base seed from the
/// test function's name.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The generator for one test case. Seeded deterministically so any failure
/// message's `(seed ...)` can be replayed.
pub fn case_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
