//! Collection strategies, mirroring `proptest::collection`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length distribution for generated collections. Upper bounds follow
/// upstream semantics: `a..b` is exclusive, `a..=b` inclusive.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        let (min, max_inclusive) = r.into_inner();
        assert!(min <= max_inclusive, "empty collection size range");
        SizeRange { min, max_inclusive }
    }
}

/// A strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
