//! The [`Strategy`] trait and its combinators: how test-case values are
//! generated. Unlike upstream proptest there is no value tree and no
//! shrinking — a strategy is simply a recipe for drawing one random value.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// How many times `prop_filter` retries before giving up on a case.
const FILTER_RETRIES: usize = 1000;

/// A recipe for generating values of `Self::Value` from a seeded generator.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a second strategy from each generated value and draw from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values for which `f` returns `true`, retrying the draw.
    /// Panics (citing `whence`) if the predicate keeps rejecting.
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Rc::new(move |rng| self.new_value(rng)),
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let value = self.inner.new_value(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {FILTER_RETRIES} consecutive draws",
            self.whence
        );
    }
}

/// A type-erased strategy; cheap to clone.
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.generate)(rng)
    }
}

/// Uniform choice between type-erased strategies; built by `prop_oneof!`.
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`, each equally likely. Panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A string literal is a regex-subset strategy producing matching `String`s,
/// as in upstream proptest.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut StdRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e:?}"))
            .new_value(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}
