//! String strategies from regex-like patterns, mirroring
//! `proptest::string::string_regex` for the pattern subset the workspace's
//! tests use: sequences of literal characters and (optionally negated)
//! character classes, each with an optional `{m}`, `{m,n}`, `?`, `*` or `+`
//! quantifier. Unbounded quantifiers are capped at 8 repetitions.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::strategy::Strategy;

/// Cap for `*` / `+` so generated strings stay small.
const UNBOUNDED_CAP: usize = 8;

/// Printable ASCII, the alphabet negated classes draw from.
fn printable_ascii() -> impl Iterator<Item = char> {
    (0x20u8..=0x7e).map(char::from)
}

/// A parse failure; `string_regex` mirrors upstream by returning `Result`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

#[derive(Clone, Debug)]
struct Element {
    /// The characters this element may produce (already expanded/negated).
    alphabet: Vec<char>,
    min: usize,
    max: usize,
}

/// A strategy producing strings matching the given pattern subset.
#[derive(Clone, Debug)]
pub struct RegexGeneratorStrategy {
    elements: Vec<Element>,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn new_value(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for element in &self.elements {
            let reps = rng.gen_range(element.min..=element.max);
            for _ in 0..reps {
                out.push(*element.alphabet.choose(rng).expect("non-empty alphabet"));
            }
        }
        out
    }
}

/// Parse `pattern` into a generator strategy.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut elements = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1)?;
                i = next;
                set
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .ok_or_else(|| Error("dangling escape at end of pattern".into()))?;
                i += 2;
                vec![unescape(c)]
            }
            '.' => {
                i += 1;
                printable_ascii().collect()
            }
            c if "(){}*+?|^$".contains(c) => {
                return Err(Error(format!(
                    "unsupported regex syntax {c:?} in {pattern:?}"
                )));
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i)?;
        i = next;
        if alphabet.is_empty() {
            return Err(Error(format!("empty character class in {pattern:?}")));
        }
        elements.push(Element { alphabet, min, max });
    }
    Ok(RegexGeneratorStrategy { elements })
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        '0' => '\0',
        other => other,
    }
}

/// Parse a `[...]` class body starting just past the `[`. Returns the
/// (expanded, possibly negated) alphabet and the index just past the `]`.
fn parse_class(chars: &[char], mut i: usize) -> Result<(Vec<char>, usize), Error> {
    let negated = chars.get(i) == Some(&'^');
    if negated {
        i += 1;
    }
    let mut members: Vec<char> = Vec::new();
    let mut closed = false;
    while i < chars.len() {
        let c = chars[i];
        if c == ']' {
            i += 1;
            closed = true;
            break;
        }
        let (literal, escaped) = if c == '\\' {
            let e = *chars
                .get(i + 1)
                .ok_or_else(|| Error("dangling escape in character class".into()))?;
            i += 2;
            (unescape(e), true)
        } else {
            i += 1;
            (c, false)
        };
        // A bare `-` between two members is a range; escaped, first or last
        // it is literal.
        if !escaped
            && literal == '-'
            && !members.is_empty()
            && i < chars.len()
            && chars[i] != ']'
            && chars[i] != '\\'
        {
            let start = *members.last().expect("checked non-empty");
            let end = chars[i];
            i += 1;
            if start > end {
                return Err(Error(format!("invalid class range {start}-{end}")));
            }
            members.extend(((start as u32 + 1)..=(end as u32)).filter_map(char::from_u32));
        } else {
            members.push(literal);
        }
    }
    if !closed {
        return Err(Error("unterminated character class".into()));
    }
    if negated {
        let set: Vec<char> = printable_ascii().filter(|c| !members.contains(c)).collect();
        Ok((set, i))
    } else {
        Ok((members, i))
    }
}

/// Parse an optional quantifier at `i`; returns `(min, max, next_index)`.
fn parse_quantifier(chars: &[char], i: usize) -> Result<(usize, usize, usize), Error> {
    match chars.get(i) {
        Some('?') => Ok((0, 1, i + 1)),
        Some('*') => Ok((0, UNBOUNDED_CAP, i + 1)),
        Some('+') => Ok((1, UNBOUNDED_CAP, i + 1)),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or_else(|| Error("unterminated {..} quantifier".into()))?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let parse = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|e| Error(format!("{body:?}: {e}")))
            };
            let (min, max) = match body.split_once(',') {
                None => {
                    let n = parse(&body)?;
                    (n, n)
                }
                Some((lo, hi)) if hi.trim().is_empty() => {
                    (parse(lo)?, UNBOUNDED_CAP.max(parse(lo)?))
                }
                Some((lo, hi)) => (parse(lo)?, parse(hi)?),
            };
            if min > max {
                return Err(Error(format!("quantifier min {min} exceeds max {max}")));
            }
            Ok((min, max, close + 1))
        }
        _ => Ok((1, 1, i)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn draw(pattern: &str, seed: u64) -> String {
        string_regex(pattern)
            .unwrap()
            .new_value(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn class_with_quantifier_respects_bounds_and_alphabet() {
        for seed in 0..50 {
            let s = draw("[A-Za-z0-9 ,.\\-()]{0,24}", seed);
            assert!(s.chars().count() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " ,.-()".contains(c)));
        }
    }

    #[test]
    fn negated_class_excludes_members() {
        for seed in 0..50 {
            let s = draw("[^|\r\n]{0,12}", seed);
            assert!(!s.contains(['|', '\r', '\n']));
            assert!(s.chars().count() <= 12);
        }
    }

    #[test]
    fn literals_and_escapes_round_trip() {
        assert_eq!(draw("abc", 1), "abc");
        assert_eq!(draw("a\\.b", 2), "a.b");
        let s = draw("x[0-9]{2}y", 3);
        assert_eq!(s.len(), 4);
        assert!(s.starts_with('x') && s.ends_with('y'));
    }

    #[test]
    fn exact_and_open_quantifiers() {
        assert_eq!(draw("[ab]{3}", 4).len(), 3);
        for seed in 0..20 {
            let s = draw("[ab]+", seed);
            assert!(!s.is_empty() && s.len() <= UNBOUNDED_CAP);
        }
    }

    #[test]
    fn rejects_unsupported_syntax() {
        assert!(string_regex("(ab)+").is_err());
        assert!(string_regex("[ab").is_err());
        assert!(string_regex("a{2").is_err());
    }
}
