//! Offline shim for `proptest`: deterministic random-case generation with the
//! combinator surface this workspace's property tests use, but **no
//! shrinking** — a failing case panics with the case's seed so it can be
//! replayed, rather than being minimised. See `vendor/README.md`.
//!
//! Supported: the [`Strategy`] trait (`prop_map`, `prop_flat_map`,
//! `prop_filter`, `boxed`), [`strategy::Just`], integer/float ranges and
//! tuples as strategies, `&str` regex-literal strategies,
//! [`collection::vec`], [`string::string_regex`] (a pragmatic regex subset),
//! [`test_runner::ProptestConfig`], and the [`proptest!`], [`prop_assert!`],
//! [`prop_assert_eq!`] and [`prop_oneof!`] macros.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// Re-exports so `proptest::collection::vec(...)` and
// `proptest::string::string_regex(...)` resolve as they do upstream.
pub use strategy::Strategy;

/// Runs a strategy-driven test body over many generated cases.
///
/// Mirrors upstream `proptest!`: an optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header followed by
/// `#[test]` functions whose arguments are `pattern in strategy` bindings.
/// Cases are seeded deterministically from the test name and case index; a
/// failure reports the offending case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
     $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let base = $crate::test_runner::fnv1a(stringify!($name).as_bytes());
                for case in 0..config.cases {
                    let seed = base.wrapping_add(u64::from(case));
                    let mut rng = $crate::test_runner::case_rng(seed);
                    $(let $pat = $crate::Strategy::new_value(&($strat), &mut rng);)*
                    let run = || -> ::core::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    if let Err(message) = run() {
                        panic!(
                            "proptest case {case} (seed {seed:#x}) of {} failed: {message}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// `assert!` for property-test bodies: fails the current case (with the
/// case's seed in the panic message) instead of unwinding bare.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// `assert_eq!` for property-test bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// `assert_ne!` for property-test bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Picks one of several strategies (uniformly) per generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
