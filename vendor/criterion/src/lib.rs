//! Offline shim for `criterion`: the API subset the workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!`, `criterion_main!`),
//! implemented as a plain wall-clock harness. It honors `sample_size`,
//! `warm_up_time` and `measurement_time`, and prints mean/min/max per
//! benchmark. No statistics, plots, or baselines — see `vendor/README.md`.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            id,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }
}

/// A benchmark group with its own sampling settings, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set how long to warm up before timing.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set the timing budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(
            &id,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(
            &id,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Close the group (a no-op beyond matching the upstream API).
    pub fn finish(self) {}
}

/// A function-plus-parameter benchmark name, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name by the `bench_*` methods.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// The timing callback handed to benchmark closures, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, recording one sample per batch of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed / u32::try_from(self.iters_per_sample).unwrap_or(1));
        }
    }
}

fn run_benchmark<F>(
    id: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    f: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run the routine until the warm-up budget is spent, and use the
    // observed speed to pick an iteration count that fits the timing budget.
    let mut probe = Bencher {
        samples: Vec::new(),
        target_samples: 1,
        iters_per_sample: 1,
    };
    let warm_up_start = Instant::now();
    let mut warm_up_iters = 0u64;
    let mut one_iter = Duration::from_nanos(1);
    while warm_up_start.elapsed() < warm_up_time || warm_up_iters == 0 {
        probe.samples.clear();
        f(&mut probe);
        one_iter = (*probe.samples.first().unwrap_or(&one_iter)).max(Duration::from_nanos(1));
        warm_up_iters += 1;
    }

    let budget_per_sample = measurement_time / u32::try_from(sample_size.max(1)).unwrap_or(1);
    let iters_per_sample =
        (budget_per_sample.as_nanos() / one_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        target_samples: sample_size,
        iters_per_sample,
    };
    f(&mut bencher);

    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{id:<50} (no samples: Bencher::iter never called)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / u32::try_from(samples.len()).unwrap_or(1);
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{id:<50} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples x {} iters)",
        samples.len(),
        iters_per_sample
    );
}

/// Collect benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion {
            sample_size: 3,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_honor_settings_and_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(4));
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("w", 7), &7u64, |b, &x| {
            b.iter(|| {
                seen = x;
                x * 2
            })
        });
        group.finish();
        assert_eq!(seen, 7);
    }
}
